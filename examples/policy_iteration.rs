//! Design-loop example: iterate over candidate access-policy changes until
//! every user's unwanted-disclosure risk drops below Medium.
//!
//! This shows how the generated model supports the designer's workflow the
//! paper envisions: analyse, inspect the findings, change the policy,
//! re-analyse.
//!
//! Run with `cargo run --example policy_iteration`.

use privacy_mde::access::{Permission, PolicyDelta};
use privacy_mde::core::{casestudy, Pipeline};
use privacy_mde::model::RiskLevel;
use privacy_mde::synth::{random_profiles, ProfileGeneratorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut system = casestudy::healthcare()?;

    // A synthetic population of users with varied consent and sensitivities,
    // plus the paper's Case Study A user.
    let mut users = random_profiles(&ProfileGeneratorConfig {
        count: 15,
        seed: 7,
        services: vec![casestudy::medical_service(), casestudy::research_service()],
        fields: vec![
            casestudy::fields::name(),
            casestudy::fields::diagnosis(),
            casestudy::fields::treatment(),
            casestudy::fields::medical_issues(),
        ],
        ..ProfileGeneratorConfig::default()
    });
    users.push(casestudy::case_a_user());

    // Candidate remedies the designer is willing to consider, in order of
    // increasing disruption.
    let candidate_deltas = [
        PolicyDelta::new().revoke("Administrator", Permission::Read, "EHR"),
        PolicyDelta::new().revoke("Nurse", Permission::Read, "EHR"),
        PolicyDelta::new().revoke("Doctor", Permission::Read, "Appointments"),
    ];

    for round in 0..=candidate_deltas.len() {
        let pipeline = Pipeline::new(&system);
        let mut worst = RiskLevel::Low;
        let mut worst_user = String::new();
        for user in &users {
            let outcome = pipeline.analyse_user(user)?;
            let level = outcome.report.overall_level();
            if level > worst {
                worst = level;
                worst_user = user.id().as_str().to_owned();
            }
        }
        println!(
            "round {round}: worst risk across {} users = {worst} (user {worst_user})",
            users.len()
        );

        if !worst.at_least(RiskLevel::Medium) {
            println!("design accepted after {round} policy change(s)");
            return Ok(());
        }
        let Some(delta) = candidate_deltas.get(round) else {
            println!("no further candidate changes — design needs rethinking");
            return Ok(());
        };
        println!("applying remedy:\n{delta}");
        system = system.with_policy(system.policy().with_applied(delta));
    }
    Ok(())
}
