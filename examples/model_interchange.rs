//! Authoring a system model in the textual `.psm` interchange format,
//! resolving it, running the risk-analysis pipeline on it and printing the
//! canonical rendering — the "design artifacts" entry point of the
//! model-driven method without writing any Rust model code.
//!
//! Run with `cargo run --example model_interchange`.

use privacy_mde::core::Pipeline;
use privacy_mde::interchange::{parse_document, render_document};
use privacy_mde::model::RiskLevel;

/// A small occupational-health service, written the way a designer would
/// author it in a model file: two services, a raw and an anonymised store,
/// and one profiled employee.
const MODEL: &str = r#"
# Occupational-health screening service.
system "OccupationalHealth" {
    actor Physician : role "runs the screening consultations"
    actor HrManager : role "handles fitness-for-work decisions"
    actor Analyst : role "aggregate reporting on workforce health"

    field Name : identifier
    field Department : quasi
    field "Blood Pressure" : sensitive anonymised
    field Fitness : sensitive

    schema ScreeningSchema { Name, Department, "Blood Pressure", Fitness }
    schema ReportSchema { Department, "Blood Pressure_anon" }

    datastore Screenings : ScreeningSchema
    datastore Reports : ReportSchema anonymised

    service Screening { actors Physician, HrManager description "annual health screening" }
    service Reporting { actors Analyst description "workforce health statistics" }

    policy {
        allow Physician read, create on Screenings
        allow HrManager read on Screenings fields { Name, Fitness }
        allow Analyst read on Reports
        # The analyst maintains the report store.
        allow Analyst create on Reports
    }

    flows Screening {
        1: collect Physician { Name, Department, "Blood Pressure" } for "screening consultation"
        2: create Physician -> Screenings { Name, Department, "Blood Pressure", Fitness } for "record keeping"
        3: read HrManager <- Screenings { Name, Fitness } for "fitness-for-work decision"
    }

    flows Reporting {
        1: read Analyst <- Screenings { Department, "Blood Pressure" } for "prepare report data"
        2: anonymise Analyst -> Reports { Department, "Blood Pressure_anon" } for "publish aggregate report"
    }

    user "employee-42" {
        consents Screening
        sensitivity "Blood Pressure" = high
        sensitivity Fitness = 0.8
        sensitivity Department = 0.2
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse and resolve the model file.
    let document = match parse_document(MODEL) {
        Ok(document) => document,
        Err(error) => {
            // Diagnostics carry the offending line and a caret marker.
            eprintln!("{}", error.render(MODEL));
            return Err(error.into());
        }
    };
    let catalog = document.system.catalog();
    println!(
        "parsed `{}`: {} actors, {} fields, {} datastores, {} services, {} flows, {} user profile(s)",
        document.name,
        catalog.actor_count(),
        catalog.field_count(),
        catalog.datastore_count(),
        catalog.service_count(),
        document.system.dataflows().flow_count(),
        document.users.len(),
    );

    // 2. Validate and generate the formal privacy model.
    let validation = document.system.validate()?;
    println!("validation: {} issue(s)", validation.issues().len());
    let lts = document.system.generate_lts()?;
    println!("generated LTS: {}", lts.stats());

    // 3. Run the unwanted-disclosure analysis for the declared employee.
    let employee = document.user("employee-42").expect("declared in the model file");
    let outcome = Pipeline::new(&document.system).analyse_user(employee)?;
    let disclosure = outcome.report.disclosure().expect("disclosure analysis ran");
    println!("\nunwanted-disclosure findings for `{}`:", employee.id());
    for finding in disclosure.findings() {
        println!("  {finding}");
    }
    println!("overall risk level: {}", outcome.report.overall_level());
    // The employee consented to Screening only, and the HR manager can read
    // the Fitness assessment — the analysis surfaces at least that exposure.
    assert!(outcome.report.overall_level() >= RiskLevel::Low);

    // 4. Round-trip: render the canonical form and check it re-parses to the
    //    same structure (what a model editor would save back to disk).
    let rendered = render_document(&document);
    let reparsed = parse_document(&rendered)?;
    assert_eq!(reparsed.system.catalog().actor_count(), catalog.actor_count());
    assert_eq!(reparsed.system.dataflows().flow_count(), document.system.dataflows().flow_count());
    println!("\ncanonical rendering round-trips ({} bytes):\n", rendered.len());
    println!("{rendered}");
    Ok(())
}
