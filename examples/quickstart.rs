//! Quickstart: model a small data service, generate its privacy LTS and run
//! the risk analysis.
//!
//! Run with `cargo run --example quickstart`.

use privacy_mde::access::Grant;
use privacy_mde::core::{Pipeline, PrivacySystem};
use privacy_mde::dataflow::DiagramBuilder;
use privacy_mde::lts::dot::lts_to_dot;
use privacy_mde::model::{
    Actor, ActorId, DataField, DataSchema, DatastoreDecl, FieldId, SensitivityCategory,
    ServiceDecl, ServiceId, UserProfile,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Declare the vocabulary: actors, fields, schema, datastore, service.
    let mut builder = PrivacySystem::builder();
    {
        let catalog = builder.catalog_mut();
        catalog.add_actor(Actor::role("Advisor"))?;
        catalog.add_actor(Actor::role("Marketing"))?;
        catalog.add_field(DataField::identifier("Email"))?;
        catalog.add_field(DataField::sensitive("Salary"))?;
        catalog.add_schema(DataSchema::new(
            "CustomerSchema",
            [FieldId::new("Email"), FieldId::new("Salary")],
        ))?;
        catalog.add_datastore(DatastoreDecl::new("CustomerDB", "CustomerSchema"))?;
        catalog.add_service(ServiceDecl::new("AdviceService", [ActorId::new("Advisor")]))?;
    }

    // 2. Declare who may access what.
    builder
        .policy_mut()
        .acl_mut()
        .grant(Grant::read_write_all("Advisor", "CustomerDB"))
        .grant(Grant::read_all("Marketing", "CustomerDB"));

    // 3. Describe the service as a purpose-driven data-flow diagram.
    builder.add_diagram(
        DiagramBuilder::new("AdviceService")
            .collect("Advisor", ["Email", "Salary"], "financial advice intake", 1)?
            .create("Advisor", "CustomerDB", ["Email", "Salary"], "keep customer record", 2)?
            .read("Advisor", "CustomerDB", ["Salary"], "prepare follow-up", 3)?
            .build(),
    )?;
    let system = builder.build()?;

    // 4. Validate the design artefacts.
    let validation = system.validate()?;
    println!("validation: {}", if validation.is_ok() { "ok" } else { "has errors" });

    // 5. Describe the user: consents to the advice service, cares about the
    //    salary field.
    let user = UserProfile::new("customer-42")
        .consents_to(ServiceId::new("AdviceService"))
        .with_category_sensitivity(FieldId::new("Salary"), SensitivityCategory::High);

    // 6. Generate the LTS and run the automated risk analysis.
    let outcome = Pipeline::new(&system).analyse_user(&user)?;
    println!("{}", outcome.lts.stats());
    println!("{}", outcome.report);

    // 7. Export the annotated LTS for visual inspection.
    let dot = lts_to_dot(&outcome.lts);
    println!("--- annotated LTS (Graphviz) ---\n{dot}");
    Ok(())
}
