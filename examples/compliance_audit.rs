//! Auditing the doctors'-surgery system against its own stated privacy
//! policy, both at design time (over the generated LTS) and at operation
//! time (over the event log of a simulated execution) — the policy-analysis
//! direction discussed in Section V of the paper.
//!
//! The audit complements the risk analysis of Case Study A: revoking the
//! administrator's ad-hoc EHR access lowers the *risk* of unwanted
//! disclosure, but the compliance checker shows the stated privacy notice is
//! still inconsistent with the research service's own data flows — a
//! conflict only a redesign (or a more honest notice) can remove.
//!
//! Run with `cargo run --example compliance_audit`.

use privacy_mde::access::{Permission, PolicyDelta};
use privacy_mde::compliance::{
    baseline_policy, check_log, check_lts, ActorMatcher, FieldMatcher, PrivacyPolicy, Statement,
};
use privacy_mde::core::casestudy;
use privacy_mde::lts::ActionKind;
use privacy_mde::model::{Purpose, Record};
use privacy_mde::runtime::ServiceEngine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = casestudy::healthcare()?;

    // The clinic's stated privacy policy: the promises made to patients.
    let mut policy = PrivacyPolicy::new("clinic privacy notice")
        // "Administrative staff never access your diagnosis."
        .with_statement(Statement::forbid(
            "NO-ADMIN-DIAGNOSIS",
            "administrators never read the diagnosis",
            ActorMatcher::only([casestudy::actors::administrator()]),
            Some(ActionKind::Read),
            FieldMatcher::only([casestudy::fields::diagnosis()]),
        ))
        // "Raw (non-anonymised) records never leave the medical service."
        .with_statement(Statement::service_limit(
            "RAW-STAYS-CLINICAL",
            "raw diagnosis data is only processed by the medical service",
            FieldMatcher::only([casestudy::fields::diagnosis()]),
            [casestudy::medical_service()],
        ))
        // "Your data is only used for the purposes we told you about."
        .with_statement(Statement::purpose_limit(
            "DECLARED-PURPOSES",
            "diagnosis is only processed for care-related purposes",
            FieldMatcher::only([casestudy::fields::diagnosis()]),
            [
                Purpose::new("record diagnosis and treatment")?,
                Purpose::new("administer treatment")?,
            ],
        ));
    // GDPR-style hygiene derived from the catalog: erasure for sensitive
    // fields, bounded exposure for identifiers.
    policy.extend(baseline_policy(system.catalog(), [], 4).iter().cloned());
    println!("{policy}");

    // === design time: check the generated LTS =============================
    let lts = system.generate_lts()?;
    let design_report = check_lts(&lts, &policy);
    println!("{design_report}");
    assert!(!design_report.is_compliant());
    assert!(!design_report.outcome("NO-ADMIN-DIAGNOSIS").unwrap().holds());
    assert!(!design_report.outcome("ERASE-Diagnosis").unwrap().holds());

    // The Case Study A reaction — revoking the administrator's ad-hoc EHR
    // read access — lowers the disclosure *risk*, but does it make the
    // stated promise true?
    let delta = PolicyDelta::new().revoke("Administrator", Permission::Read, "EHR");
    let revised = system.with_policy(system.policy().with_applied(&delta));
    let revised_lts = revised.generate_lts()?;
    let revised_report = check_lts(&revised_lts, &policy);
    let still_failing = revised_report.outcome("NO-ADMIN-DIAGNOSIS").unwrap();
    println!("after revoking the administrator's EHR read access:");
    println!(
        "  NO-ADMIN-DIAGNOSIS still has {} violating transition(s): the Medical Research\n\
         \x20 Service's own data flow asks the administrator to read the diagnosis when\n\
         \x20 preparing the release, so the notice conflicts with the system design itself.",
        still_failing.violations().len()
    );
    assert!(!still_failing.holds());

    // The honest alternative: promise that *researchers* never see raw
    // records (which the design actually guarantees — they only read the
    // pseudonymised release).
    let honest = PrivacyPolicy::new("revised notice").with_statement(Statement::forbid(
        "NO-RESEARCHER-RAW",
        "researchers never read raw diagnosis records",
        ActorMatcher::only([casestudy::actors::researcher()]),
        Some(ActionKind::Read),
        FieldMatcher::only([casestudy::fields::diagnosis()]),
    ));
    let honest_report = check_lts(&lts, &honest);
    println!("{honest_report}");
    assert!(honest_report.is_compliant());

    // === operation time: check an observed execution ======================
    // Audit the ORIGINAL deployment: replay one patient through both
    // services and check the event log against the same notice.
    let mut engine = ServiceEngine::new(
        system.catalog().clone(),
        system.dataflows().clone(),
        system.policy().clone(),
    );
    let patient = privacy_mde::model::UserId::new("patient-007");
    for service in [casestudy::medical_service(), casestudy::research_service()] {
        engine.execute(
            &patient,
            &service,
            &Record::new()
                .with("Name", "patient-007")
                .with("Date of Birth", "1980-01-01")
                .with("Medical Issues", "chest pain")
                .with("Diagnosis", "hypertension")
                .with("Treatment Information", "medication")
                .with("Age", 45)
                .with("Height", 182)
                .with("Weight", 95.0),
        )?;
    }
    let runtime_report = check_log(engine.log(), &policy);
    println!("{runtime_report}");
    // The research service reads the raw diagnosis from the EHR when
    // preparing the release, so the service-limit promise is broken in the
    // observed execution — a finding the LTS checker cannot make (it is
    // skipped there) but the event-log checker can.
    assert!(!runtime_report.outcome("RAW-STAYS-CLINICAL").unwrap().holds());
    println!(
        "runtime audit: {} violation(s), {} statement(s) skipped",
        runtime_report.violation_count(),
        runtime_report.skipped().count()
    );
    Ok(())
}
