//! Case Study B (Section IV-B, Table I, Fig. 4): pseudonymisation value risk
//! of a 2-anonymised health-record release.
//!
//! Run with `cargo run --example pseudonymisation_risk`.

use privacy_mde::anonymity::{value_risk, Hierarchy, KAnonymizer, ValueRiskPolicy};
use privacy_mde::core::{casestudy, Pipeline};
use privacy_mde::model::FieldId;
use privacy_mde::synth::{table1_raw_records, table1_release};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let age = FieldId::new("Age");
    let height = FieldId::new("Height");
    let weight = FieldId::new("Weight");

    // 1. Reproduce the 2-anonymisation of the paper's six records from raw
    //    values using the anonymiser (decade bands for age, 20 cm bands for
    //    height).
    let raw = table1_raw_records();
    let anonymiser = KAnonymizer::new(2)
        .with_hierarchy(age.clone(), Hierarchy::numeric([10.0, 20.0, 40.0]))
        .with_hierarchy(height.clone(), Hierarchy::numeric([20.0, 40.0]));
    let result = anonymiser.anonymise(&raw, &[age.clone(), height.clone()])?;
    println!("anonymisation: {result}");
    assert!(result.is_k_anonymous());

    // 2. Print Table I: per-record value risks for each visible
    //    quasi-identifier combination and the violation counts.
    let release = table1_release();
    let policy = ValueRiskPolicy::weight_within_5kg_at_90_percent();
    println!("\nTable I — risk values for 2-anonymisation data records");
    println!(
        "{:<12} {:<12} {:<8} {:>12} {:>9} {:>17}",
        "Age", "Height", "Weight", "Height risk", "Age risk", "Age+Height risk"
    );
    let by_height = value_risk(&release, std::slice::from_ref(&height), &policy)?;
    let by_age = value_risk(&release, std::slice::from_ref(&age), &policy)?;
    let by_both = value_risk(&release, &[age.clone(), height.clone()], &policy)?;
    for index in 0..release.len() {
        let record = release.get(index).unwrap();
        println!(
            "{:<12} {:<12} {:<8} {:>12} {:>9} {:>17}",
            record.get(&age).unwrap().to_string(),
            record.get(&height).unwrap().to_string(),
            record.get(&weight).unwrap().to_string(),
            by_height.records()[index].as_fraction(),
            by_age.records()[index].as_fraction(),
            by_both.records()[index].as_fraction(),
        );
    }
    println!(
        "{:<34} Violations: {:>11} {:>9} {:>17}",
        "",
        by_height.violation_count(),
        by_age.violation_count(),
        by_both.violation_count()
    );
    assert_eq!(
        vec![by_height.violation_count(), by_age.violation_count(), by_both.violation_count()],
        vec![0, 2, 4]
    );

    // 3. Run the full pipeline so the researcher's risk transitions are added
    //    to the LTS (Fig. 4) and the designer verdict is produced.
    let system = casestudy::healthcare()?;
    let outcome = Pipeline::new(&system).analyse_user_and_release(
        &casestudy::case_a_user(),
        &casestudy::case_b_adversary(),
        &release,
        policy,
        &casestudy::table1_visible_sets(),
        Some(0.5),
    )?;
    let pseudonym = outcome.report.pseudonym().expect("pseudonymisation analysis ran");
    println!("\n{pseudonym}");
    println!(
        "LTS now has {} risk transitions (the dotted edges of Fig. 4)",
        outcome.lts.stats().risk_transitions
    );
    assert_eq!(pseudonym.violation_series(), vec![0, 2, 4]);
    assert!(pseudonym.is_unacceptable());
    Ok(())
}
