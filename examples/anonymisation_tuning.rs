//! Tuning a pseudonymisation technique: sweep the anonymity parameter `k`
//! over a synthetic patient population and compare value risk (the paper's
//! Table I metric), re-identification risk, l-diversity, t-closeness and
//! data utility — the "risk versus data utility" trade-off Section III-B
//! says the risk scores should inform.
//!
//! Run with `cargo run --example anonymisation_tuning`.

use privacy_mde::anonymity::{
    l_diversity_of, t_closeness_of, utility_report, value_risk, Hierarchy, KAnonymizer,
    ValueRiskPolicy,
};
use privacy_mde::model::FieldId;
use privacy_mde::risk::{reident_risk, ReidentPolicy};
use privacy_mde::synth::{random_health_records, RecordGeneratorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let age = FieldId::new("Age");
    let height = FieldId::new("Height");
    let weight = FieldId::new("Weight");

    // A deterministic synthetic population (no real patient data exists in
    // this reproduction; see DESIGN.md for the substitution note).
    let raw = random_health_records(&RecordGeneratorConfig::with_count(500).with_seed(42));
    println!("population: {} synthetic patient records", raw.len());

    let value_policy = ValueRiskPolicy::weight_within_5kg_at_90_percent();
    let reident_policy = ReidentPolicy::majority();
    let quasi = [age.clone(), height.clone()];

    println!(
        "\n{:>3} {:>12} {:>12} {:>12} {:>8} {:>10} {:>12} {:>12}",
        "k",
        "value-viol",
        "reident@50%",
        "prosecutor",
        "l-div",
        "t-close",
        "mean-shift",
        "suppressed"
    );
    for k in [2, 3, 5, 10, 20] {
        let anonymiser = KAnonymizer::new(k)
            .with_hierarchy(age.clone(), Hierarchy::numeric([5.0, 10.0, 20.0, 40.0, 80.0]))
            .with_hierarchy(height.clone(), Hierarchy::numeric([5.0, 10.0, 20.0, 40.0, 80.0]));
        let result = anonymiser.anonymise(&raw, &quasi)?;
        let release = result.data();

        // The paper's value-risk violations with both quasi-identifiers
        // visible to the adversary.
        let value = value_risk(release, &quasi, &value_policy)?;
        // The deferred re-identification dimension.
        let reident = reident_risk(release, &[quasi.to_vec()], &reident_policy);
        // Diversity / closeness of the sensitive attribute inside classes.
        let l = l_diversity_of(release, &quasi, &weight, 5.0);
        let t = t_closeness_of(release, &quasi, &weight);
        // Utility: how far the released weight distribution drifted.
        let utility = utility_report(&raw, release, &weight);

        println!(
            "{:>3} {:>12} {:>12} {:>12.3} {:>8} {:>10.3} {:>12.3} {:>12}",
            k,
            value.violation_count(),
            reident.findings()[0].at_risk(),
            reident.max_risk(),
            l,
            t,
            utility.relative_mean_shift(),
            result.suppressed().len(),
        );

        assert!(result.is_k_anonymous());
        assert!(result.min_class_size() >= k || release.is_empty());
    }

    println!(
        "\nreading the table: larger k suppresses more records and lowers both risk columns,\n\
         while the utility column (relative mean shift of Weight) stays small — the designer\n\
         picks the smallest k whose risks are acceptable, as Section III-B prescribes."
    );
    Ok(())
}
