//! Runtime monitoring: execute a synthetic workload against the healthcare
//! system and let the runtime privacy monitor raise alerts as the events
//! stream in — the paper's "monitor the privacy risks during the lifetime of
//! the service" scenario.
//!
//! Two monitors consume the same stream: the scan-path [`RuntimeMonitor`]
//! streaming event-by-event off the concurrent driver, and the
//! [`IndexedMonitor`] replaying the log as one sharded batch over the same
//! columnar [`LtsIndex`] the design-time analyses probe. Their alert streams
//! are identical — the index only changes how fast the answer arrives.
//!
//! Run with `cargo run --example runtime_monitoring`.

use privacy_mde::core::casestudy;
use privacy_mde::lts::LtsIndex;
use privacy_mde::model::{Record, SensitivityCategory, UserId, UserProfile};
use privacy_mde::runtime::{
    run_concurrent_workload, ConcurrentConfig, IndexedMonitor, RuntimeMonitor, ServiceEngine,
};
use privacy_mde::synth::{random_workload, WorkloadConfig};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = casestudy::healthcare()?;
    let engine = ServiceEngine::new(
        system.catalog().clone(),
        system.dataflows().clone(),
        system.policy().clone(),
    );
    // The design-time model and its analysis index, shared with the
    // operation-time monitor.
    let index = Arc::new(LtsIndex::build(&system.generate_lts()?));
    let mut indexed =
        IndexedMonitor::new(system.catalog().clone(), system.policy().clone(), Arc::clone(&index))
            .with_threads(Some(4));
    let mut monitor = RuntimeMonitor::new(system.catalog().clone(), system.policy().clone());

    // Register twenty users who all consent to the Medical Service only and
    // are sensitive about their diagnosis (the Case Study A profile).
    let users: Vec<UserId> = (0..20).map(|i| UserId::new(format!("patient-{i:03}"))).collect();
    for user in &users {
        let profile = UserProfile::new(user.as_str())
            .consents_to(casestudy::medical_service())
            .with_category_sensitivity(casestudy::fields::diagnosis(), SensitivityCategory::High);
        monitor.register_user(&profile);
        indexed.register_user(&profile);
    }

    // A synthetic workload biased towards the medical service.
    let workload = random_workload(&WorkloadConfig {
        length: 60,
        seed: 2026,
        users: users.clone(),
        services: vec![(casestudy::medical_service(), 0.8), (casestudy::research_service(), 0.2)],
    });
    println!("replaying {} service requests over 4 worker threads...", workload.len());

    let outcome = run_concurrent_workload(
        engine,
        monitor,
        &workload,
        ConcurrentConfig { workers: 4 },
        |user| {
            Record::new()
                .with("Name", user.as_str())
                .with("Medical Issues", "chest pain")
                .with("Diagnosis", "hypertension")
                .with("Treatment Information", "medication")
        },
    );

    println!(
        "event log: {} events ({} denied)",
        outcome.engine.log().len(),
        outcome.engine.log().denied().len()
    );
    println!("alerts raised: {}", outcome.alerts.len());
    for alert in outcome.alerts.iter().take(5) {
        println!("  {alert}");
    }
    if outcome.alerts.len() > 5 {
        println!("  ... and {} more", outcome.alerts.len() - 5);
    }
    println!(
        "EHR now holds {} patient records",
        outcome.engine.stores().record_count(&privacy_mde::model::DatastoreId::new("EHR"))
    );
    println!("{}", outcome.monitor);

    // Replay the same log through the index-backed monitor: events resolve
    // once through the shared index's interners, per-user state shards over
    // four worker threads, and the alert stream comes out identical.
    let batch_alerts = indexed.ingest_batch(outcome.engine.log().events());
    println!("{indexed}");
    assert_eq!(batch_alerts.len(), outcome.monitor.alerts().len());
    for (streamed, batched) in outcome.monitor.alerts().iter().zip(&batch_alerts) {
        assert_eq!(streamed.level(), batched.level());
        assert_eq!(streamed.message(), batched.message());
    }
    println!(
        "indexed batch ingestion raised the same {} alerts in the same order",
        batch_alerts.len()
    );

    // The design-time model predicted this exposure: the same index answers
    // the operation-time question and the design-time one.
    if let Some(alert) = indexed.drain_alerts().first() {
        let admin = casestudy::actors::administrator();
        let diagnosis = casestudy::fields::diagnosis();
        println!(
            "design-time cross-check for `{alert}`: model says administrator can identify \
             diagnosis = {}",
            index.can_actor_identify(&admin, &diagnosis)
        );
    }
    Ok(())
}
