//! Runtime monitoring: execute a synthetic workload against the healthcare
//! system and let the runtime privacy monitor raise alerts as the events
//! stream in — the paper's "monitor the privacy risks during the lifetime of
//! the service" scenario.
//!
//! Run with `cargo run --example runtime_monitoring`.

use privacy_mde::core::casestudy;
use privacy_mde::model::{Record, SensitivityCategory, UserId, UserProfile};
use privacy_mde::runtime::{
    run_concurrent_workload, ConcurrentConfig, RuntimeMonitor, ServiceEngine,
};
use privacy_mde::synth::{random_workload, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = casestudy::healthcare()?;
    let engine = ServiceEngine::new(
        system.catalog().clone(),
        system.dataflows().clone(),
        system.policy().clone(),
    );
    let mut monitor = RuntimeMonitor::new(system.catalog().clone(), system.policy().clone());

    // Register twenty users who all consent to the Medical Service only and
    // are sensitive about their diagnosis (the Case Study A profile).
    let users: Vec<UserId> = (0..20).map(|i| UserId::new(format!("patient-{i:03}"))).collect();
    for user in &users {
        monitor.register_user(
            &UserProfile::new(user.as_str())
                .consents_to(casestudy::medical_service())
                .with_category_sensitivity(
                    casestudy::fields::diagnosis(),
                    SensitivityCategory::High,
                ),
        );
    }

    // A synthetic workload biased towards the medical service.
    let workload = random_workload(&WorkloadConfig {
        length: 60,
        seed: 2026,
        users: users.clone(),
        services: vec![(casestudy::medical_service(), 0.8), (casestudy::research_service(), 0.2)],
    });
    println!("replaying {} service requests over 4 worker threads...", workload.len());

    let outcome = run_concurrent_workload(
        engine,
        monitor,
        &workload,
        ConcurrentConfig { workers: 4 },
        |user| {
            Record::new()
                .with("Name", user.as_str())
                .with("Medical Issues", "chest pain")
                .with("Diagnosis", "hypertension")
                .with("Treatment Information", "medication")
        },
    );

    println!(
        "event log: {} events ({} denied)",
        outcome.engine.log().len(),
        outcome.engine.log().denied().len()
    );
    println!("alerts raised: {}", outcome.alerts.len());
    for alert in outcome.alerts.iter().take(5) {
        println!("  {alert}");
    }
    if outcome.alerts.len() > 5 {
        println!("  ... and {} more", outcome.alerts.len() - 5);
    }
    println!(
        "EHR now holds {} patient records",
        outcome.engine.stores().record_count(&privacy_mde::model::DatastoreId::new("EHR"))
    );
    println!("{}", outcome.monitor);
    Ok(())
}
