//! Baseline comparison: run the LINDDUN-style threat-catalogue pass and the
//! ARX-style re-identification attacker models on the same healthcare system
//! and release that the model-driven analyses use, to contrast what each
//! method reports.
//!
//! Run with `cargo run --example threat_catalogue`.

use privacy_mde::baselines::{
    journalist_risk, marketer_risk, prosecutor_risk, record_disclosure_risks,
    threat_catalogue_pass, BackgroundKnowledge,
};
use privacy_mde::core::{casestudy, Pipeline};
use privacy_mde::model::FieldId;
use privacy_mde::synth::{random_health_records, table1_release, RecordGeneratorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = casestudy::healthcare()?;

    // --- LINDDUN-style threat elicitation over the data-flow diagrams ------
    let threats = threat_catalogue_pass(system.catalog(), system.dataflows());
    println!("LINDDUN-style catalogue pass: {} candidate threats", threats.len());
    for threat in threats.iter().take(8) {
        println!("  {threat}");
    }
    println!("  ... (a human analyst must now triage all of these by hand)\n");

    // --- Model-driven analysis on the same system ---------------------------
    let outcome = Pipeline::new(&system).analyse_user(&casestudy::case_a_user())?;
    let disclosure = outcome.report.disclosure().expect("analysis ran");
    println!(
        "model-driven analysis: {} quantified findings for this user (max level {})\n",
        disclosure.len(),
        disclosure.max_level()
    );

    // --- ARX-style re-identification risk on the Table I release -----------
    let release = table1_release();
    let quasi_identifiers = [FieldId::new("Age"), FieldId::new("Height")];
    let population = random_health_records(&RecordGeneratorConfig::with_count(500).with_seed(11));
    println!("{}", prosecutor_risk(&release, &quasi_identifiers));
    println!("{}", journalist_risk(&release, &population, &quasi_identifiers));
    println!("{}", marketer_risk(&release, &quasi_identifiers));

    // --- CAT-style per-record risk under explicit background knowledge ------
    let knowledge = BackgroundKnowledge::none().knows("Age", 35i64).knows("Height", 185i64);
    let risks = record_disclosure_risks(&release, &knowledge);
    println!(
        "CAT-style: adversary knowing age 35 and height 185 re-identifies a record with \
         probability {:.2}",
        risks.iter().cloned().fold(0.0f64, f64::max)
    );
    println!(
        "note: none of the baselines flags the weight-value inference that the paper's \
         value-risk analysis reports (Table I violations 0 / 2 / 4)"
    );
    Ok(())
}
