//! Case Study A (Section IV-A): identifying unwanted disclosure in the
//! doctors'-surgery system, then redesigning the access policy until the risk
//! is acceptable.
//!
//! Run with `cargo run --example healthcare_disclosure`.

use privacy_mde::access::{Permission, PolicyDelta};
use privacy_mde::core::{casestudy, Pipeline};
use privacy_mde::model::RiskLevel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The system of Fig. 1 and the paper's profiled user: consents to the
    // Medical Service only, highly sensitive about the Diagnosis.
    let system = casestudy::healthcare()?;
    let user = casestudy::case_a_user();

    println!("=== initial design ===");
    let outcome = Pipeline::new(&system).analyse_user(&user)?;
    let disclosure = outcome.report.disclosure().expect("disclosure analysis ran");
    println!(
        "non-allowed actors: {:?}",
        disclosure.non_allowed_actors().iter().map(|a| a.as_str()).collect::<Vec<_>>()
    );
    for finding in disclosure.findings() {
        println!("  {finding}");
    }
    let admin_risk =
        disclosure.risk_for(&casestudy::actors::administrator(), &casestudy::fields::diagnosis());
    println!("Administrator / Diagnosis risk: {admin_risk}");
    assert_eq!(admin_risk, RiskLevel::Medium);

    // The designer deems Medium unacceptable and revokes the administrator's
    // read access to the EHR, exactly as the paper describes.
    println!("\n=== after the access-policy change ===");
    let delta = PolicyDelta::new().revoke("Administrator", Permission::Read, "EHR");
    println!("{delta}");
    let revised = system.with_policy(system.policy().with_applied(&delta));
    let outcome = Pipeline::new(&revised).analyse_user(&user)?;
    let disclosure = outcome.report.disclosure().expect("disclosure analysis ran");
    let admin_risk =
        disclosure.risk_for(&casestudy::actors::administrator(), &casestudy::fields::diagnosis());
    println!("Administrator / Diagnosis risk: {admin_risk}");
    assert_eq!(admin_risk, RiskLevel::Low);
    println!("risk reduced from Medium to Low — matching the paper's Case Study A");
    Ok(())
}
