//! Integration tests for the `.psm` model interchange format: the healthcare
//! case study survives a render → parse round trip with identical analysis
//! results, and randomly generated models round-trip structurally.

use privacy_mde::core::{casestudy, Pipeline};
use privacy_mde::interchange::{parse_document, render_document, render_system};
use privacy_mde::model::{FieldId, RiskLevel, SensitivityCategory, UserProfile};
use proptest::prelude::*;

#[test]
fn healthcare_system_round_trips_through_the_interchange_format() {
    let system = casestudy::healthcare().unwrap();
    let rendered = render_system("Healthcare", &system);
    let document = parse_document(&rendered)
        .unwrap_or_else(|e| panic!("rendered model must re-parse:\n{}", e.render(&rendered)));

    let original = system.catalog();
    let reparsed = document.system.catalog();
    assert_eq!(reparsed.actor_count(), original.actor_count());
    assert_eq!(reparsed.field_count(), original.field_count());
    assert_eq!(reparsed.datastore_count(), original.datastore_count());
    assert_eq!(reparsed.service_count(), original.service_count());
    assert_eq!(document.system.dataflows().flow_count(), system.dataflows().flow_count());
    assert_eq!(reparsed.state_variable_count(), original.state_variable_count());
}

#[test]
fn round_tripped_healthcare_system_reports_the_same_case_a_risk() {
    let system = casestudy::healthcare().unwrap();
    let user = casestudy::case_a_user();
    let original_outcome = Pipeline::new(&system).analyse_user(&user).unwrap();

    let rendered = render_system("Healthcare", &system);
    let document = parse_document(&rendered).unwrap();
    let round_tripped_outcome = Pipeline::new(&document.system).analyse_user(&user).unwrap();

    assert_eq!(
        original_outcome.report.overall_level(),
        round_tripped_outcome.report.overall_level()
    );
    assert_eq!(original_outcome.report.overall_level(), RiskLevel::Medium);
    assert_eq!(original_outcome.lts.state_count(), round_tripped_outcome.lts.state_count());
    assert_eq!(
        original_outcome.lts.transition_count(),
        round_tripped_outcome.lts.transition_count()
    );
}

#[test]
fn user_profiles_declared_in_psm_match_programmatic_profiles() {
    let source = r#"
    system "Healthcare" {
        actor Doctor : role
        field Diagnosis : sensitive
        schema EHRSchema { Diagnosis }
        datastore EHR : EHRSchema
        service MedicalService { actors Doctor }
        flows MedicalService {
            1: collect Doctor { Diagnosis } for "consultation"
            2: create Doctor -> EHR { Diagnosis } for "record keeping"
        }
        user "case-a-user" {
            consents MedicalService
            sensitivity Diagnosis = high
        }
    }
    "#;
    let document = parse_document(source).unwrap();
    let declared = document.user("case-a-user").unwrap();
    let programmatic = UserProfile::new("case-a-user")
        .consents_to(privacy_mde::model::ServiceId::new("MedicalService"))
        .with_category_sensitivity(FieldId::new("Diagnosis"), SensitivityCategory::High);
    assert_eq!(
        declared.consent().services().collect::<Vec<_>>(),
        programmatic.consent().services().collect::<Vec<_>>()
    );
    assert_eq!(
        declared.sensitivities().sensitivity(&FieldId::new("Diagnosis")).category(),
        SensitivityCategory::High
    );
}

#[test]
fn parse_errors_carry_usable_line_information() {
    let source = "system \"Broken\" {\n    actor A : role\n    field F : wizard\n}";
    let error = parse_document(source).unwrap_err();
    assert_eq!(error.span().start.line, 3, "error should point at the bad field kind");
    let rendered = error.render(source);
    assert!(rendered.contains("line 3"));
    assert!(rendered.contains('^'));
}

/// Builds a small random-but-valid `.psm` document: `actors` role actors,
/// `fields` plain fields, one schema/datastore, one service with a chain of
/// collect/create/read flows.
fn synth_model(actors: usize, fields: usize, flows: usize) -> String {
    let mut out = String::from("system \"Synth\" {\n");
    for a in 0..actors {
        out.push_str(&format!("    actor Actor{a} : role\n"));
    }
    for f in 0..fields {
        out.push_str(&format!("    field Field{f} : sensitive\n"));
    }
    let all_fields: Vec<String> = (0..fields).map(|f| format!("Field{f}")).collect();
    out.push_str(&format!("    schema Schema0 {{ {} }}\n", all_fields.join(", ")));
    out.push_str("    datastore Store0 : Schema0\n");
    let all_actors: Vec<String> = (0..actors).map(|a| format!("Actor{a}")).collect();
    out.push_str(&format!("    service Service0 {{ actors {} }}\n", all_actors.join(", ")));
    out.push_str("    policy {\n");
    for a in 0..actors {
        out.push_str(&format!("        allow Actor{a} read, create on Store0\n"));
    }
    out.push_str("    }\n    flows Service0 {\n");
    for i in 0..flows {
        let actor = format!("Actor{}", i % actors);
        let field = format!("Field{}", i % fields);
        match i % 3 {
            0 => out.push_str(&format!(
                "        {}: collect {actor} {{ {field} }} for \"step {i}\"\n",
                i + 1
            )),
            1 => out.push_str(&format!(
                "        {}: create {actor} -> Store0 {{ {field} }} for \"step {i}\"\n",
                i + 1
            )),
            _ => out.push_str(&format!(
                "        {}: read {actor} <- Store0 {{ {field} }} for \"step {i}\"\n",
                i + 1
            )),
        }
    }
    out.push_str("    }\n}\n");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any generated model parses, and rendering + re-parsing preserves the
    /// element counts and the generated LTS size.
    #[test]
    fn generated_models_round_trip(actors in 1usize..5, fields in 1usize..5, flows in 1usize..8) {
        let source = synth_model(actors, fields, flows);
        let document = parse_document(&source).expect("generated model parses");
        prop_assert_eq!(document.system.catalog().actor_count(), actors);
        prop_assert_eq!(document.system.catalog().field_count(), fields);
        prop_assert_eq!(document.system.dataflows().flow_count(), flows);

        let rendered = render_document(&document);
        let reparsed = parse_document(&rendered).expect("rendered model parses");
        prop_assert_eq!(reparsed.system.catalog().actor_count(), actors);
        prop_assert_eq!(reparsed.system.catalog().field_count(), fields);
        prop_assert_eq!(reparsed.system.dataflows().flow_count(), flows);

        let lts_a = document.system.generate_lts().expect("original generates");
        let lts_b = reparsed.system.generate_lts().expect("round-trip generates");
        prop_assert_eq!(lts_a.state_count(), lts_b.state_count());
        prop_assert_eq!(lts_a.transition_count(), lts_b.transition_count());
    }

    /// Rendering is idempotent: rendering the re-parsed document yields the
    /// same text as rendering the original document.
    #[test]
    fn rendering_is_idempotent(actors in 1usize..4, fields in 1usize..4, flows in 1usize..6) {
        let source = synth_model(actors, fields, flows);
        let document = parse_document(&source).expect("generated model parses");
        let once = render_document(&document);
        let twice = render_document(&parse_document(&once).expect("re-parses"));
        prop_assert_eq!(once, twice);
    }
}
