//! End-to-end integration tests spanning every crate: the full doctors'-
//! surgery case study of the paper, exercised through the public API of the
//! umbrella crate only.

use privacy_mde::access::{Permission, PolicyDelta};
use privacy_mde::anonymity::{l_diversity_of, utility_report, ValueRiskPolicy};
use privacy_mde::baselines::{prosecutor_risk, threat_catalogue_pass};
use privacy_mde::core::{casestudy, Pipeline};
use privacy_mde::lts::dot::lts_to_dot;
use privacy_mde::lts::{ActionKind, GeneratorConfig, LtsIndex, LtsQuery};
use privacy_mde::model::{FieldId, RiskLevel};
use privacy_mde::synth::{table1_raw_records, table1_release};

#[test]
fn the_healthcare_model_validates_and_generates_a_small_lts() {
    let system = casestudy::healthcare().expect("fixture builds");
    let validation = system.validate().expect("catalog is consistent");
    assert!(validation.is_ok(), "validation issues: {validation}");

    // Fig. 3: the Medical Service on its own generates a compact LTS even
    // though the theoretical state space is astronomically large.
    let medical = system
        .generate_lts_with(&GeneratorConfig::for_service("MedicalService"))
        .expect("generation succeeds");
    let stats = medical.stats();
    assert_eq!(stats.transitions, 6, "one transition per Fig. 1 flow");
    assert!(stats.states <= 7);
    assert!(stats.theoretical_states > 1e9);

    // The whole system (both services interleaved) is still small.
    let full = system.generate_lts().expect("generation succeeds");
    assert!(full.state_count() < 200);
    assert!(full.transition_count() < 400);
}

#[test]
fn case_study_a_medium_risk_is_found_and_removed_by_the_policy_change() {
    let system = casestudy::healthcare().unwrap();
    let user = casestudy::case_a_user();

    let outcome = Pipeline::new(&system).analyse_user(&user).unwrap();
    let disclosure = outcome.report.disclosure().unwrap();

    // The paper: the non-allowed actors are the Administrator and the
    // Researcher; the Administrator's read of the EHR is Medium risk.
    let non_allowed: Vec<&str> =
        disclosure.non_allowed_actors().iter().map(|a| a.as_str()).collect();
    assert_eq!(non_allowed, vec!["Administrator", "Researcher"]);
    assert_eq!(
        disclosure.risk_for(&casestudy::actors::administrator(), &casestudy::fields::diagnosis()),
        RiskLevel::Medium
    );

    // The annotated LTS draws the risky read as a dashed, coloured edge.
    let dot = lts_to_dot(&outcome.lts);
    assert!(dot.contains("style=dashed"));
    assert!(dot.contains("Administrator"));

    // The query interface can explain how the exposure arises — probing a
    // fresh index of the annotated LTS (the pipeline's own index describes
    // the pre-annotation snapshot).
    let index = LtsIndex::build(&outcome.lts);
    let query = LtsQuery::with_index(&outcome.lts, &index);
    assert!(query
        .can_actor_identify(&casestudy::actors::administrator(), &casestudy::fields::diagnosis()));

    // After the policy change the risk disappears.
    let revised = system.with_policy(system.policy().with_applied(&PolicyDelta::new().revoke(
        "Administrator",
        Permission::Read,
        "EHR",
    )));
    let outcome = Pipeline::new(&revised).analyse_user(&user).unwrap();
    assert_eq!(
        outcome
            .report
            .disclosure()
            .unwrap()
            .risk_for(&casestudy::actors::administrator(), &casestudy::fields::diagnosis()),
        RiskLevel::Low
    );
    assert_eq!(outcome.lts.stats().risk_transitions, 0);
}

#[test]
fn case_study_b_reproduces_table_one_and_fig_four() {
    let system = casestudy::healthcare().unwrap();
    let release = table1_release();
    let outcome = Pipeline::new(&system)
        .analyse_user_and_release(
            &casestudy::case_a_user(),
            &casestudy::case_b_adversary(),
            &release,
            ValueRiskPolicy::weight_within_5kg_at_90_percent(),
            &casestudy::table1_visible_sets(),
            Some(0.5),
        )
        .unwrap();
    let pseudonym = outcome.report.pseudonym().unwrap();

    // Table I's violations row.
    assert_eq!(pseudonym.violation_series(), vec![0, 2, 4]);
    // The 50 % violation threshold makes the technique unacceptable.
    assert!(pseudonym.is_unacceptable());
    assert_eq!(outcome.report.overall_level(), RiskLevel::High);
    // Fig. 4's dotted risk transitions exist and point at the Weight field.
    assert!(!pseudonym.risk_transitions().is_empty());
    for tid in pseudonym.risk_transitions() {
        let transition = outcome.lts.transition(*tid);
        assert!(transition.is_risk_transition());
        assert_eq!(transition.label().action(), ActionKind::Read);
        assert!(transition.label().involves_field(&FieldId::new("Weight")));
    }
}

#[test]
fn anonymisation_utility_and_diversity_metrics_support_the_designer_decision() {
    let raw = table1_raw_records();
    let release = table1_release();
    let weight = FieldId::new("Weight");

    // The release keeps the weight column untouched, so its utility is
    // perfect — the risk, not the utility, is what rules the technique out.
    let utility = utility_report(&raw, &release, &weight);
    assert_eq!(utility.mean_shift(), 0.0);
    assert_eq!(utility.loss_rate(), 0.0);

    // The release is not 2-diverse for weight (±5 kg), which is exactly why
    // the value risk flags it.
    let l = l_diversity_of(&release, &[FieldId::new("Age"), FieldId::new("Height")], &weight, 5.0);
    assert_eq!(l, 1);
}

#[test]
fn baselines_report_different_information_than_the_model_driven_analysis() {
    let system = casestudy::healthcare().unwrap();

    // The LINDDUN-style pass produces many unquantified candidate threats.
    let threats = threat_catalogue_pass(system.catalog(), system.dataflows());
    assert!(threats.len() >= 10);

    // The ARX prosecutor model is satisfied with k = 2 (risk 0.5), even
    // though the value risk of Table I shows 4 of 6 records violating the
    // weight-inference policy — the gap the paper's method closes.
    let release = table1_release();
    let reident = prosecutor_risk(&release, &[FieldId::new("Age"), FieldId::new("Height")]);
    assert!(reident.max_risk <= 0.5 + f64::EPSILON);
}
