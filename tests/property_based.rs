//! Property-based tests (proptest) on the core data structures and the
//! invariants the formal model relies on.

use privacy_mde::access::{AccessControlList, AccessPolicy, FieldScope, Grant, Permission};
use privacy_mde::anonymity::{value_risk, Hierarchy, KAnonymizer, ValueRiskPolicy};
use privacy_mde::lts::{PrivacyState, VarSpace};
use privacy_mde::model::{
    ActorId, Dataset, DatastoreId, FieldId, Record, Sensitivity, SensitivityProfile,
};
use proptest::prelude::*;

fn actor_ids(count: usize) -> Vec<ActorId> {
    (0..count).map(|i| ActorId::new(format!("actor-{i}"))).collect()
}

fn field_ids(count: usize) -> Vec<FieldId> {
    (0..count).map(|i| FieldId::new(format!("field-{i}"))).collect()
}

proptest! {
    /// Every (actor, field, kind) variable has a unique bit index and the
    /// index round-trips back to the same variable.
    #[test]
    fn var_space_bit_indices_are_a_bijection(actors in 1usize..6, fields in 1usize..6) {
        let space = VarSpace::new(actor_ids(actors), field_ids(fields));
        prop_assert_eq!(space.variable_count(), 2 * actors * fields);
        let mut seen = std::collections::BTreeSet::new();
        for (actor, field) in space.pairs().map(|(a, f)| (a.clone(), f.clone())).collect::<Vec<_>>() {
            for kind in [privacy_mde::lts::space::VarKind::Has, privacy_mde::lts::space::VarKind::Could] {
                let bit = space.bit_index(&actor, &field, kind).unwrap();
                prop_assert!(bit < space.variable_count());
                prop_assert!(seen.insert(bit));
                let (a, f, k) = space.variable_at(bit).unwrap();
                prop_assert_eq!((a.clone(), f.clone(), k), (actor.clone(), field.clone(), kind));
            }
        }
    }

    /// Setting a state variable affects exactly that variable, and union /
    /// subset behave like set operations.
    #[test]
    fn privacy_state_set_and_union_laws(
        actors in 1usize..5,
        fields in 1usize..5,
        picks in proptest::collection::vec((0usize..5, 0usize..5, proptest::bool::ANY), 0..12),
    ) {
        let space = VarSpace::new(actor_ids(actors), field_ids(fields));
        let mut state = PrivacyState::absolute(&space);
        let mut expected_true = std::collections::BTreeSet::new();
        for (a, f, has) in picks {
            let actor = ActorId::new(format!("actor-{}", a % actors));
            let field = FieldId::new(format!("field-{}", f % fields));
            if has {
                state.set_has(&space, &actor, &field, true);
            } else {
                state.set_could(&space, &actor, &field, true);
            }
            expected_true.insert((actor, field, has));
        }
        prop_assert_eq!(state.count_true(), expected_true.len());

        // Union with the absolute state is the identity; every state is a
        // subset of its union with anything.
        let absolute = PrivacyState::absolute(&space);
        prop_assert_eq!(&absolute.union(&state), &state);
        prop_assert!(state.is_subset_of(&state.union(&absolute)));
        prop_assert!(absolute.is_subset_of(&state));
    }

    /// Sensitivity clamping always lands in [0, 1] and max_over never exceeds
    /// the declared maximum.
    #[test]
    fn sensitivity_profile_max_is_bounded(values in proptest::collection::vec(-2.0f64..3.0, 1..10)) {
        let mut profile = SensitivityProfile::new();
        let mut max_declared: f64 = 0.0;
        let fields: Vec<FieldId> = values
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let field = FieldId::new(format!("f{i}"));
                let clamped = Sensitivity::clamped(*v);
                max_declared = max_declared.max(clamped.value());
                profile.set(field.clone(), clamped);
                field
            })
            .collect();
        let max = profile.max_over(fields.iter());
        prop_assert!((0.0..=1.0).contains(&max.value()));
        prop_assert!((max.value() - max_declared).abs() < 1e-12);
    }

    /// Revoking a permission always removes the ability it granted, and never
    /// grants anything new.
    #[test]
    fn acl_revoke_is_sound(grants in proptest::collection::vec((0usize..4, 0usize..3, 0usize..3), 1..12)) {
        let actors = actor_ids(4);
        let stores: Vec<DatastoreId> =
            (0..3).map(|i| DatastoreId::new(format!("store-{i}"))).collect();
        let perms = [Permission::Read, Permission::Create, Permission::Delete];
        let mut acl = AccessControlList::new();
        for (a, s, p) in &grants {
            acl.grant(Grant::new(
                actors[*a].clone(),
                stores[*s].clone(),
                FieldScope::all(),
                [perms[*p]],
            ));
        }
        let policy = AccessPolicy::from_parts(acl.clone(), Default::default());
        let field = FieldId::new("x");

        // Pick the first grant and revoke it.
        let (a, s, p) = grants[0];
        let mut revoked_acl = acl.clone();
        revoked_acl.revoke(&actors[a], perms[p], &stores[s]);
        let revoked = AccessPolicy::from_parts(revoked_acl, Default::default());

        prop_assert!(policy.can(&actors[a], perms[p], &stores[s], &field));
        prop_assert!(!revoked.can(&actors[a], perms[p], &stores[s], &field));
        // Nothing new is allowed after a revocation.
        for actor in &actors {
            for store in &stores {
                for perm in perms {
                    if revoked.can(actor, perm, store, &field) {
                        prop_assert!(policy.can(actor, perm, store, &field));
                    }
                }
            }
        }
    }

    /// k-anonymisation either fails or produces a release in which every
    /// equivalence class has at least k members and no record was invented.
    #[test]
    fn k_anonymisation_postconditions(
        ages in proptest::collection::vec(18i64..90, 2..25),
        k in 1usize..6,
    ) {
        let age = FieldId::new("Age");
        let data = Dataset::from_records(
            [age.clone()],
            ages.iter().map(|a| Record::new().with("Age", *a)),
        );
        let anonymiser = KAnonymizer::new(k)
            .with_hierarchy(age.clone(), Hierarchy::numeric([5.0, 10.0, 20.0, 40.0]));
        let result = anonymiser.anonymise(&data, std::slice::from_ref(&age)).unwrap();
        prop_assert!(result.is_k_anonymous());
        prop_assert!(result.data().len() + result.suppressed().len() == data.len());
        prop_assert!((0.0..=1.0).contains(&result.suppression_rate()));
    }

    /// Value risk is always a probability, a record's own value always counts
    /// towards its frequency (so the risk is at least `1 / |class|`), and the
    /// frequency never exceeds the class size.
    #[test]
    fn value_risk_scores_are_well_formed(
        rows in proptest::collection::vec((20i64..40, 150i64..200, 50.0f64..120.0), 2..20),
        tolerance in 0.0f64..10.0,
    ) {
        let age = FieldId::new("Age");
        let height = FieldId::new("Height");
        let weight = FieldId::new("Weight");
        let release = Dataset::from_records(
            [age.clone(), height.clone(), weight.clone()],
            rows.iter().map(|(a, h, w)| {
                // Coarse bands as the anonymised view.
                Record::new()
                    .with("Age", privacy_mde::model::Value::interval((a / 10 * 10) as f64, (a / 10 * 10 + 10) as f64))
                    .with("Height", privacy_mde::model::Value::interval((h / 20 * 20) as f64, (h / 20 * 20 + 20) as f64))
                    .with("Weight", *w)
            }),
        );
        let policy = ValueRiskPolicy::new("Weight", tolerance, 0.9).unwrap();
        let none = value_risk(&release, &[], &policy).unwrap();
        let fewer = value_risk(&release, std::slice::from_ref(&age), &policy).unwrap();
        let more = value_risk(&release, &[age.clone(), height.clone()], &policy).unwrap();
        for report in [&none, &fewer, &more] {
            prop_assert_eq!(report.records().len(), release.len());
            prop_assert!(report.violation_count() <= release.len());
            for record in report.records() {
                prop_assert!((0.0..=1.0).contains(&record.risk()));
                prop_assert!(record.frequency() >= 1, "a record always matches itself");
                prop_assert!(record.frequency() <= record.class_size());
                prop_assert!(record.risk() + 1e-12 >= 1.0 / record.class_size() as f64);
            }
        }
        // With nothing visible there is a single class covering the whole
        // release.
        prop_assert!(none.records().iter().all(|r| r.class_size() == release.len()));
        // Classes only shrink as more quasi-identifiers become visible.
        for (a, b) in fewer.records().iter().zip(more.records().iter()) {
            prop_assert!(b.class_size() <= a.class_size());
        }
    }
}
