//! End-to-end chaos differentials for the live pipeline.
//!
//! Every test here follows the same contract: a hostile writer (torn
//! writes, rotation mid-record, truncation, stalls, gzip corruption —
//! composed with the distrib fault plan where a supervisor is involved)
//! feeds the live pipeline, and the pipeline's alert stream must equal
//! the offline single-process run over the exact bytes the tail
//! observed, modulo the records listed in the dead-letter file — with
//! every quarantined record accounted for by offset, none silently
//! dropped.

use privacy_ingest::deadletter::read_dead_letters;
use privacy_ingest::live::{FollowConfig, LiveSource};
use privacy_ingest::{gzip_compress_stored, FieldMapping, IngestError};
use privacy_mde::chaos::{
    corrupt_gzip, offline_reference, sorted, torn_appends, ChaosScript, ChaosStep, MonitorContext,
    OfflineRun,
};
use privacy_mde::pipeline::{
    DistributedSink, IndexedSink, MonitorSink, PipelineCheckpoint, PipelineConfig, PipelineError,
    PipelineReport, PipelineRunner,
};
use privacy_runtime::{Event, MonitorSnapshot};
use privacy_synth::{render_events, LogFormat};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::Duration;

fn context() -> &'static MonitorContext {
    static CONTEXT: OnceLock<MonitorContext> = OnceLock::new();
    CONTEXT.get_or_init(|| MonitorContext::healthcare().expect("healthcare context"))
}

/// A seeded healthcare event stream (the fixture the fault differentials
/// in `crates/distrib` also build on). The context registers the same
/// population on every monitor it hands out, so this corpus raises a
/// non-empty alert stream — the differentials below compare real alerts,
/// not two empty lists.
fn corpus_events(requests: usize) -> Vec<Event> {
    context().corpus_events(requests)
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("live-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tempdir");
    dir
}

fn fast_follow() -> FollowConfig {
    FollowConfig { poll_interval: Duration::from_millis(2), ..FollowConfig::default() }
}

fn config(dir: &Path) -> PipelineConfig {
    let mut config = PipelineConfig::new(FieldMapping::canonical());
    config.batch = 64;
    config.checkpoint = Some(dir.join("pipeline.ckpt"));
    config.checkpoint_every_events = 128;
    config.dead_letter = Some(dir.join("dead.ndjson"));
    config.follow = fast_follow();
    config
}

/// Runs `script` against a tailing pipeline over `sink`, requesting a
/// graceful drain once the script completes.
fn run_live<S: MonitorSink + Send>(
    runner: &PipelineRunner,
    log: &Path,
    script: ChaosScript,
    sink: &mut S,
) -> (Result<PipelineReport, PipelineError>, Vec<u8>) {
    let progress = runner.progress();
    let stop = runner.stop_handle();
    let source = LiveSource::tail(log, runner_follow(runner));
    std::thread::scope(|scope| {
        let pipeline = scope.spawn(|| runner.run(source, sink, |_| {}));
        // Stop the pipeline *before* asserting on the script outcome — a
        // panic here would otherwise leave the scope joining a tail that
        // never learns it should drain.
        let observed = script.run(&progress);
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let outcome = pipeline.join().expect("pipeline thread");
        let observed = match observed {
            Ok(observed) => observed,
            Err(error) => panic!("chaos script: {error}; pipeline outcome: {outcome:?}"),
        };
        (outcome, observed)
    })
}

/// The runner's follow config (tests tweak `start_offset` for resume).
fn runner_follow(_runner: &PipelineRunner) -> FollowConfig {
    fast_follow()
}

/// Asserts the full differential contract between a live run and the
/// offline oracle for the same observed bytes.
fn assert_differential(
    report: &PipelineReport,
    live_alerts: &[String],
    dead_letter: &Path,
    offline: &OfflineRun,
) {
    assert_eq!(
        sorted(live_alerts),
        sorted(&offline.alerts),
        "live alert stream diverged from the offline run"
    );
    assert_eq!(report.events, offline.report.stats.events, "event counts diverged");
    assert_eq!(report.skipped, offline.report.stats.skipped, "skip counts diverged");

    // Every quarantined record accounted for: the dead-letter file lists
    // exactly the offsets the offline run refused — none missing, none
    // extra, none silently dropped.
    let dead = if dead_letter.exists() {
        read_dead_letters(dead_letter).expect("readable dead-letter file")
    } else {
        Vec::new()
    };
    let mut live_offsets: Vec<u64> = dead.iter().map(|record| record.offset).collect();
    live_offsets.sort_unstable();
    let mut offline_offsets: Vec<u64> =
        offline.report.diagnostics.iter().map(|diag| diag.offset()).collect();
    offline_offsets.sort_unstable();
    assert_eq!(
        live_offsets, offline_offsets,
        "dead-letter offsets diverged from offline diagnostics"
    );
}

#[test]
fn torn_writes_and_stalls_lose_nothing() {
    let dir = tempdir("torn");
    let log = dir.join("app.log");
    let corpus = render_events(&corpus_events(240), LogFormat::Logfmt).into_bytes();

    // Cut at hostile boundaries: mid-line, one byte in, just before a
    // newline — partial lines must carry across reads.
    let len = corpus.len();
    let cuts = [1, len / 7, len / 7 + 3, len / 3, len / 2 + 11, len - 2];
    let steps = torn_appends(&corpus, &cuts, Duration::from_millis(15));
    let script = ChaosScript::new(&log, steps);

    let runner = PipelineRunner::new(config(&dir));
    let mut sink = context().indexed_sink(false);
    let (outcome, observed) = run_live(&runner, &log, script, &mut sink);
    let report = outcome.expect("pipeline run");
    assert_eq!(observed, corpus, "torn appends reassemble the corpus verbatim");

    let offline = offline_reference(context(), &observed, &FieldMapping::canonical(), 64)
        .expect("offline reference");
    let live_alerts: Vec<String> = report.alerts.iter().map(ToString::to_string).collect();
    assert_differential(&report, &live_alerts, &dir.join("dead.ndjson"), &offline);
    assert_eq!(report.skipped, 0, "clean torn writes quarantine nothing");
    assert!(report.checkpoints > 0, "periodic checkpoints were written");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rotation_mid_record_and_poison_lines_are_quarantined_exactly() {
    let dir = tempdir("rotate");
    let log = dir.join("app.log");
    let rendered = render_events(&corpus_events(200), LogFormat::Json);
    let mut lines: Vec<&str> = rendered.lines().collect();
    assert!(lines.len() > 40);

    // Inject known poison: an unknown verb, invalid UTF-8, and a
    // syntactically broken record.
    let poison_verb = "{\"sequence\":9000000,\"user\":\"u-poison\",\"service\":\"Portal\",\
                       \"actor\":\"nurse\",\"action\":\"frobnicate\"}";
    let poison_syntax = "{\"user\":\"u-broken\",";
    lines.insert(10, poison_verb);
    lines.insert(25, poison_syntax);
    let first: String = lines[..20].join("\n");
    let second: String = lines[20..].join("\n");

    // Rotate mid-record: the first segment ends with a *partial* line (a
    // record cut at an arbitrary byte), the new file starts fresh — the
    // seam becomes one torn record.
    let mut head = first.into_bytes();
    let torn_record = lines[19].as_bytes();
    head.extend_from_slice(b"\n");
    head.extend_from_slice(&torn_record[..torn_record.len() / 2]);
    let mut tail_bytes = second.into_bytes();
    tail_bytes.push(b'\n');
    let invalid_utf8 = b"user=u-bad service=\xFF\xFEportal actor=a action=read\n";

    let steps = vec![
        ChaosStep::Append(head.clone()),
        ChaosStep::Rotate,
        ChaosStep::Append(tail_bytes.clone()),
        ChaosStep::Stall(Duration::from_millis(10)),
        ChaosStep::Append(invalid_utf8.to_vec()),
    ];
    let script = ChaosScript::new(&log, steps);

    let runner = PipelineRunner::new(config(&dir));
    let mut sink = context().indexed_sink(false);
    let (outcome, observed) = run_live(&runner, &log, script, &mut sink);
    let report = outcome.expect("pipeline run");
    assert!(report.rotations >= 1, "the rotation was observed");

    let offline = offline_reference(context(), &observed, &FieldMapping::canonical(), 64)
        .expect("offline reference");
    let live_alerts: Vec<String> = report.alerts.iter().map(ToString::to_string).collect();
    assert_differential(&report, &live_alerts, &dir.join("dead.ndjson"), &offline);

    // The injected corruptions are all present in the quarantine, each
    // with its kind: the bad verb, the torn seam, and the UTF-8 garbage.
    let dead = read_dead_letters(&dir.join("dead.ndjson")).expect("dead letters");
    assert_eq!(dead.len() as u64, report.skipped);
    assert!(dead.len() >= 3, "expected at least 3 quarantined records, got {}", dead.len());
    let kinds: Vec<&str> = dead.iter().map(|record| record.kind.as_str()).collect();
    assert!(kinds.contains(&"bad_value"), "bad verb quarantined: {kinds:?}");
    assert!(kinds.contains(&"invalid_utf8"), "UTF-8 garbage quarantined: {kinds:?}");
    assert!(kinds.contains(&"syntax"), "torn/broken records quarantined: {kinds:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncation_replays_the_rewritten_file() {
    let dir = tempdir("trunc");
    let log = dir.join("app.log");
    let events = corpus_events(160);
    let rendered = render_events(&events, LogFormat::Logfmt);
    let lines: Vec<&str> = rendered.lines().collect();
    // Truncation is only observable by a poller when the rewritten file
    // is shorter than the consumed position, so the head carries most of
    // the stream and the replacement is a short tail.
    let split = lines.len() * 4 / 5;
    let head = format!("{}\n", lines[..split].join("\n"));
    let replacement = format!("{}\n", lines[split..].join("\n"));
    assert!(replacement.len() < head.len(), "replacement must be shorter than the consumed head");

    let steps = vec![
        ChaosStep::Append(head.clone().into_bytes()),
        ChaosStep::Truncate(replacement.clone().into_bytes()),
    ];
    let script = ChaosScript::new(&log, steps);

    let runner = PipelineRunner::new(config(&dir));
    let mut sink = context().indexed_sink(false);
    let (outcome, observed) = run_live(&runner, &log, script, &mut sink);
    let report = outcome.expect("pipeline run");
    assert_eq!(report.truncations, 1, "the truncation was observed");
    assert_eq!(observed.len(), head.len() + replacement.len());

    let offline = offline_reference(context(), &observed, &FieldMapping::canonical(), 64)
        .expect("offline reference");
    let live_alerts: Vec<String> = report.alerts.iter().map(ToString::to_string).collect();
    assert_differential(&report, &live_alerts, &dir.join("dead.ndjson"), &offline);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_gzip_is_a_stream_level_dead_letter_matching_offline() {
    let dir = tempdir("gzip");
    let log = dir.join("app.log.gz");
    let corpus = render_events(&corpus_events(60), LogFormat::Json);
    let archive = corrupt_gzip(gzip_compress_stored(corpus.as_bytes()));

    let script = ChaosScript::new(&log, vec![ChaosStep::Append(archive.clone())]);
    let runner = PipelineRunner::new(config(&dir));
    let mut sink = context().indexed_sink(false);
    let (outcome, observed) = run_live(&runner, &log, script, &mut sink);

    // Live fails the stream, like the offline run on the same bytes.
    let error = outcome.expect_err("corrupt gzip must fail the run");
    assert!(
        matches!(&error, PipelineError::Ingest(IngestError::Gzip(_))),
        "unexpected error: {error}"
    );
    let offline = offline_reference(context(), &observed, &FieldMapping::canonical(), 64);
    assert!(offline.is_err(), "offline must also refuse the archive");

    // ... and the failure is accounted for, not silent.
    let dead = read_dead_letters(&dir.join("dead.ndjson")).expect("dead letters");
    assert_eq!(dead.len(), 1);
    assert_eq!(dead[0].kind, "gzip");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_drain_then_resume_completes_the_identical_stream() {
    let dir = tempdir("resume");
    let log = dir.join("app.log");
    let ckpt = dir.join("pipeline.ckpt");
    let corpus = render_events(&corpus_events(200), LogFormat::Logfmt);
    let lines: Vec<&str> = corpus.lines().collect();
    let half = lines.len() / 2;
    let first = format!("{}\n", lines[..half].join("\n"));
    let second = format!("{}\n", lines[half..].join("\n"));

    // Run 1: write the first half, then request a graceful drain via the
    // stop file.
    let stop_file = dir.join("stop");
    let mut config1 = config(&dir);
    config1.stop_file = Some(stop_file.clone());
    let runner1 = PipelineRunner::new(config1);
    let mut sink1 = context().indexed_sink(false);
    let progress1 = runner1.progress();
    let report1 = std::thread::scope(|scope| {
        let source = LiveSource::tail(&log, fast_follow());
        let pipeline = scope.spawn(|| runner1.run(source, &mut sink1, |_| {}));
        let script = ChaosScript::new(&log, vec![ChaosStep::Append(first.clone().into_bytes())]);
        let scripted = script.run(&progress1);
        std::fs::write(&stop_file, b"drain").expect("stop file");
        let report = pipeline.join().expect("pipeline thread").expect("run 1");
        scripted.expect("chaos script");
        report
    });
    assert_eq!(report1.offset, first.len() as u64, "run 1 drained everything it observed");
    assert!(ckpt.exists(), "a final checkpoint was written at drain");
    drop(sink1);

    // Run 2: resume from the final checkpoint — monitor state from the
    // embedded snapshot, the stream from the recorded offset.
    let bytes = std::fs::read(&ckpt).expect("checkpoint bytes");
    let resume = PipelineCheckpoint::from_bytes(&bytes).expect("decode checkpoint");
    assert_eq!(resume.offset, first.len() as u64);
    let snapshot = MonitorSnapshot::from_bytes(&resume.snapshot).expect("embedded snapshot");
    let system = context().system();
    let monitor = privacy_runtime::IndexedMonitor::resume_from(
        system.catalog().clone(),
        system.policy().clone(),
        std::sync::Arc::clone(context().index()),
        &snapshot,
    )
    .expect("resume monitor");
    let mut sink2 = IndexedSink::new(monitor, context().services().to_vec(), false);

    let mut config2 = config(&dir);
    config2.follow.start_offset = resume.offset;
    config2.follow.poll_interval = Duration::from_millis(2);
    config2.resume = Some(resume);
    let runner2 = PipelineRunner::new(config2);
    let progress2 = runner2.progress();
    let stop2 = runner2.stop_handle();
    let report2 = std::thread::scope(|scope| {
        let source = LiveSource::tail(
            &log,
            FollowConfig { start_offset: first.len() as u64, ..fast_follow() },
        );
        let pipeline = scope.spawn(|| runner2.run(source, &mut sink2, |_| {}));
        let script = ChaosScript::new(&log, vec![ChaosStep::Append(second.clone().into_bytes())]);
        // Run 2 only observes the second half: offsets continue, bytes
        // observed this run start at zero.
        let observed = script.run(&progress2);
        assert!(observed.is_ok() || progress2.bytes.load(std::sync::atomic::Ordering::Relaxed) > 0);
        stop2.store(true, std::sync::atomic::Ordering::Relaxed);
        pipeline.join().expect("pipeline thread").expect("run 2")
    });
    assert_eq!(report2.offset, (first.len() + second.len()) as u64);

    // The two runs together equal one offline pass over the whole stream.
    let whole = format!("{first}{second}");
    let offline = offline_reference(context(), whole.as_bytes(), &FieldMapping::canonical(), 64)
        .expect("offline reference");
    let mut live_alerts: Vec<String> = report1.alerts.iter().map(ToString::to_string).collect();
    live_alerts.extend(report2.alerts.iter().map(ToString::to_string));
    assert_eq!(sorted(&live_alerts), sorted(&offline.alerts), "resumed stream diverged");
    assert_eq!(report2.events, offline.report.stats.events, "cumulative event count diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Wait-observed in run 2 counts bytes from zero, so the plain
/// `ChaosScript::run` target is correct there (it only writes `second`).
#[test]
fn pipe_source_drains_on_eof_and_matches_offline() {
    struct ChunkReader {
        chunks: std::vec::IntoIter<Vec<u8>>,
        current: Vec<u8>,
    }
    impl std::io::Read for ChunkReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.current.is_empty() {
                match self.chunks.next() {
                    Some(chunk) => self.current = chunk,
                    None => return Ok(0),
                }
            }
            let n = buf.len().min(self.current.len());
            buf[..n].copy_from_slice(&self.current[..n]);
            self.current.drain(..n);
            Ok(n)
        }
    }

    let dir = tempdir("pipe");
    let corpus = render_events(&corpus_events(120), LogFormat::Csv).into_bytes();
    // Hostile chunking: 7-byte reads tear every record across reads.
    let chunks: Vec<Vec<u8>> = corpus.chunks(7).map(<[u8]>::to_vec).collect();
    let reader = ChunkReader { chunks: chunks.into_iter(), current: Vec::new() };

    let mut config = config(&dir);
    config.checkpoint = None;
    let runner = PipelineRunner::new(config);
    let mut sink = context().indexed_sink(false);
    let source = LiveSource::pipe(Box::new(reader), fast_follow());
    let report = runner.run(source, &mut sink, |_| {}).expect("pipe run");

    let offline = offline_reference(context(), &corpus, &FieldMapping::canonical(), 64)
        .expect("offline reference");
    let live_alerts: Vec<String> = report.alerts.iter().map(ToString::to_string).collect();
    assert_differential(&report, &live_alerts, &dir.join("dead.ndjson"), &offline);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The composed case: ingest chaos in front, the distrib fault plan
/// behind — a worker killed mid-run recovers from its checkpoint while
/// the tail keeps quarantining poison, and the differential still holds.
#[test]
fn distributed_sink_with_fault_plan_survives_composed_chaos() {
    use privacy_distrib::{DistributedMonitor, FaultPlan, SupervisorConfig};

    // The shard worker binary is built by `cargo test` / CI alongside this
    // test; skip (loudly) if only this package was built.
    let shardd = Path::new(env!("CARGO_BIN_EXE_privacy-monitor")).with_file_name("privacy-shardd");
    if !shardd.exists() {
        eprintln!("skipping: {} not built", shardd.display());
        return;
    }

    let dir = tempdir("distrib");
    let log = dir.join("app.log");
    let rendered = render_events(&corpus_events(200), LogFormat::Json);
    let mut lines: Vec<&str> = rendered.lines().collect();
    let poison = "{\"sequence\":9000001,\"user\":\"u-poison\",\"service\":\"Portal\",\
                  \"actor\":\"nurse\",\"action\":\"frobnicate\"}";
    lines.insert(15, poison);
    let corpus = format!("{}\n", lines.join("\n"));
    let len = corpus.len();
    let cuts = [len / 5, len / 5 + 2, len / 2];
    let steps = torn_appends(corpus.as_bytes(), &cuts, Duration::from_millis(10));
    let script = ChaosScript::new(&log, steps);

    let system = context().system();
    let mut supervisor_config = SupervisorConfig::new(&shardd, dir.join("ckpt"));
    supervisor_config.workers = 2;
    supervisor_config.checkpoint_every = 3;
    // Compose with the distrib fault plan: kill worker 0 after 4 events.
    supervisor_config.fault_plan = FaultPlan::none().kill_after(0, 0, 4);
    let fingerprint = context().index().fingerprint();
    let mut monitor =
        DistributedMonitor::launch("Healthcare", system, fingerprint, supervisor_config)
            .expect("launch supervisor");
    // Mirror the offline oracle's pre-registered population: the workers
    // must hold the same partial-consent profiles as the indexed monitor
    // the offline run uses, or the alert differential would compare
    // different policies.
    for user in context().population() {
        monitor.register_user(user).expect("register population");
    }
    let mut sink = DistributedSink::new(monitor, context().services().to_vec(), false);

    let mut config = config(&dir);
    config.checkpoint = None; // the supervisor checkpoints its workers
    config.batch = 16;
    let runner = PipelineRunner::new(config);
    let (outcome, observed) = run_live(&runner, &log, script, &mut sink);
    let report = outcome.expect("pipeline run over the distributed sink");
    let mut monitor = sink.into_monitor();
    let (late, stats) = monitor.shutdown().expect("shutdown");
    assert!(!stats.recoveries.is_empty(), "the injected kill forced a recovery");

    let offline = offline_reference(context(), &observed, &FieldMapping::canonical(), 16)
        .expect("offline reference");
    let mut live_alerts: Vec<String> = report.alerts.iter().map(ToString::to_string).collect();
    live_alerts.extend(late.iter().map(ToString::to_string));
    assert_eq!(
        sorted(&live_alerts),
        sorted(&offline.alerts),
        "distributed live alerts diverged from the offline run"
    );

    // The poison record is quarantined with its exact offset.
    let dead = read_dead_letters(&dir.join("dead.ndjson")).expect("dead letters");
    assert_eq!(dead.len(), offline.report.diagnostics.len());
    assert!(dead.iter().any(|record| record.kind == "bad_value"));
    let _ = std::fs::remove_dir_all(&dir);
}
