//! Smoke tests pinning the paper's headline numbers, so the claims made in
//! `README.md` and `docs/PIPELINE.md` cannot silently drift away from what
//! the code computes.
//!
//! Source: Grace et al., *Identifying Privacy Risks in Distributed Data
//! Services: A Model-Driven Approach*, ICDCS 2018 — Section III (the
//! healthcare state model) and Section IV, Case Study A.

use privacy_mde::core::{casestudy, Pipeline};
use privacy_mde::lts::VarSpace;
use privacy_mde::model::RiskLevel;

/// Section III: the doctors'-surgery model has five actors and the six
/// personal-data fields of Section II-B, giving 5 × 6 × 2 = 60 boolean state
/// variables (a `has` and a `could` variable per actor/field pair) and the
/// `2^60` theoretical state space the paper quotes.
///
/// The reproduction's catalog additionally registers the Table I physical
/// attributes and their pseudonymised counterparts, so the *full* catalog is
/// larger; the paper's number is the variable space over the core fields.
#[test]
fn healthcare_state_space_has_sixty_variables() {
    let system = casestudy::healthcare().expect("fixture builds");
    let catalog = system.catalog();
    assert_eq!(catalog.actor_count(), 5, "paper models 5 actors");

    let core_fields = [
        casestudy::fields::name(),
        casestudy::fields::date_of_birth(),
        casestudy::fields::appointment(),
        casestudy::fields::medical_issues(),
        casestudy::fields::diagnosis(),
        casestudy::fields::treatment(),
    ];
    let actors = catalog.actors().map(|actor| actor.id().clone()).collect::<Vec<_>>();
    let space = VarSpace::new(actors, core_fields);
    assert_eq!(space.variable_count(), 60, "the paper's state model has 60 boolean variables");
    assert_eq!(space.theoretical_state_count(), 2f64.powi(60));

    // The full reproduction catalog keeps the paper formula 2 × actors ×
    // fields; it only registers more fields (Table I + pseudonyms).
    assert_eq!(catalog.state_variable_count(), 2 * 5 * catalog.field_count());
}

/// Case Study A: analysing the unwanted-disclosure risk for a patient who
/// consents to the Medical Service flags the Administrator's potential read
/// of the diagnosis as a Medium overall risk.
#[test]
fn case_a_overall_disclosure_risk_is_medium() {
    let system = casestudy::healthcare().expect("fixture builds");
    let outcome =
        Pipeline::new(&system).analyse_user(&casestudy::case_a_user()).expect("pipeline runs");
    assert_eq!(outcome.report.overall_level(), RiskLevel::Medium);

    let disclosure = outcome.report.disclosure().expect("disclosure analysis ran");
    assert_eq!(
        disclosure.risk_for(&casestudy::actors::administrator(), &casestudy::fields::diagnosis()),
        RiskLevel::Medium,
        "the Administrator's potential read of the diagnosis is the Medium risk"
    );
}
