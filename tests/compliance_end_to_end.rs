//! Integration tests for privacy-policy compliance checking over the
//! healthcare case study: design-time findings on the LTS, operation-time
//! findings on simulated event logs, and their consistency.

use privacy_mde::access::{Permission, PolicyDelta};
use privacy_mde::compliance::{
    baseline_policy, check_log, check_lts, forbid_non_allowed, ActorMatcher, FieldMatcher,
    PrivacyPolicy, Statement,
};
use privacy_mde::core::casestudy;
use privacy_mde::lts::ActionKind;
use privacy_mde::model::{Record, UserId};
use privacy_mde::runtime::ServiceEngine;

fn patient_record(name: &str) -> Record {
    Record::new()
        .with("Name", name)
        .with("Date of Birth", "1979-05-05")
        .with("Medical Issues", "fatigue")
        .with("Diagnosis", "anaemia")
        .with("Treatment Information", "iron supplements")
        .with("Age", 46)
        .with("Height", 170)
        .with("Weight", 72.0)
}

#[test]
fn the_case_a_unwanted_disclosure_is_also_a_compliance_violation() {
    let system = casestudy::healthcare().unwrap();
    let lts = system.generate_lts().unwrap();

    // The statement mirrors Case Study A: the user consented to the Medical
    // Service only, so only its actors may touch the diagnosis.
    let medical_actors =
        system.catalog().service(&casestudy::medical_service()).unwrap().actors().to_vec();
    let policy = PrivacyPolicy::new("consent boundary").with_statement(forbid_non_allowed(
        "CONSENT",
        medical_actors,
        FieldMatcher::only([casestudy::fields::diagnosis()]),
    ));

    let report = check_lts(&lts, &policy);
    assert!(!report.is_compliant());
    // The administrator's release-preparation read is among the violations.
    assert!(report.violations().any(|v| v.detail().contains("Administrator")));
}

#[test]
fn researcher_promises_hold_on_the_design() {
    let system = casestudy::healthcare().unwrap();
    let lts = system.generate_lts().unwrap();
    let policy = PrivacyPolicy::new("researcher boundary").with_statement(Statement::forbid(
        "NO-RESEARCHER-RAW",
        "researchers never read raw diagnosis records",
        ActorMatcher::only([casestudy::actors::researcher()]),
        Some(ActionKind::Read),
        FieldMatcher::only([
            casestudy::fields::diagnosis(),
            casestudy::fields::medical_issues(),
            casestudy::fields::treatment(),
        ]),
    ));
    assert!(check_lts(&lts, &policy).is_compliant());
}

#[test]
fn baseline_policy_flags_the_missing_erasure_path_in_the_healthcare_design() {
    let system = casestudy::healthcare().unwrap();
    let lts = system.generate_lts().unwrap();
    let policy = baseline_policy(system.catalog(), [], 5);
    let report = check_lts(&lts, &policy);
    // No flow in Fig. 1 ever deletes personal data, so every processed
    // sensitive field fails its erasure obligation.
    assert!(!report.is_compliant());
    assert!(!report.outcome("ERASE-Diagnosis").unwrap().holds());
    // The exposure bound of 5 actors is generous enough to hold.
    assert!(report.outcome("EXPOSE-Name").unwrap().holds());
}

#[test]
fn design_time_and_runtime_checks_agree_on_the_administrator_read() {
    let system = casestudy::healthcare().unwrap();
    let policy = PrivacyPolicy::new("notice").with_statement(Statement::forbid(
        "NO-ADMIN-DIAGNOSIS",
        "administrators never read the diagnosis",
        ActorMatcher::only([casestudy::actors::administrator()]),
        Some(ActionKind::Read),
        FieldMatcher::only([casestudy::fields::diagnosis()]),
    ));

    // Design time: the research flow violates the promise.
    let lts = system.generate_lts().unwrap();
    let design = check_lts(&lts, &policy);
    assert!(!design.is_compliant());

    // Operation time: replaying both services produces the same finding.
    let mut engine = ServiceEngine::new(
        system.catalog().clone(),
        system.dataflows().clone(),
        system.policy().clone(),
    );
    let user = UserId::new("p-1");
    engine.execute(&user, &casestudy::medical_service(), &patient_record("p-1")).unwrap();
    engine.execute(&user, &casestudy::research_service(), &patient_record("p-1")).unwrap();
    let runtime = check_log(engine.log(), &policy);
    assert!(!runtime.is_compliant());
    assert!(runtime.violations().any(|v| v.detail().contains("Administrator")));
}

#[test]
fn revoking_access_suppresses_the_runtime_violation_but_not_the_design_conflict() {
    let system = casestudy::healthcare().unwrap();
    let policy = PrivacyPolicy::new("notice").with_statement(Statement::forbid(
        "NO-ADMIN-DIAGNOSIS",
        "administrators never read the diagnosis",
        ActorMatcher::only([casestudy::actors::administrator()]),
        Some(ActionKind::Read),
        FieldMatcher::only([casestudy::fields::diagnosis()]),
    ));

    let delta = PolicyDelta::new().revoke("Administrator", Permission::Read, "EHR");
    let revised = system.with_policy(system.policy().with_applied(&delta));

    // At runtime the enforcement now denies the read, so the observed
    // behaviour complies...
    let mut engine = ServiceEngine::new(
        revised.catalog().clone(),
        revised.dataflows().clone(),
        revised.policy().clone(),
    );
    let user = UserId::new("p-2");
    engine.execute(&user, &casestudy::medical_service(), &patient_record("p-2")).unwrap();
    engine.execute(&user, &casestudy::research_service(), &patient_record("p-2")).unwrap();
    let runtime = check_log(engine.log(), &policy);
    assert!(runtime.is_compliant(), "{runtime}");

    // ...but the research service still *declares* the read in its data
    // flow, so the design-time conflict remains until the flow is redesigned.
    let lts = revised.generate_lts().unwrap();
    assert!(!check_lts(&lts, &policy).is_compliant());
}

#[test]
fn service_limits_are_skipped_on_the_lts_and_checked_on_the_log() {
    let system = casestudy::healthcare().unwrap();
    let policy = PrivacyPolicy::new("notice").with_statement(Statement::service_limit(
        "RAW-STAYS-CLINICAL",
        "raw diagnosis data is only processed by the medical service",
        FieldMatcher::only([casestudy::fields::diagnosis()]),
        [casestudy::medical_service()],
    ));

    let lts = system.generate_lts().unwrap();
    let design = check_lts(&lts, &policy);
    assert!(design.is_compliant());
    assert_eq!(design.skipped().count(), 1);

    let mut engine = ServiceEngine::new(
        system.catalog().clone(),
        system.dataflows().clone(),
        system.policy().clone(),
    );
    let user = UserId::new("p-3");
    engine.execute(&user, &casestudy::medical_service(), &patient_record("p-3")).unwrap();
    engine.execute(&user, &casestudy::research_service(), &patient_record("p-3")).unwrap();
    let runtime = check_log(engine.log(), &policy);
    assert!(!runtime.is_compliant());
    assert_eq!(runtime.skipped().count(), 0);
}

#[test]
fn compliance_reports_render_with_pass_fail_and_skip_sections() {
    let system = casestudy::healthcare().unwrap();
    let lts = system.generate_lts().unwrap();
    let policy = PrivacyPolicy::new("notice")
        .with_statement(Statement::forbid(
            "NO-RESEARCHER-RAW",
            "researchers never read raw diagnosis records",
            ActorMatcher::only([casestudy::actors::researcher()]),
            Some(ActionKind::Read),
            FieldMatcher::only([casestudy::fields::diagnosis()]),
        ))
        .with_statement(Statement::require_erasure(
            "ERASE-Diagnosis",
            "diagnosis must be erasable",
            FieldMatcher::only([casestudy::fields::diagnosis()]),
        ))
        .with_statement(Statement::service_limit(
            "RAW-STAYS-CLINICAL",
            "raw diagnosis stays clinical",
            FieldMatcher::only([casestudy::fields::diagnosis()]),
            [casestudy::medical_service()],
        ));
    let rendered = check_lts(&lts, &policy).render();
    assert!(rendered.contains("PASS  [NO-RESEARCHER-RAW]"));
    assert!(rendered.contains("FAIL  [ERASE-Diagnosis]"));
    assert!(rendered.contains("SKIP  [RAW-STAYS-CLINICAL]"));
}
