//! Integration tests for the exported artefacts a developer actually looks
//! at: DOT renderings of the data-flow diagrams and of the annotated LTS, the
//! exposure summary, and the textual risk report.

use privacy_mde::core::{casestudy, Pipeline};
use privacy_mde::dataflow::dot::{diagram_to_dot, system_to_dot};
use privacy_mde::lts::dot::{lts_to_dot_with, DotOptions};
use privacy_mde::lts::{GeneratorConfig, LtsIndex, LtsQuery};
use privacy_mde::model::FieldId;

#[test]
fn figure_one_dot_export_contains_both_services_and_all_stores() {
    let system = casestudy::healthcare().unwrap();
    let dot = system_to_dot(system.dataflows());
    for needle in [
        "MedicalService",
        "MedicalResearchService",
        "Appointments",
        "EHR",
        "AnonEHR",
        "book appointment",
        "medical research",
        "subgraph cluster_0",
        "subgraph cluster_1",
    ] {
        assert!(dot.contains(needle), "missing `{needle}` in system DOT");
    }

    // Per-diagram export for the medical service alone.
    let diagram = system.dataflows().diagram(&casestudy::medical_service()).unwrap();
    let single = diagram_to_dot(diagram);
    assert!(single.contains("Receptionist"));
    assert!(single.contains("administer treatment"));
    assert!(!single.contains("Researcher"));
}

#[test]
fn figure_three_dot_export_can_show_or_suppress_state_variables() {
    let system = casestudy::healthcare().unwrap();
    let lts = system.generate_lts_with(&GeneratorConfig::for_service("MedicalService")).unwrap();

    let compact = lts_to_dot_with(&lts, &DotOptions::default());
    // The paper suppresses state variables in Fig. 3 for readability.
    assert!(!compact.contains("has("));
    assert!(compact.contains("doublecircle"));

    let verbose = lts_to_dot_with(
        &lts,
        &DotOptions { show_state_variables: true, title: "Fig. 3".to_owned() },
    );
    assert!(verbose.contains("Fig. 3"));
    assert!(verbose.contains("has(Doctor,"));
}

#[test]
fn exposure_summary_names_exactly_the_actors_that_can_identify_data() {
    let system = casestudy::healthcare().unwrap();
    let lts = system.generate_lts_with(&GeneratorConfig::for_service("MedicalService")).unwrap();
    // One columnar index backs every query below (the scan strategy is
    // exercised — and pinned identical — by the crates' differential tests).
    let index = LtsIndex::build(&lts);
    let query = LtsQuery::with_index(&lts, &index);
    let summary = query.exposure_summary();

    // The receptionist collects the name, the doctor the diagnosis, the
    // nurse reads the treatment, the administrator could read what the EHR
    // stores. The researcher never appears for the medical service alone.
    assert!(summary.contains(&(casestudy::actors::receptionist(), casestudy::fields::name())));
    assert!(summary.contains(&(casestudy::actors::doctor(), casestudy::fields::diagnosis())));
    assert!(summary.contains(&(casestudy::actors::nurse(), casestudy::fields::treatment())));
    assert!(summary.contains(&(casestudy::actors::administrator(), casestudy::fields::diagnosis())));
    assert!(!summary.iter().any(|(actor, _)| actor == &casestudy::actors::researcher()));

    // The trace explains how the doctor comes to identify the medical issues
    // (collected directly from the patient during the consultation).
    let trace = query
        .trace_to_identification(&casestudy::actors::doctor(), &casestudy::fields::medical_issues())
        .expect("a trace exists");
    assert!(trace.iter().any(|step| step.starts_with("collect")));
    // The diagnosis, by contrast, is authored by the doctor rather than
    // collected, so no collect/read trace sets the `has` variable for it.
    assert!(query
        .trace_to_identification(&casestudy::actors::doctor(), &casestudy::fields::diagnosis())
        .is_none());
}

#[test]
fn rendered_risk_report_is_suitable_for_a_privacy_notice() {
    // The paper suggests the analysis output could "form part of the privacy
    // policy explained to users"; the rendered report must therefore name the
    // actors, the fields and the levels in plain text.
    let system = casestudy::healthcare().unwrap();
    let outcome = Pipeline::new(&system).analyse_user(&casestudy::case_a_user()).unwrap();
    let text = outcome.report.render();
    assert!(text.contains("privacy risk report"));
    assert!(text.contains("Administrator"));
    assert!(text.contains("Diagnosis"));
    assert!(text.contains("Medium"));
    assert!(text.contains("pseudonymisation analysis: not run"));
}

#[test]
fn field_identifier_conventions_hold_across_the_case_study() {
    // Every pseudonymised field registered by the case study links back to a
    // registered original field — the invariant the pseudonymisation risk
    // analysis relies on when it maps `f_anon` back to `f`.
    let system = casestudy::healthcare().unwrap();
    for field in system.catalog().fields() {
        if field.is_pseudonymised() {
            let original: FieldId = field.original().expect("anon fields have an original");
            assert!(
                system.catalog().field(&original).is_some(),
                "pseudonymised field {} has no original",
                field.id()
            );
        }
    }
}
