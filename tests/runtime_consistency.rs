//! Integration tests checking that the runtime monitoring path agrees with
//! the design-time analysis: executing the modelled service produces exactly
//! the exposures the generated LTS predicts.

use privacy_mde::access::{Permission, PolicyDelta};
use privacy_mde::core::{casestudy, Pipeline};
use privacy_mde::lts::VarSpace;
use privacy_mde::model::{Record, RiskLevel, UserId};
use privacy_mde::runtime::{RuntimeMonitor, ServiceEngine};

fn patient_record(name: &str) -> Record {
    Record::new()
        .with("Name", name)
        .with("Medical Issues", "chest pain")
        .with("Diagnosis", "hypertension")
        .with("Treatment Information", "medication")
}

#[test]
fn runtime_alerts_match_the_design_time_finding() {
    let system = casestudy::healthcare().unwrap();
    let user = casestudy::case_a_user();

    // Design time: Medium risk for the administrator reading the diagnosis.
    let design = Pipeline::new(&system).analyse_user(&user).unwrap();
    let design_level = design
        .report
        .disclosure()
        .unwrap()
        .risk_for(&casestudy::actors::administrator(), &casestudy::fields::diagnosis());
    assert_eq!(design_level, RiskLevel::Medium);

    // Run time: execute the medical service for the same user and watch the
    // monitor.
    let mut engine = ServiceEngine::new(
        system.catalog().clone(),
        system.dataflows().clone(),
        system.policy().clone(),
    );
    let mut monitor = RuntimeMonitor::new(system.catalog().clone(), system.policy().clone());
    monitor.register_user(&user);
    let outcome = engine
        .execute(
            &UserId::new(user.id().as_str()),
            &casestudy::medical_service(),
            &patient_record("case-a-user"),
        )
        .unwrap();
    assert!(outcome.fully_permitted());
    let alerts = monitor.observe_all(outcome.events());

    // The monitor raises at least one alert about the administrator and the
    // diagnosis, at the same Medium level the design-time analysis reported.
    let diagnosis_alerts: Vec<_> = alerts
        .iter()
        .filter(|a| a.message().contains("Administrator") && a.message().contains("Diagnosis"))
        .collect();
    assert_eq!(diagnosis_alerts.len(), 1);
    assert_eq!(diagnosis_alerts[0].level(), design_level);

    // The tracked runtime privacy state is consistent with some reachable
    // design-time LTS state.
    let space = VarSpace::from_catalog(system.catalog());
    let runtime_state = monitor.state_of(&UserId::new("case-a-user")).unwrap();
    assert!(runtime_state.could(
        &space,
        &casestudy::actors::administrator(),
        &casestudy::fields::diagnosis()
    ));
    let design_space = design.lts.space().clone();
    assert!(design.lts.states().any(|(_, s)| {
        s.could(&design_space, &casestudy::actors::administrator(), &casestudy::fields::diagnosis())
    }));
}

#[test]
fn runtime_enforcement_reflects_the_policy_change() {
    let system = casestudy::healthcare().unwrap();
    let revised = system.with_policy(system.policy().with_applied(&PolicyDelta::new().revoke(
        "Administrator",
        Permission::Read,
        "EHR",
    )));
    let user = casestudy::case_a_user();

    let mut engine = ServiceEngine::new(
        revised.catalog().clone(),
        revised.dataflows().clone(),
        revised.policy().clone(),
    );
    let mut monitor = RuntimeMonitor::new(revised.catalog().clone(), revised.policy().clone());
    monitor.register_user(&user);

    // The medical service is unaffected.
    let medical = engine
        .execute(
            &UserId::new("case-a-user"),
            &casestudy::medical_service(),
            &patient_record("case-a-user"),
        )
        .unwrap();
    assert!(medical.fully_permitted());
    assert!(monitor.observe_all(medical.events()).is_empty());

    // The research service's first flow (the administrator reading the EHR)
    // is now denied by the enforcement point.
    let research = engine
        .execute(&UserId::new("case-a-user"), &casestudy::research_service(), &Record::new())
        .unwrap();
    assert!(research.denied() >= 1);
    assert!(engine.log().denied().iter().any(|e| e.actor() == &casestudy::actors::administrator()));
}

#[test]
fn denied_events_never_change_the_monitored_privacy_state() {
    let system = casestudy::healthcare().unwrap();
    let revised = system.with_policy(system.policy().with_applied(&PolicyDelta::new().revoke(
        "Administrator",
        Permission::Read,
        "EHR",
    )));
    let user = casestudy::case_a_user();
    let mut engine = ServiceEngine::new(
        revised.catalog().clone(),
        revised.dataflows().clone(),
        revised.policy().clone(),
    );
    let mut monitor = RuntimeMonitor::new(revised.catalog().clone(), revised.policy().clone());
    monitor.register_user(&user);

    let research = engine
        .execute(&UserId::new("case-a-user"), &casestudy::research_service(), &Record::new())
        .unwrap();
    monitor.observe_all(research.events());

    let space = VarSpace::from_catalog(revised.catalog());
    let state = monitor.state_of(&UserId::new("case-a-user")).unwrap();
    assert!(!state.has(
        &space,
        &casestudy::actors::administrator(),
        &casestudy::fields::diagnosis()
    ));
}
