//! Integration tests for the ABAC extension: attribute-based grants feed the
//! same exposure computation as ACL/RBAC grants, so the LTS generation and
//! the disclosure-risk analysis see them identically.

use privacy_mde::access::{AbacRule, AttributePredicate, Grant, Permission};
use privacy_mde::core::{casestudy, Pipeline, PrivacySystem};
use privacy_mde::dataflow::DiagramBuilder;
use privacy_mde::model::{
    Actor, ActorId, DataField, DataSchema, DatastoreDecl, FieldId, RiskLevel, SensitivityCategory,
    ServiceDecl, ServiceId, UserProfile,
};

/// A small system where the only way an analyst can reach the salary data is
/// through an ABAC rule keyed on a clearance attribute.
fn abac_system(clearance: i64) -> PrivacySystem {
    let mut builder = PrivacySystem::builder();
    {
        let catalog = builder.catalog_mut();
        catalog.add_actor(Actor::role("Advisor")).unwrap();
        catalog.add_actor(Actor::role("Analyst")).unwrap();
        catalog.add_field(DataField::identifier("Email")).unwrap();
        catalog.add_field(DataField::sensitive("Salary")).unwrap();
        catalog
            .add_schema(DataSchema::new(
                "CustomerSchema",
                [FieldId::new("Email"), FieldId::new("Salary")],
            ))
            .unwrap();
        catalog.add_datastore(DatastoreDecl::new("CustomerDB", "CustomerSchema")).unwrap();
        catalog.add_service(ServiceDecl::new("AdviceService", [ActorId::new("Advisor")])).unwrap();
    }
    {
        let policy = builder.policy_mut();
        policy.acl_mut().grant(Grant::read_write_all("Advisor", "CustomerDB"));
        policy
            .abac_mut()
            .set_actor_attribute("Analyst", "clearance", clearance)
            .set_datastore_attribute("CustomerDB", "classification", "financial")
            .add_rule(
                AbacRule::new("financial-analytics", [Permission::Read])
                    .when_actor(AttributePredicate::AtLeast("clearance".into(), 3))
                    .when_datastore(AttributePredicate::Equals(
                        "classification".into(),
                        "financial".into(),
                    )),
            );
    }
    builder
        .add_diagram(
            DiagramBuilder::new("AdviceService")
                .collect("Advisor", ["Email", "Salary"], "intake", 1)
                .unwrap()
                .create("Advisor", "CustomerDB", ["Email", "Salary"], "persist", 2)
                .unwrap()
                .build(),
        )
        .unwrap();
    builder.build().unwrap()
}

fn customer() -> UserProfile {
    UserProfile::new("customer-1")
        .consents_to(ServiceId::new("AdviceService"))
        .with_category_sensitivity(FieldId::new("Salary"), SensitivityCategory::High)
}

#[test]
fn abac_granted_access_is_reported_as_unwanted_disclosure() {
    // With clearance 3 the ABAC rule fires: the analyst (non-allowed for this
    // user) can read the salary once it is stored — Medium risk.
    let system = abac_system(3);
    let outcome = Pipeline::new(&system).analyse_user(&customer()).unwrap();
    let disclosure = outcome.report.disclosure().unwrap();
    assert_eq!(
        disclosure.risk_for(&ActorId::new("Analyst"), &FieldId::new("Salary")),
        RiskLevel::Medium
    );

    // The LTS exposure (could-variable) reflects the ABAC grant too.
    let space = outcome.lts.space().clone();
    assert!(outcome.lts.states().any(|(_, s)| s.could(
        &space,
        &ActorId::new("Analyst"),
        &FieldId::new("Salary")
    )));
}

#[test]
fn insufficient_clearance_means_no_exposure_and_no_finding() {
    let system = abac_system(1);
    let outcome = Pipeline::new(&system).analyse_user(&customer()).unwrap();
    let disclosure = outcome.report.disclosure().unwrap();
    assert_eq!(
        disclosure.risk_for(&ActorId::new("Analyst"), &FieldId::new("Salary")),
        RiskLevel::Low
    );
    assert!(disclosure.is_empty());
    let space = outcome.lts.space().clone();
    assert!(!outcome.lts.states().any(|(_, s)| s.could(
        &space,
        &ActorId::new("Analyst"),
        &FieldId::new("Salary")
    )));
}

#[test]
fn abac_policy_composes_with_the_healthcare_acl_policy() {
    // Granting the researcher clearance-based read access to the raw EHR via
    // ABAC (on top of the paper's ACL policy) turns the researcher into a
    // second Medium-risk finding for the Case Study A user.
    let system = casestudy::healthcare().unwrap();
    let mut policy = system.policy().clone();
    policy
        .abac_mut()
        .set_actor_attribute("Researcher", "clearance", 5i64)
        .set_datastore_attribute("EHR", "classification", "clinical")
        .add_rule(
            AbacRule::new("clinical-research-override", [Permission::Read])
                .when_actor(AttributePredicate::AtLeast("clearance".into(), 4))
                .when_datastore(AttributePredicate::Equals(
                    "classification".into(),
                    "clinical".into(),
                )),
        );
    let extended = system.with_policy(policy);

    let baseline = Pipeline::new(&system).analyse_user(&casestudy::case_a_user()).unwrap();
    let with_abac = Pipeline::new(&extended).analyse_user(&casestudy::case_a_user()).unwrap();

    let researcher = casestudy::actors::researcher();
    let diagnosis = casestudy::fields::diagnosis();
    assert_eq!(
        baseline.report.disclosure().unwrap().risk_for(&researcher, &diagnosis),
        RiskLevel::Low
    );
    assert_eq!(
        with_abac.report.disclosure().unwrap().risk_for(&researcher, &diagnosis),
        RiskLevel::Medium
    );
    assert!(
        with_abac.report.disclosure().unwrap().len() > baseline.report.disclosure().unwrap().len()
    );
}
