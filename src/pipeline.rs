//! The live pipeline: supervised tail-to-alert operation.
//!
//! [`PipelineRunner`] wires a [`LiveSource`] (a polled file tail or a
//! long-lived pipe) through a [`FieldMapping`] into a monitor sink — the
//! in-process [`IndexedMonitor`] or the multi-process
//! [`DistributedMonitor`] — with the operational guarantees a monitor
//! that runs for days needs:
//!
//! * **Backpressure, not unbounded growth.** A parser thread assembles
//!   lines and resolves events; batches travel to the monitor loop over a
//!   *bounded* queue ([`std::sync::mpsc::sync_channel`]). When the
//!   monitor falls behind, the parser blocks — memory stays flat.
//! * **Poison quarantine, not death.** A record the ingest refuses is
//!   appended to a dead-letter NDJSON file
//!   ([`privacy_ingest::deadletter`]) with its typed error and exact byte
//!   span in the logical stream; the pipeline keeps going. Nothing is
//!   silently dropped: the chaos harness (`tests/live_chaos.rs`) asserts
//!   the dead-letter file accounts for every record the offline run
//!   refuses.
//! * **Resumable checkpoints.** Every `checkpoint_every_events` resolved
//!   events, a [`PipelineCheckpoint`] — stream offset, line count,
//!   sequence counter, pinned format, and (for the indexed sink) the
//!   embedded [`MonitorSnapshot`](privacy_runtime::MonitorSnapshot) — is
//!   written atomically through [`CheckpointStore`].
//! * **Graceful drain.** On a stop signal (the [`PipelineRunner::stop_handle`]
//!   handle, a `--stop-file`, or pipe EOF) the parser finishes the
//!   partial line it is carrying, the queue drains, pending alerts flush,
//!   and a final checkpoint is written — a subsequent run with
//!   [`PipelineConfig::resume`] continues the identical stream.
//!
//! Live-vs-offline equivalence is structural, not aspirational: both this
//! runner and [`privacy_ingest::ingest_bytes`] drive the same
//! [`LineIngestor`] state machine, so a live run over some observed bytes
//! and an offline run over the same bytes agree event for event and
//! quarantine for quarantine.
//!
//! One live limitation is explicit: a gzip stream cannot be tailed
//! incrementally (its integrity is only checkable whole), so a source
//! that opens with the gzip magic is buffered until the stream ends and
//! decompressed at drain; a corrupt archive becomes a stream-level
//! dead-letter entry and a fatal error, exactly like the offline path.

use privacy_distrib::{CheckpointStore, DistributedMonitor};
use privacy_ingest::deadletter::{read_dead_letters, DeadLetterRecord, DeadLetterWriter};
use privacy_ingest::live::{FollowConfig, LineAssembler, LiveSource, SourceEvent};
use privacy_ingest::stream::{LineIngestor, LinePush, QuarantinedLine};
use privacy_ingest::{gunzip, is_gzip, ErrorPolicy, FieldMapping, Format, IngestError};
use privacy_interchange::binary::{CodecError, Decoder, Encoder};
use privacy_model::{ServiceId, UserId, UserProfile};
use privacy_runtime::{Alert, Event, IndexedMonitor};
use std::collections::BTreeSet;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;

/// Frame kind for a serialised [`PipelineCheckpoint`].
pub const PIPELINE_CHECKPOINT_KIND: [u8; 4] = *b"PPLC";
const PIPELINE_CHECKPOINT_VERSION: u32 = 1;

/// Why a pipeline run failed.
#[derive(Debug)]
pub enum PipelineError {
    /// The source or parser failed fatally (IO retries exhausted, a
    /// stream-level error, or a line-level error under fail-fast).
    Ingest(IngestError),
    /// The monitor sink rejected events or could not flush.
    Monitor(String),
    /// A checkpoint or dead-letter file could not be read or written.
    Io(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Ingest(error) => write!(f, "ingest: {error}"),
            PipelineError::Monitor(message) => write!(f, "monitor: {message}"),
            PipelineError::Io(message) => write!(f, "io: {message}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<IngestError> for PipelineError {
    fn from(error: IngestError) -> Self {
        PipelineError::Ingest(error)
    }
}

/// Live counters shared with whoever launched the pipeline (the chaos
/// harness synchronises fault injection on these; a CLI could render
/// them). All counters are monotone within one run.
#[derive(Debug, Default)]
pub struct PipelineProgress {
    /// Raw bytes observed from the source.
    pub bytes: AtomicU64,
    /// Events resolved by the parser.
    pub events: AtomicU64,
    /// Events ingested by the monitor sink.
    pub ingested: AtomicU64,
    /// Alerts raised.
    pub alerts: AtomicU64,
    /// Records quarantined to the dead-letter file.
    pub quarantined: AtomicU64,
    /// Checkpoints written.
    pub checkpoints: AtomicU64,
    /// Source rotations observed.
    pub rotations: AtomicU64,
    /// Source truncations observed.
    pub truncations: AtomicU64,
}

impl PipelineProgress {
    fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Loads a counter.
    #[must_use]
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// The resume-relevant state a pipeline persists, framed as `PPLC` via
/// [`privacy_interchange::binary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineCheckpoint {
    /// Logical stream offset through which every record is consumed.
    pub offset: u64,
    /// Physical lines consumed.
    pub lines: u64,
    /// The next sequence number the resolver will auto-assign.
    pub next_sequence: u64,
    /// Events resolved so far.
    pub events: u64,
    /// Records quarantined so far.
    pub skipped: u64,
    /// The pinned format (detection must not flip on resume).
    pub format: Option<Format>,
    /// The embedded [`MonitorSnapshot`](privacy_runtime::MonitorSnapshot) bytes (empty for sinks that
    /// checkpoint themselves, like the distributed monitor).
    pub snapshot: Vec<u8>,
}

fn format_tag(format: Option<Format>) -> u8 {
    match format {
        None => 0,
        Some(Format::Json) => 1,
        Some(Format::Logfmt) => 2,
        Some(Format::Csv) => 3,
    }
}

fn tag_format(tag: u8) -> Result<Option<Format>, CodecError> {
    match tag {
        0 => Ok(None),
        1 => Ok(Some(Format::Json)),
        2 => Ok(Some(Format::Logfmt)),
        3 => Ok(Some(Format::Csv)),
        other => Err(CodecError::Malformed {
            what: "format tag",
            detail: format!("unknown discriminant {other}"),
        }),
    }
}

impl PipelineCheckpoint {
    /// Serialises the checkpoint as one framed, checksummed blob.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut encoder = Encoder::new(PIPELINE_CHECKPOINT_KIND, PIPELINE_CHECKPOINT_VERSION);
        encoder.u64(self.offset);
        encoder.u64(self.lines);
        encoder.u64(self.next_sequence);
        encoder.u64(self.events);
        encoder.u64(self.skipped);
        encoder.u8(format_tag(self.format));
        encoder.bytes(&self.snapshot);
        encoder.finish()
    }

    /// Decodes a checkpoint written by [`to_bytes`].
    ///
    /// [`to_bytes`]: PipelineCheckpoint::to_bytes
    ///
    /// # Errors
    ///
    /// [`CodecError`] on a torn, truncated, or foreign frame.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut decoder =
            Decoder::new(bytes, PIPELINE_CHECKPOINT_KIND, PIPELINE_CHECKPOINT_VERSION)?;
        let offset = decoder.u64()?;
        let lines = decoder.u64()?;
        let next_sequence = decoder.u64()?;
        let events = decoder.u64()?;
        let skipped = decoder.u64()?;
        let format = tag_format(decoder.u8()?)?;
        let snapshot = decoder.bytes()?;
        decoder.finish()?;
        Ok(PipelineCheckpoint { offset, lines, next_sequence, events, skipped, format, snapshot })
    }
}

/// Where resolved events go. Implementations register unseen users on
/// first sight and surface alerts per batch.
pub trait MonitorSink {
    /// Ingests one batch, returning the alerts it raised.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Monitor`] when the sink rejects the batch.
    fn ingest(&mut self, events: &[Event]) -> Result<Vec<Alert>, PipelineError>;

    /// Flushes whatever the sink still holds (drain), returning late
    /// alerts.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Monitor`] when the flush fails.
    fn flush(&mut self) -> Result<Vec<Alert>, PipelineError>;

    /// State to embed in a [`PipelineCheckpoint`] — empty when the sink
    /// persists its own state (the distributed monitor checkpoints its
    /// workers instead).
    ///
    /// # Errors
    ///
    /// [`PipelineError::Monitor`] when state capture fails.
    fn snapshot(&mut self) -> Result<Vec<u8>, PipelineError>;
}

/// A profile for a user first seen in the log.
fn first_sight_profile(user: &UserId, services: &[ServiceId], no_consent: bool) -> UserProfile {
    let mut profile = UserProfile::new(user.clone());
    if !no_consent {
        for service in services {
            profile = profile.consents_to(service.clone());
        }
    }
    profile
}

/// The in-process [`IndexedMonitor`] as a pipeline sink.
#[derive(Debug)]
pub struct IndexedSink {
    monitor: IndexedMonitor,
    services: Vec<ServiceId>,
    no_consent: bool,
}

impl IndexedSink {
    /// Wraps `monitor`, registering users first seen in the log with
    /// consent to every service in `services` (or none under
    /// `no_consent`). A monitor resumed from a snapshot keeps its
    /// registered users — they are never re-registered (re-registration
    /// would reset their privacy state).
    #[must_use]
    pub fn new(monitor: IndexedMonitor, services: Vec<ServiceId>, no_consent: bool) -> Self {
        IndexedSink { monitor, services, no_consent }
    }

    /// The wrapped monitor.
    #[must_use]
    pub fn monitor(&self) -> &IndexedMonitor {
        &self.monitor
    }

    /// Unwraps the monitor (e.g. for a final snapshot).
    #[must_use]
    pub fn into_monitor(self) -> IndexedMonitor {
        self.monitor
    }
}

impl MonitorSink for IndexedSink {
    fn ingest(&mut self, events: &[Event]) -> Result<Vec<Alert>, PipelineError> {
        for event in events {
            if !self.monitor.is_registered(event.user()) {
                self.monitor.register_user(&first_sight_profile(
                    event.user(),
                    &self.services,
                    self.no_consent,
                ));
            }
        }
        // `ingest_batch` both returns the raised alerts and queues them on
        // the monitor's pending list; drain here (the drained list is the
        // raised alerts, plus any pending carried in by a resumed
        // snapshot) so the final flush does not report everything twice.
        let _ = self.monitor.ingest_batch(events);
        Ok(self.monitor.drain_alerts())
    }

    fn flush(&mut self) -> Result<Vec<Alert>, PipelineError> {
        Ok(self.monitor.drain_alerts())
    }

    fn snapshot(&mut self) -> Result<Vec<u8>, PipelineError> {
        Ok(self.monitor.snapshot().to_bytes())
    }
}

/// The multi-process [`DistributedMonitor`] as a pipeline sink. The
/// supervisor checkpoints its workers itself, so pipeline checkpoints
/// embed no snapshot and `--resume` is scoped to the indexed sink.
///
/// Each `ingest` call maps to one supervisor super-batch; the supervisor's
/// per-worker writer threads coalesce consecutive sub-batches into single
/// wire frames, so small pipeline batches do not translate into per-event
/// framing overhead on the pipes.
#[derive(Debug)]
pub struct DistributedSink {
    monitor: DistributedMonitor,
    services: Vec<ServiceId>,
    no_consent: bool,
    known: BTreeSet<UserId>,
}

impl DistributedSink {
    /// Wraps a launched supervisor.
    #[must_use]
    pub fn new(monitor: DistributedMonitor, services: Vec<ServiceId>, no_consent: bool) -> Self {
        DistributedSink { monitor, services, no_consent, known: BTreeSet::new() }
    }

    /// Unwraps the supervisor (e.g. to shut it down).
    #[must_use]
    pub fn into_monitor(self) -> DistributedMonitor {
        self.monitor
    }
}

impl MonitorSink for DistributedSink {
    fn ingest(&mut self, events: &[Event]) -> Result<Vec<Alert>, PipelineError> {
        for event in events {
            if self.known.insert(event.user().clone()) {
                self.monitor
                    .register_user(&first_sight_profile(
                        event.user(),
                        &self.services,
                        self.no_consent,
                    ))
                    .map_err(|error| PipelineError::Monitor(error.to_string()))?;
            }
        }
        self.monitor.submit_batch(events).map_err(|error| PipelineError::Monitor(error.to_string()))
    }

    fn flush(&mut self) -> Result<Vec<Alert>, PipelineError> {
        self.monitor.flush().map_err(|error| PipelineError::Monitor(error.to_string()))
    }

    fn snapshot(&mut self) -> Result<Vec<u8>, PipelineError> {
        self.monitor.checkpoint_now().map_err(|error| PipelineError::Monitor(error.to_string()))?;
        Ok(Vec::new())
    }
}

/// Tuning for one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// The field mapping resolving records into events.
    pub mapping: FieldMapping,
    /// Declared format; `None` auto-detects.
    pub format: Option<Format>,
    /// Error policy. [`ErrorPolicy::Skip`] quarantines poison records;
    /// [`ErrorPolicy::FailFast`] aborts the run on the first one.
    pub policy: ErrorPolicy,
    /// Per-line size limit in bytes.
    pub max_line_bytes: usize,
    /// Events per monitor batch.
    pub batch: usize,
    /// Bounded parse→monitor queue depth, in batches. The parser blocks
    /// when the monitor falls this far behind.
    pub queue_batches: usize,
    /// Checkpoint file (written via [`CheckpointStore`]); `None` disables
    /// checkpointing.
    pub checkpoint: Option<PathBuf>,
    /// Resolved events between periodic checkpoints.
    pub checkpoint_every_events: u64,
    /// Dead-letter NDJSON file; `None` keeps quarantined records in the
    /// report only.
    pub dead_letter: Option<PathBuf>,
    /// Stop when this path exists (polled; for tails, which have no EOF).
    pub stop_file: Option<PathBuf>,
    /// Source polling tuning.
    pub follow: FollowConfig,
    /// Resume state from a previous run's final checkpoint.
    pub resume: Option<PipelineCheckpoint>,
}

impl PipelineConfig {
    /// Defaults around `mapping`: auto-detect, skip-and-quarantine, 1 MiB
    /// lines, 256-event batches, a 16-batch queue, checkpoint every 1024
    /// events.
    #[must_use]
    pub fn new(mapping: FieldMapping) -> Self {
        PipelineConfig {
            mapping,
            format: None,
            policy: ErrorPolicy::Skip,
            max_line_bytes: 1 << 20,
            batch: 256,
            queue_batches: 16,
            checkpoint: None,
            checkpoint_every_events: 1024,
            dead_letter: None,
            stop_file: None,
            follow: FollowConfig::default(),
            resume: None,
        }
    }
}

/// What one pipeline run did.
#[derive(Debug, Default)]
pub struct PipelineReport {
    /// Every alert raised, in order.
    pub alerts: Vec<Alert>,
    /// Raw bytes observed from the source this run.
    pub bytes: u64,
    /// Physical lines consumed (cumulative across resume).
    pub lines: u64,
    /// Events resolved (cumulative across resume).
    pub events: u64,
    /// Records quarantined (cumulative across resume).
    pub skipped: u64,
    /// Dead-letter records appended this run.
    pub dead_letters: u64,
    /// The format in effect.
    pub format: Option<Format>,
    /// Rotations observed this run.
    pub rotations: u64,
    /// Truncations observed this run.
    pub truncations: u64,
    /// Checkpoints written this run.
    pub checkpoints: u64,
    /// Logical stream offset consumed through.
    pub offset: u64,
}

/// Stream-position metadata travelling with each batch, so checkpoints
/// written by the monitor loop describe exactly the events it has
/// ingested (never the parser's read-ahead).
#[derive(Debug, Clone, Copy)]
struct StreamMeta {
    offset: u64,
    lines: u64,
    next_sequence: u64,
    events: u64,
    skipped: u64,
    format: Option<Format>,
}

enum WorkItem {
    Batch(Vec<Event>, StreamMeta),
    Quarantined(Box<QuarantinedLine>),
    /// A fatal stream error at the given logical offset; always the last
    /// item the parser sends.
    Fatal(IngestError, u64),
    /// End of stream: the final metadata (possibly after quarantines with
    /// no trailing event batch).
    Drained(StreamMeta),
}

/// The supervised live pipeline. See the module docs.
pub struct PipelineRunner {
    config: PipelineConfig,
    progress: Arc<PipelineProgress>,
    stop: Arc<AtomicBool>,
}

impl PipelineRunner {
    /// A runner over `config`.
    #[must_use]
    pub fn new(config: PipelineConfig) -> Self {
        PipelineRunner {
            config,
            progress: Arc::new(PipelineProgress::default()),
            stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The shared progress counters.
    #[must_use]
    pub fn progress(&self) -> Arc<PipelineProgress> {
        Arc::clone(&self.progress)
    }

    /// A handle that requests a graceful drain when set.
    #[must_use]
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Runs the pipeline to completion: until the source reports EOF, the
    /// stop handle or stop file fires, or a fatal error. `on_alert` sees
    /// every alert as it is raised (they are also collected in the
    /// report).
    ///
    /// # Errors
    ///
    /// [`PipelineError`] on a fatal ingest, monitor, or IO failure. A
    /// final checkpoint and the dead-letter file are still flushed where
    /// possible.
    pub fn run(
        &self,
        mut source: LiveSource,
        sink: &mut dyn MonitorSink,
        mut on_alert: impl FnMut(&Alert),
    ) -> Result<PipelineReport, PipelineError> {
        let (sender, receiver) = sync_channel::<WorkItem>(self.config.queue_batches.max(1));
        let mut report = PipelineReport::default();

        let outcome = std::thread::scope(|scope| {
            // The sender moves into the parser thread so the channel
            // closes (and the monitor loop's `recv` unblocks) the moment
            // the parser finishes.
            let source_ref = &mut source;
            let parser = scope.spawn(move || self.parse_loop(source_ref, &sender));
            let consumed = self.monitor_loop(&receiver, sink, &mut report, &mut on_alert);
            // A consumer error must unblock a parser waiting on the full
            // queue: drop the receiver end and raise the stop flag.
            if consumed.is_err() {
                self.stop.store(true, Ordering::Relaxed);
                drop(receiver);
            }
            parser.join().expect("parser thread never panics");
            consumed
        });

        if let LiveSource::File(tail) = &source {
            report.rotations = tail.rotations();
            report.truncations = tail.truncations();
        }
        report.bytes = PipelineProgress::get(&self.progress.bytes);
        outcome.map(|()| report)
    }

    /// The parser side: polls the source, assembles lines, resolves
    /// events, and ships batches/quarantines over the bounded queue. All
    /// failures are reported through the queue; the returned result only
    /// reflects whether the consumer is still listening.
    fn parse_loop(&self, source: &mut LiveSource, sender: &SyncSender<WorkItem>) {
        let mut assembler = LineAssembler::new(self.config.max_line_bytes.saturating_add(1));
        let mut ingestor = LineIngestor::new(
            self.config.mapping.clone(),
            self.config.format,
            self.config.policy,
            self.config.max_line_bytes,
        );
        if let Some(resume) = &self.config.resume {
            ingestor.restore(
                resume.format,
                resume.lines,
                resume.events,
                resume.skipped,
                resume.next_sequence,
            );
            assembler.start_at(resume.offset);
        }

        let mut pending: Vec<Event> = Vec::new();
        let mut lines = Vec::new();
        // `Some` once the stream opened with the gzip magic: buffer it
        // whole and decompress at drain (gzip cannot be tailed).
        let mut gzip_buffer: Option<Vec<u8>> = None;
        let mut sniffed = false;

        let meta = |ingestor: &LineIngestor| StreamMeta {
            offset: ingestor.consumed_through(),
            lines: ingestor.lines(),
            next_sequence: ingestor.next_sequence(),
            events: ingestor.events(),
            skipped: ingestor.skipped(),
            format: ingestor.format(),
        };

        macro_rules! ship {
            ($item:expr) => {
                if sender.send($item).is_err() {
                    return; // the consumer failed; it owns the error
                }
            };
        }
        macro_rules! flush_pending {
            () => {
                if !pending.is_empty() {
                    let batch = std::mem::take(&mut pending);
                    ship!(WorkItem::Batch(batch, meta(&ingestor)));
                }
            };
        }
        macro_rules! feed {
            ($line:expr) => {{
                let line = $line;
                match ingestor.push_line(&line.bytes, line.start, line.end) {
                    Ok(LinePush::Event(event)) => {
                        PipelineProgress::add(&self.progress.events, 1);
                        pending.push(event);
                        if pending.len() >= self.config.batch {
                            flush_pending!();
                        }
                    }
                    Ok(LinePush::Quarantined(quarantined)) => {
                        // Quarantines precede the batch whose metadata
                        // covers them (the queue is FIFO), so a checkpoint
                        // never claims an unaccounted span.
                        flush_pending!();
                        ship!(WorkItem::Quarantined(Box::new(quarantined)));
                    }
                    Ok(LinePush::Pending) => {}
                    Err(error) => {
                        flush_pending!();
                        ship!(WorkItem::Fatal(error, line.start));
                        return;
                    }
                }
            }};
        }

        loop {
            if self.stop.load(Ordering::Relaxed) || self.stop_file_exists() {
                break;
            }
            match source.poll() {
                Ok(SourceEvent::Data(chunk)) => {
                    PipelineProgress::add(&self.progress.bytes, chunk.len() as u64);
                    if !sniffed {
                        sniffed = true;
                        if is_gzip(&chunk) {
                            gzip_buffer = Some(Vec::new());
                        }
                    }
                    if let Some(buffer) = &mut gzip_buffer {
                        buffer.extend_from_slice(&chunk);
                        continue;
                    }
                    assembler.push(&chunk, &mut lines);
                    for line in lines.drain(..) {
                        feed!(line);
                    }
                }
                Ok(SourceEvent::Rotated) => {
                    PipelineProgress::add(&self.progress.rotations, 1);
                }
                Ok(SourceEvent::Truncated { .. }) => {
                    PipelineProgress::add(&self.progress.truncations, 1);
                }
                Ok(SourceEvent::Idle) => {
                    // Latency over batching while the source is quiet.
                    flush_pending!();
                    std::thread::sleep(source.delay());
                }
                Ok(SourceEvent::Eof) => break,
                Err(error) => {
                    flush_pending!();
                    ship!(WorkItem::Fatal(error, assembler.offset()));
                    return;
                }
            }
        }

        // Drain: decompress a buffered gzip stream, flush the partial
        // line, refuse an unterminated CSV record, ship the final meta.
        if let Some(buffer) = gzip_buffer.take() {
            match gunzip(&buffer) {
                Ok(payload) => {
                    // Logical offsets restart over the decompressed
                    // payload, matching the offline path.
                    assembler.push(&payload, &mut lines);
                    for line in lines.drain(..) {
                        feed!(line);
                    }
                }
                Err(error) => {
                    ship!(WorkItem::Fatal(IngestError::Gzip(error), 0));
                    return;
                }
            }
        }
        if let Some(line) = assembler.finish() {
            feed!(line);
        }
        match ingestor.finish(assembler.offset()) {
            Ok(Some(LinePush::Event(event))) => {
                PipelineProgress::add(&self.progress.events, 1);
                pending.push(event);
            }
            Ok(Some(LinePush::Quarantined(quarantined))) => {
                flush_pending!();
                ship!(WorkItem::Quarantined(Box::new(quarantined)));
            }
            Ok(Some(LinePush::Pending)) | Ok(None) => {}
            Err(error) => {
                flush_pending!();
                ship!(WorkItem::Fatal(error, assembler.offset()));
                return;
            }
        }
        flush_pending!();
        ship!(WorkItem::Drained(meta(&ingestor)));
    }

    fn stop_file_exists(&self) -> bool {
        self.config.stop_file.as_deref().is_some_and(|path| path.exists())
    }

    /// The monitor side: ingests batches, appends dead letters, writes
    /// periodic and final checkpoints, and flushes the sink at drain.
    fn monitor_loop(
        &self,
        receiver: &Receiver<WorkItem>,
        sink: &mut dyn MonitorSink,
        report: &mut PipelineReport,
        on_alert: &mut dyn FnMut(&Alert),
    ) -> Result<(), PipelineError> {
        let store = self.config.checkpoint.as_ref().map(CheckpointStore::new);
        let mut dead_letters = match &self.config.dead_letter {
            Some(path) => {
                // Offsets already on file (a previous run's parser may
                // have quarantined past the checkpoint it resumed from):
                // never append the same span twice.
                let seen: BTreeSet<u64> = if path.exists() {
                    read_dead_letters(path)
                        .map_err(|error| PipelineError::Io(error.to_string()))?
                        .iter()
                        .map(|record| record.offset)
                        .collect()
                } else {
                    BTreeSet::new()
                };
                let writer = DeadLetterWriter::open(path)
                    .map_err(|error| PipelineError::Io(error.to_string()))?;
                Some((writer, seen))
            }
            None => None,
        };
        // The only accessor of the dead-letter writer: appends `record`
        // unless its offset is already on file (resume re-parses the span
        // past the checkpoint, which may re-quarantine the same records).
        let mut append_dead_letter = |record: DeadLetterRecord,
                                      report: &mut PipelineReport|
         -> Result<(), PipelineError> {
            if let Some((writer, seen)) = &mut dead_letters {
                if seen.insert(record.offset) {
                    writer.append(&record).map_err(|error| PipelineError::Io(error.to_string()))?;
                    report.dead_letters += 1;
                }
            }
            Ok(())
        };

        let mut last_meta: Option<StreamMeta> = None;
        let mut since_checkpoint = 0u64;
        let mut fatal: Option<PipelineError> = None;

        let write_checkpoint = |meta: &StreamMeta,
                                sink: &mut dyn MonitorSink,
                                report: &mut PipelineReport|
         -> Result<(), PipelineError> {
            let Some(store) = &store else { return Ok(()) };
            let checkpoint = PipelineCheckpoint {
                offset: meta.offset,
                lines: meta.lines,
                next_sequence: meta.next_sequence,
                events: meta.events,
                skipped: meta.skipped,
                format: meta.format,
                snapshot: sink.snapshot()?,
            };
            store.write(&checkpoint.to_bytes()).map_err(|error| {
                PipelineError::Io(format!("checkpoint {}: {error}", store.path().display()))
            })?;
            PipelineProgress::add(&self.progress.checkpoints, 1);
            report.checkpoints += 1;
            Ok(())
        };

        while let Ok(item) = receiver.recv() {
            match item {
                WorkItem::Batch(events, meta) => {
                    let alerts = sink.ingest(&events)?;
                    PipelineProgress::add(&self.progress.ingested, events.len() as u64);
                    PipelineProgress::add(&self.progress.alerts, alerts.len() as u64);
                    for alert in alerts {
                        on_alert(&alert);
                        report.alerts.push(alert);
                    }
                    since_checkpoint += events.len() as u64;
                    if self.config.checkpoint_every_events > 0
                        && since_checkpoint >= self.config.checkpoint_every_events
                    {
                        write_checkpoint(&meta, sink, report)?;
                        since_checkpoint = 0;
                    }
                    last_meta = Some(meta);
                }
                WorkItem::Quarantined(line) => {
                    PipelineProgress::add(&self.progress.quarantined, 1);
                    append_dead_letter(DeadLetterRecord::from_quarantined(&line), report)?;
                }
                WorkItem::Fatal(error, offset) => {
                    // Account for the poisoned stream before failing.
                    append_dead_letter(
                        DeadLetterRecord::stream_level(&error, offset, offset),
                        report,
                    )?;
                    fatal = Some(PipelineError::Ingest(error));
                    break;
                }
                WorkItem::Drained(meta) => {
                    last_meta = Some(meta);
                    break;
                }
            }
        }

        // Graceful drain: flush late alerts, then the final checkpoint.
        let flushed = sink.flush()?;
        PipelineProgress::add(&self.progress.alerts, flushed.len() as u64);
        for alert in flushed {
            on_alert(&alert);
            report.alerts.push(alert);
        }
        if let Some(meta) = &last_meta {
            report.offset = meta.offset;
            report.lines = meta.lines;
            report.events = meta.events;
            report.skipped = meta.skipped;
            report.format = meta.format;
            if fatal.is_none() {
                write_checkpoint(meta, sink, report)?;
            }
        }
        match fatal {
            Some(error) => Err(error),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_checkpoints_round_trip() {
        let checkpoint = PipelineCheckpoint {
            offset: 8_192,
            lines: 120,
            next_sequence: 97,
            events: 96,
            skipped: 3,
            format: Some(Format::Logfmt),
            snapshot: vec![1, 2, 3, 4],
        };
        let decoded = PipelineCheckpoint::from_bytes(&checkpoint.to_bytes()).expect("decode");
        assert_eq!(decoded, checkpoint);
    }

    #[test]
    fn pipeline_checkpoints_reject_torn_frames() {
        let checkpoint = PipelineCheckpoint {
            offset: 1,
            lines: 1,
            next_sequence: 2,
            events: 1,
            skipped: 0,
            format: None,
            snapshot: Vec::new(),
        };
        let mut bytes = checkpoint.to_bytes();
        bytes.truncate(bytes.len() - 3);
        assert!(PipelineCheckpoint::from_bytes(&bytes).is_err());
        let mut flipped = checkpoint.to_bytes();
        let middle = flipped.len() / 2;
        flipped[middle] ^= 0xFF;
        assert!(PipelineCheckpoint::from_bytes(&flipped).is_err());
    }

    #[test]
    fn format_tags_cover_every_format() {
        for format in [None, Some(Format::Json), Some(Format::Logfmt), Some(Format::Csv)] {
            assert_eq!(tag_format(format_tag(format)).expect("tag"), format);
        }
        assert!(tag_format(9).is_err());
    }

    /// `ingest_batch` queues raised alerts on the monitor as well as
    /// returning them; the sink must not report that queue again at
    /// flush. Pinned directly because the live-vs-offline differentials
    /// compare two sinks and would miss symmetric double-reporting.
    #[test]
    fn indexed_sink_reports_each_alert_exactly_once() {
        use privacy_synth::{
            random_profiles, random_workload, ProfileGeneratorConfig, WorkloadConfig,
        };

        let system = privacy_core::casestudy::healthcare().expect("healthcare model");
        let services: Vec<ServiceId> =
            system.catalog().services().map(|s| s.id().clone()).collect();
        let fields: Vec<_> = system.catalog().fields().map(|f| f.id().clone()).collect();
        let users = random_profiles(&ProfileGeneratorConfig {
            count: 12,
            seed: 13,
            services: services.clone(),
            consent_probability: 0.5,
            fields: fields.clone(),
            sensitivity_probability: 0.6,
        });
        let mut engine = privacy_runtime::ServiceEngine::new(
            system.catalog().clone(),
            system.dataflows().clone(),
            system.policy().clone(),
        );
        let workload = random_workload(&WorkloadConfig {
            length: 200,
            seed: 17,
            users: users.iter().map(|u| u.id().clone()).collect(),
            services: services.iter().map(|s| (s.clone(), 1.0)).collect(),
        });
        for request in &workload {
            let record = fields.iter().fold(privacy_model::Record::new(), |record, field| {
                record.with(field.clone(), format!("v-{field}"))
            });
            let _ = engine.execute(request.user(), request.service(), &record);
        }
        let events = engine.log().events().to_vec();

        let lts = system.generate_lts().expect("lts");
        let index = Arc::new(privacy_lts::LtsIndex::build(&lts));
        let mut proto =
            IndexedMonitor::new(system.catalog().clone(), system.policy().clone(), index);
        for user in &users {
            proto.register_user(user);
        }
        let direct = proto.clone().ingest_batch(&events);
        assert!(!direct.is_empty(), "the corpus must raise alerts for this test to pin anything");

        let mut sink = IndexedSink::new(proto, services, false);
        let mut streamed = Vec::new();
        for chunk in events.chunks(32) {
            streamed.extend(sink.ingest(chunk).expect("ingest"));
        }
        let late = sink.flush().expect("flush");
        assert!(late.is_empty(), "every alert was already reported per batch: {late:?}");
        assert_eq!(
            streamed.iter().map(ToString::to_string).collect::<Vec<_>>(),
            direct.iter().map(ToString::to_string).collect::<Vec<_>>(),
            "the chunked sink stream must equal one whole-batch ingest, each alert exactly once"
        );
    }
}
