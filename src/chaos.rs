//! Failure injection for the live pipeline, and its differential oracle.
//!
//! The chaos harness (`tests/live_chaos.rs`, `bench/live_chaos`) needs two
//! things this module provides:
//!
//! * **A scripted hostile writer.** [`ChaosScript`] appends a log to a
//!   followed file in steps — torn writes cut at arbitrary byte
//!   boundaries, rotation mid-record, in-place truncation, stalls — while
//!   the pipeline tails it. The script returns the exact byte stream the
//!   tail *observed* (rotations and truncations included), which is the
//!   reference input for the offline run. Steps that would race the tail
//!   (rotate, truncate) synchronise on the pipeline's
//!   [`PipelineProgress::bytes`] counter first, so the observed stream is
//!   deterministic.
//! * **The offline oracle.** [`offline_reference`] runs the same observed
//!   bytes through [`privacy_ingest::ingest_bytes`] and a fresh
//!   [`IndexedMonitor`] with the same
//!   first-sight registration the pipeline uses. The differential
//!   contract — live alerts equal offline alerts, and the dead-letter
//!   file accounts for exactly the records the offline run refuses — is
//!   checked by `assert_differential`-style comparisons in the tests.

use crate::pipeline::{IndexedSink, MonitorSink, PipelineProgress};
use privacy_core::{casestudy, PrivacySystem};
use privacy_ingest::{ingest_bytes, ErrorPolicy, FieldMapping, IngestOptions, IngestReport};
use privacy_lts::LtsIndex;
use privacy_model::{FieldId, Record, ServiceId, UserProfile};
use privacy_runtime::{Event, IndexedMonitor, ServiceEngine};
use privacy_synth::{random_profiles, random_workload, ProfileGeneratorConfig, WorkloadConfig};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// One step of the hostile writer.
#[derive(Debug, Clone)]
pub enum ChaosStep {
    /// Append bytes to the followed file (creating it if needed). Torn
    /// writes are successive appends cut mid-record or mid-byte-run.
    Append(Vec<u8>),
    /// Block until the pipeline has observed every byte written so far.
    WaitObserved,
    /// Rotate: rename the file aside and let the next append create a
    /// fresh one. Waits for observation first (the tail drains the old
    /// segment before switching, so the observed stream stays
    /// deterministic).
    Rotate,
    /// Truncate the file in place (same inode) and write this new
    /// content. Waits for observation first.
    Truncate(Vec<u8>),
    /// The writer stalls; the tail must idle without losing state.
    Stall(Duration),
}

/// Splits `corpus` into torn appends cut at the given byte offsets, with
/// a stall between flushes so each lands in a separate read.
#[must_use]
pub fn torn_appends(corpus: &[u8], cuts: &[usize], stall: Duration) -> Vec<ChaosStep> {
    let mut steps = Vec::new();
    let mut last = 0usize;
    for &cut in cuts {
        let cut = cut.min(corpus.len());
        if cut > last {
            steps.push(ChaosStep::Append(corpus[last..cut].to_vec()));
            steps.push(ChaosStep::Stall(stall));
            last = cut;
        }
    }
    if last < corpus.len() {
        steps.push(ChaosStep::Append(corpus[last..].to_vec()));
    }
    steps
}

/// Flips one byte in the middle of a gzip archive, corrupting it the way
/// the distrib fault plan corrupts checkpoints.
#[must_use]
pub fn corrupt_gzip(mut archive: Vec<u8>) -> Vec<u8> {
    let middle = archive.len() / 2;
    archive[middle] ^= 0xFF;
    archive
}

/// The scripted hostile writer. See the module docs.
#[derive(Debug)]
pub struct ChaosScript {
    path: PathBuf,
    steps: Vec<ChaosStep>,
    /// How long a `WaitObserved` may block before the script fails.
    pub wait_timeout: Duration,
}

impl ChaosScript {
    /// A script writing to `path`.
    #[must_use]
    pub fn new(path: impl Into<PathBuf>, steps: Vec<ChaosStep>) -> Self {
        ChaosScript { path: path.into(), steps, wait_timeout: Duration::from_secs(30) }
    }

    /// Executes every step against a pipeline whose `progress` counters
    /// are shared, returning the byte stream the tail observed — the
    /// offline reference input.
    ///
    /// # Errors
    ///
    /// A rendered IO error, or a timeout waiting for the pipeline to
    /// observe written bytes (a stalled pipeline is itself a failure).
    pub fn run(&self, progress: &PipelineProgress) -> Result<Vec<u8>, String> {
        let mut observed: Vec<u8> = Vec::new();
        let mut rotated = 0usize;
        for step in &self.steps {
            match step {
                ChaosStep::Append(bytes) => {
                    append(&self.path, bytes)?;
                    observed.extend_from_slice(bytes);
                }
                ChaosStep::WaitObserved => {
                    self.wait_observed(progress, observed.len() as u64)?;
                }
                ChaosStep::Rotate => {
                    self.wait_observed(progress, observed.len() as u64)?;
                    rotated += 1;
                    let aside = self.path.with_extension(format!("{rotated}.old"));
                    std::fs::rename(&self.path, &aside)
                        .map_err(|error| format!("rotating {}: {error}", self.path.display()))?;
                }
                ChaosStep::Truncate(bytes) => {
                    self.wait_observed(progress, observed.len() as u64)?;
                    std::fs::write(&self.path, bytes)
                        .map_err(|error| format!("truncating {}: {error}", self.path.display()))?;
                    observed.extend_from_slice(bytes);
                }
                ChaosStep::Stall(duration) => std::thread::sleep(*duration),
            }
        }
        // The pipeline must observe the full stream before the caller
        // requests a drain, or the comparison races the last write.
        self.wait_observed(progress, observed.len() as u64)?;
        Ok(observed)
    }

    fn wait_observed(&self, progress: &PipelineProgress, target: u64) -> Result<(), String> {
        let deadline = Instant::now() + self.wait_timeout;
        while progress.bytes.load(Ordering::Relaxed) < target {
            if Instant::now() > deadline {
                return Err(format!(
                    "pipeline observed {} of {target} bytes within {:?}",
                    progress.bytes.load(Ordering::Relaxed),
                    self.wait_timeout,
                ));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        Ok(())
    }
}

fn append(path: &Path, bytes: &[u8]) -> Result<(), String> {
    use std::io::Write;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|error| format!("opening {}: {error}", path.display()))?;
    file.write_all(bytes).map_err(|error| format!("appending {}: {error}", path.display()))?;
    file.flush().map_err(|error| format!("flushing {}: {error}", path.display()))
}

/// The shared model context behind both the live pipeline and the offline
/// oracle: the paper's healthcare case study, its LTS index, and the
/// service list for first-sight consent.
pub struct MonitorContext {
    system: PrivacySystem,
    index: std::sync::Arc<LtsIndex>,
    services: Vec<ServiceId>,
    population: Vec<UserProfile>,
}

impl MonitorContext {
    /// Builds the healthcare case-study context, with a seeded
    /// partial-consent population registered on every monitor it hands
    /// out — so the chaos corpus actually raises alerts and the
    /// live-vs-offline alert differential is never vacuously true.
    ///
    /// # Errors
    ///
    /// A rendered model or LTS generation failure.
    pub fn healthcare() -> Result<Self, String> {
        let system =
            casestudy::healthcare().map_err(|error| format!("healthcare model: {error}"))?;
        let lts = system.generate_lts().map_err(|error| format!("generating LTS: {error}"))?;
        let index = std::sync::Arc::new(LtsIndex::build(&lts));
        let services: Vec<ServiceId> =
            system.catalog().services().map(|s| s.id().clone()).collect();
        let fields: Vec<FieldId> = system.catalog().fields().map(|f| f.id().clone()).collect();
        let population = random_profiles(&ProfileGeneratorConfig {
            count: 24,
            seed: 13,
            services: services.clone(),
            consent_probability: 0.5,
            fields,
            sensitivity_probability: 0.6,
        });
        Ok(MonitorContext { system, index, services, population })
    }

    /// The registered user population (the chaos corpus replays these
    /// users' requests).
    #[must_use]
    pub fn population(&self) -> &[UserProfile] {
        &self.population
    }

    /// The seeded healthcare event stream the chaos scenarios feed: the
    /// population's requests replayed through the service engine.
    #[must_use]
    pub fn corpus_events(&self, requests: usize) -> Vec<Event> {
        let fields: Vec<FieldId> = self.system.catalog().fields().map(|f| f.id().clone()).collect();
        let mut engine = ServiceEngine::new(
            self.system.catalog().clone(),
            self.system.dataflows().clone(),
            self.system.policy().clone(),
        );
        let workload = random_workload(&WorkloadConfig {
            length: requests,
            seed: 17,
            users: self.population.iter().map(|u| u.id().clone()).collect(),
            services: self.services.iter().map(|s| (s.clone(), 1.0)).collect(),
        });
        for request in &workload {
            let record = fields.iter().fold(Record::new(), |record, field| {
                record.with(field.clone(), format!("v-{field}"))
            });
            let _ = engine.execute(request.user(), request.service(), &record);
        }
        engine.log().events().to_vec()
    }

    /// The underlying system.
    #[must_use]
    pub fn system(&self) -> &PrivacySystem {
        &self.system
    }

    /// The LTS index.
    #[must_use]
    pub fn index(&self) -> &std::sync::Arc<LtsIndex> {
        &self.index
    }

    /// Every catalog service (first-sight profiles consent to these).
    #[must_use]
    pub fn services(&self) -> &[ServiceId] {
        &self.services
    }

    /// A fresh indexed monitor over this context, with the seeded
    /// population registered (users outside it are still covered by the
    /// sink's first-sight registration).
    #[must_use]
    pub fn monitor(&self) -> IndexedMonitor {
        let mut monitor = IndexedMonitor::new(
            self.system.catalog().clone(),
            self.system.policy().clone(),
            std::sync::Arc::clone(&self.index),
        );
        for user in &self.population {
            monitor.register_user(user);
        }
        monitor
    }

    /// A fresh [`IndexedSink`] over this context.
    #[must_use]
    pub fn indexed_sink(&self, no_consent: bool) -> IndexedSink {
        IndexedSink::new(self.monitor(), self.services.clone(), no_consent)
    }
}

/// What the offline oracle produced for a byte stream.
pub struct OfflineRun {
    /// Every alert, rendered, in ingestion order.
    pub alerts: Vec<String>,
    /// The full ingest report (events, diagnostics with offsets, stats).
    pub report: IngestReport,
}

/// Runs the observed bytes through the offline single-process path:
/// [`ingest_bytes`] under [`ErrorPolicy::Skip`], then one fresh indexed
/// monitor with the pipeline's first-sight registration.
///
/// # Errors
///
/// A rendered stream-level ingest failure (corrupt gzip, undetectable
/// format) — the same classes that abort the live pipeline.
pub fn offline_reference(
    context: &MonitorContext,
    bytes: &[u8],
    mapping: &FieldMapping,
    batch: usize,
) -> Result<OfflineRun, String> {
    let options = IngestOptions { policy: ErrorPolicy::Skip, ..IngestOptions::default() };
    let report =
        ingest_bytes(bytes, mapping, &options).map_err(|error| format!("offline: {error}"))?;
    let mut sink = context.indexed_sink(false);
    let mut alerts = Vec::new();
    for batch in report.events.chunks(batch.max(1)) {
        let raised = sink.ingest(batch).map_err(|error| error.to_string())?;
        alerts.extend(raised.iter().map(ToString::to_string));
    }
    let late = sink.flush().map_err(|error| error.to_string())?;
    alerts.extend(late.iter().map(ToString::to_string));
    Ok(OfflineRun { alerts, report })
}

/// Sorted copies of two alert streams, for order-insensitive comparison
/// (the distributed sink interleaves worker acks).
#[must_use]
pub fn sorted(alerts: &[String]) -> Vec<String> {
    let mut sorted = alerts.to_vec();
    sorted.sort();
    sorted
}
