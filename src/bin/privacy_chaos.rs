//! Live-pipeline chaos gate: the composed fault matrix as one binary.
//!
//! Runs the same ingest-fault compositions the differential tests in
//! `tests/live_chaos.rs` pin — torn appends with stalled writers,
//! rotation mid-record over poison lines, in-place truncation, gzip
//! corruption — through a tailing
//! [`PipelineRunner`], and holds
//! each run to the differential contract: the live alert stream equals
//! the offline single-process run over the exact bytes the tail
//! observed, event and skip counts agree, and the dead-letter file lists
//! exactly the byte offsets the offline run refuses — none missing, none
//! extra.
//!
//! Every scenario runs even after a failure; the report (one JSON row
//! per scenario) is always written, and the exit code is non-zero if any
//! row diverged. CI runs this off the release build with `--quick` and
//! uploads the report as an artifact.
//!
//! ```text
//! privacy-chaos [--quick] [--out PATH]
//! ```

use privacy_ingest::deadletter::read_dead_letters;
use privacy_ingest::live::{FollowConfig, LiveSource};
use privacy_ingest::{gzip_compress_stored, FieldMapping, IngestError};
use privacy_mde::chaos::{
    corrupt_gzip, offline_reference, sorted, torn_appends, ChaosScript, ChaosStep, MonitorContext,
    OfflineRun,
};
use privacy_mde::pipeline::{PipelineConfig, PipelineError, PipelineReport, PipelineRunner};
use privacy_synth::{render_events, LogFormat};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

struct Options {
    quick: bool,
    out: String,
}

/// What one scenario did, as a report row. `error` is `None` when the
/// differential contract held.
struct ScenarioRow {
    name: &'static str,
    bytes: u64,
    events: u64,
    skipped: u64,
    dead_letters: usize,
    alerts: usize,
    rotations: u64,
    truncations: u64,
    error: Option<String>,
}

fn parse_options() -> Result<Options, String> {
    let mut options = Options { quick: false, out: "CHAOS_live.json".to_owned() };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--out" => options.out = args.next().ok_or("--out needs a path")?,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(options)
}

fn pipeline_config(dir: &Path) -> PipelineConfig {
    let mut config = PipelineConfig::new(FieldMapping::canonical());
    config.batch = 64;
    config.checkpoint = Some(dir.join("pipeline.ckpt"));
    config.checkpoint_every_events = 128;
    config.dead_letter = Some(dir.join("dead.ndjson"));
    config.follow =
        FollowConfig { poll_interval: Duration::from_millis(2), ..FollowConfig::default() };
    config
}

/// Runs `script` against a tailing pipeline over a fresh indexed sink,
/// requesting a graceful drain once the script completes.
fn run_live(
    context: &MonitorContext,
    dir: &Path,
    log: &Path,
    script: &ChaosScript,
) -> Result<(Result<PipelineReport, PipelineError>, Vec<u8>), String> {
    let runner = PipelineRunner::new(pipeline_config(dir));
    let progress = runner.progress();
    let stop = runner.stop_handle();
    let mut sink = context.indexed_sink(false);
    let source = LiveSource::tail(log, pipeline_config(dir).follow);
    std::thread::scope(|scope| {
        let pipeline = scope.spawn(|| runner.run(source, &mut sink, |_| {}));
        // Raise the stop flag before inspecting the script outcome: an
        // early return here would leave the scope joining a tail that
        // never learns it should drain.
        let observed = script.run(&progress);
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let outcome = pipeline.join().expect("pipeline thread");
        let observed = observed.map_err(|error| format!("chaos script: {error}"))?;
        Ok((outcome, observed))
    })
}

/// The differential contract between a completed live run and the
/// offline oracle over the observed bytes.
fn check_differential(
    report: &PipelineReport,
    dead_letter: &Path,
    offline: &OfflineRun,
) -> Result<(), String> {
    let live_alerts: Vec<String> = report.alerts.iter().map(ToString::to_string).collect();
    if sorted(&live_alerts) != sorted(&offline.alerts) {
        return Err(format!(
            "live alert stream diverged from the offline run ({} live vs {} offline)",
            live_alerts.len(),
            offline.alerts.len()
        ));
    }
    if report.events != offline.report.stats.events {
        return Err(format!(
            "event counts diverged: {} live vs {} offline",
            report.events, offline.report.stats.events
        ));
    }
    if report.skipped != offline.report.stats.skipped {
        return Err(format!(
            "skip counts diverged: {} live vs {} offline",
            report.skipped, offline.report.stats.skipped
        ));
    }
    let dead = if dead_letter.exists() {
        read_dead_letters(dead_letter).map_err(|error| format!("dead-letter file: {error}"))?
    } else {
        Vec::new()
    };
    let mut live_offsets: Vec<u64> = dead.iter().map(|record| record.offset).collect();
    live_offsets.sort_unstable();
    let mut offline_offsets: Vec<u64> =
        offline.report.diagnostics.iter().map(|d| d.offset()).collect();
    offline_offsets.sort_unstable();
    if live_offsets != offline_offsets {
        return Err(format!(
            "dead-letter offsets diverged: {live_offsets:?} live vs {offline_offsets:?} offline"
        ));
    }
    Ok(())
}

fn scenario_dir(name: &str) -> Result<PathBuf, String> {
    let dir = std::env::temp_dir().join(format!("privacy-chaos-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)
        .map_err(|error| format!("creating {}: {error}", dir.display()))?;
    Ok(dir)
}

/// A completed-run scenario: executes `steps`, checks the differential,
/// and applies `extra` checks to the live report.
fn completed_scenario(
    context: &MonitorContext,
    name: &'static str,
    steps: Vec<ChaosStep>,
    extra: impl FnOnce(&PipelineReport) -> Result<(), String>,
) -> ScenarioRow {
    let mut row = ScenarioRow {
        name,
        bytes: 0,
        events: 0,
        skipped: 0,
        dead_letters: 0,
        alerts: 0,
        rotations: 0,
        truncations: 0,
        error: None,
    };
    let outcome = (|| -> Result<(), String> {
        let dir = scenario_dir(name)?;
        let log = dir.join("app.log");
        let script = ChaosScript::new(&log, steps);
        let (outcome, observed) = run_live(context, &dir, &log, &script)?;
        let report = outcome.map_err(|error| format!("pipeline failed: {error}"))?;
        row.bytes = report.bytes;
        row.events = report.events;
        row.skipped = report.skipped;
        row.alerts = report.alerts.len();
        row.rotations = report.rotations;
        row.truncations = report.truncations;
        let offline = offline_reference(context, &observed, &FieldMapping::canonical(), 64)?;
        row.dead_letters = offline.report.diagnostics.len();
        check_differential(&report, &dir.join("dead.ndjson"), &offline)?;
        extra(&report)?;
        let _ = std::fs::remove_dir_all(&dir);
        Ok(())
    })();
    row.error = outcome.err();
    row
}

/// Torn appends with stalled-writer gaps: every record survives, nothing
/// is quarantined.
fn torn_writes_scenario(context: &MonitorContext, corpus: &str) -> ScenarioRow {
    let len = corpus.len();
    let cuts = [1, len / 7, len / 7 + 3, len / 3, len / 2 + 11, len - 2];
    let steps = torn_appends(corpus.as_bytes(), &cuts, Duration::from_millis(10));
    completed_scenario(context, "torn_writes_and_stalls", steps, |report| {
        if report.skipped != 0 {
            return Err(format!("{} records quarantined in a clean stream", report.skipped));
        }
        Ok(())
    })
}

/// Rotation mid-record over a stream salted with poison lines: the
/// poison is quarantined with exact offsets, the rotation loses nothing.
fn rotation_poison_scenario(context: &MonitorContext, corpus: &str) -> ScenarioRow {
    let mut lines: Vec<&str> = corpus.lines().collect();
    let poison = "seq=9000001 user=u-broken service=MedicalService actor=Doctor \
                  action=frobnicate fields=HealthRecord permitted=true";
    lines.insert(lines.len() / 3, poison);
    let salted = format!("{}\n", lines.join("\n"));
    let head = &salted[..salted.len() / 2];
    let tail = &salted[salted.len() / 2..];
    let mut steps = torn_appends(head.as_bytes(), &[head.len() / 2 + 1], Duration::from_millis(5));
    steps.push(ChaosStep::Rotate);
    steps.extend(torn_appends(tail.as_bytes(), &[3], Duration::from_millis(5)));
    completed_scenario(context, "rotation_mid_record_poison", steps, |report| {
        if report.rotations != 1 {
            return Err(format!("{} rotations observed, expected 1", report.rotations));
        }
        if report.skipped == 0 {
            return Err("the poison line was not quarantined".to_owned());
        }
        Ok(())
    })
}

/// In-place truncation: the file is rewritten *shorter* than the
/// consumed position (the only truncation a poller can observe), and the
/// replacement replays from offset zero.
fn truncation_scenario(context: &MonitorContext, corpus: &str) -> ScenarioRow {
    let lines: Vec<&str> = corpus.lines().collect();
    let split = lines.len() * 4 / 5;
    let head = format!("{}\n", lines[..split].join("\n"));
    let replacement = format!("{}\n", lines[split..].join("\n"));
    assert!(
        replacement.len() < head.len(),
        "fixture: the replacement must be shorter than the consumed head"
    );
    let steps =
        vec![ChaosStep::Append(head.into_bytes()), ChaosStep::Truncate(replacement.into_bytes())];
    completed_scenario(context, "truncation_rewrite", steps, |report| {
        if report.truncations != 1 {
            return Err(format!("{} truncations observed, expected 1", report.truncations));
        }
        Ok(())
    })
}

/// A corrupt gzip stream: a stream-level failure on both sides, recorded
/// as one dead letter.
fn gzip_scenario(context: &MonitorContext, corpus: &str) -> ScenarioRow {
    let mut row = ScenarioRow {
        name: "gzip_corruption",
        bytes: 0,
        events: 0,
        skipped: 0,
        dead_letters: 0,
        alerts: 0,
        rotations: 0,
        truncations: 0,
        error: None,
    };
    let outcome = (|| -> Result<(), String> {
        let dir = scenario_dir("gzip")?;
        let log = dir.join("app.log.gz");
        let archive = corrupt_gzip(gzip_compress_stored(corpus.as_bytes()));
        let cut = archive.len() / 2;
        let steps = torn_appends(&archive, &[cut], Duration::from_millis(5));
        let script = ChaosScript::new(&log, steps);
        let (outcome, observed) = run_live(context, &dir, &log, &script)?;
        row.bytes = observed.len() as u64;
        match outcome {
            Err(PipelineError::Ingest(IngestError::Gzip(_))) => {}
            Err(error) => return Err(format!("expected a gzip failure, got: {error}")),
            Ok(report) => {
                return Err(format!(
                    "a corrupt archive parsed: {} events from {} bytes",
                    report.events, report.bytes
                ))
            }
        }
        if offline_reference(context, &observed, &FieldMapping::canonical(), 64).is_ok() {
            return Err("the offline run accepted the corrupt archive".to_owned());
        }
        let dead = read_dead_letters(&dir.join("dead.ndjson"))
            .map_err(|error| format!("dead-letter file: {error}"))?;
        row.dead_letters = dead.len();
        if dead.len() != 1 || dead[0].kind != "gzip" {
            return Err(format!("expected one stream-level gzip dead letter, got {dead:?}"));
        }
        let _ = std::fs::remove_dir_all(&dir);
        Ok(())
    })();
    row.error = outcome.err();
    row
}

fn json_report(options: &Options, rows: &[ScenarioRow]) -> String {
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"gate\": \"live_pipeline_chaos\",");
    let _ = writeln!(out, "  \"quick\": {},", options.quick);
    let _ = writeln!(out, "  \"generated_unix\": {unix_secs},");
    out.push_str("  \"scenarios\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"name\": \"{}\", \"ok\": {}, \"bytes\": {}, \"events\": {}, \"skipped\": {}, \
             \"dead_letters\": {}, \"alerts\": {}, \"rotations\": {}, \"truncations\": {}",
            row.name,
            row.error.is_none(),
            row.bytes,
            row.events,
            row.skipped,
            row.dead_letters,
            row.alerts,
            row.rotations,
            row.truncations,
        );
        if let Some(error) = &row.error {
            let _ = write!(
                out,
                ", \"error\": \"{}\"",
                error.replace('\\', "\\\\").replace('"', "\\\"")
            );
        }
        out.push_str(if i + 1 == rows.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let options = match parse_options() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("privacy-chaos: {message}");
            return ExitCode::FAILURE;
        }
    };
    let context = match MonitorContext::healthcare() {
        Ok(context) => context,
        Err(message) => {
            eprintln!("privacy-chaos: building the healthcare context: {message}");
            return ExitCode::FAILURE;
        }
    };
    let requests = if options.quick { 80 } else { 240 };
    let corpus = render_events(&context.corpus_events(requests), LogFormat::Logfmt);
    let corpus = format!("{corpus}\n");

    let rows = vec![
        torn_writes_scenario(&context, &corpus),
        rotation_poison_scenario(&context, &corpus),
        truncation_scenario(&context, &corpus),
        gzip_scenario(&context, &corpus),
    ];
    let mut failed = 0usize;
    for row in &rows {
        match &row.error {
            None => eprintln!(
                "privacy-chaos: {:<28} ok  ({} bytes, {} events, {} quarantined, {} alerts)",
                row.name, row.bytes, row.events, row.skipped, row.alerts
            ),
            Some(error) => {
                failed += 1;
                eprintln!("privacy-chaos: {:<28} FAILED: {error}", row.name);
            }
        }
    }

    let report = json_report(&options, &rows);
    if let Err(error) = std::fs::write(&options.out, &report) {
        eprintln!("privacy-chaos: writing {}: {error}", options.out);
        return ExitCode::FAILURE;
    }
    eprintln!("privacy-chaos: wrote {}", options.out);
    if failed > 0 {
        eprintln!("privacy-chaos: {failed} of {} scenarios diverged", rows.len());
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
