//! `privacy-supervisor`: run the paper's healthcare monitor as a
//! fault-tolerant multi-process fleet.
//!
//! The distributed counterpart of `privacy-monitor`: the supervisor renders
//! the healthcare case-study model, spawns `--workers` shard-owning
//! `privacy-shardd` processes (found next to this executable unless
//! `--worker` overrides it), routes a seeded synthetic workload to them in
//! batches, and prints the merged alert stream — which is identical, alert
//! for alert, to what the in-process monitor would emit. Workers checkpoint
//! every `--checkpoint-every` batches and are restarted from their last
//! good checkpoint if they die; `--kill-after N` injects such a death to
//! demonstrate the recovery path.
//!
//! ```text
//! privacy-supervisor [--workers N] [--users N] [--requests N] [--batch N]
//!                    [--checkpoint-dir PATH] [--checkpoint-every N]
//!                    [--worker PATH] [--kill-after N] [--quiet]
//! ```
//!
//! Exit codes follow the [`privacy_distrib::exit`] taxonomy (see
//! `privacy-shardd --help`).

use privacy_core::{casestudy, PrivacySystem};
use privacy_distrib::{exit, DistributedMonitor, FaultPlan, SupervisorConfig};
use privacy_lts::LtsIndex;
use privacy_model::{FieldId, Record, ServiceId};
use privacy_runtime::ServiceEngine;
use privacy_synth::{random_profiles, random_workload, ProfileGeneratorConfig, WorkloadConfig};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    workers: usize,
    users: usize,
    requests: usize,
    batch: usize,
    checkpoint_dir: PathBuf,
    checkpoint_every: u64,
    worker: Option<PathBuf>,
    kill_after: Option<u64>,
    quiet: bool,
}

const USAGE: &str = "usage: privacy-supervisor [--workers N] [--users N] [--requests N] \
                     [--batch N] [--checkpoint-dir PATH] [--checkpoint-every N] [--worker PATH] \
                     [--kill-after N] [--quiet]";

fn parse_options() -> Result<Options, String> {
    let mut options = Options {
        workers: 2,
        users: 64,
        requests: 2_000,
        batch: 64,
        checkpoint_dir: std::env::temp_dir().join("privacy-supervisor-ckpt"),
        checkpoint_every: 4,
        worker: None,
        kill_after: None,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    let next_value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                options.workers = next_value(&mut args, "--workers")?
                    .parse()
                    .map_err(|_| "bad --workers value".to_owned())?;
            }
            "--users" => {
                options.users = next_value(&mut args, "--users")?
                    .parse()
                    .map_err(|_| "bad --users value".to_owned())?;
            }
            "--requests" => {
                options.requests = next_value(&mut args, "--requests")?
                    .parse()
                    .map_err(|_| "bad --requests value".to_owned())?;
            }
            "--batch" => {
                options.batch = next_value(&mut args, "--batch")?
                    .parse()
                    .map_err(|_| "bad --batch value".to_owned())?;
                if options.batch == 0 {
                    return Err("--batch must be at least 1".to_owned());
                }
            }
            "--checkpoint-dir" => {
                options.checkpoint_dir = PathBuf::from(next_value(&mut args, "--checkpoint-dir")?);
            }
            "--checkpoint-every" => {
                options.checkpoint_every = next_value(&mut args, "--checkpoint-every")?
                    .parse()
                    .map_err(|_| "bad --checkpoint-every value".to_owned())?;
            }
            "--worker" => options.worker = Some(PathBuf::from(next_value(&mut args, "--worker")?)),
            "--kill-after" => {
                options.kill_after = Some(
                    next_value(&mut args, "--kill-after")?
                        .parse()
                        .map_err(|_| "bad --kill-after value".to_owned())?,
                );
            }
            "--quiet" => options.quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(exit::OK);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(options)
}

/// The `privacy-shardd` binary: explicit path, or the one built next to us.
fn worker_program(options: &Options) -> Result<PathBuf, String> {
    if let Some(path) = &options.worker {
        return Ok(path.clone());
    }
    let me = std::env::current_exe().map_err(|e| format!("locating this executable: {e}"))?;
    let sibling = me.with_file_name("privacy-shardd");
    if sibling.exists() {
        Ok(sibling)
    } else {
        Err(format!("no worker at {} — pass --worker PATH", sibling.display()))
    }
}

fn run(options: &Options) -> Result<(), String> {
    let system: PrivacySystem =
        casestudy::healthcare().map_err(|e| format!("building the healthcare model: {e}"))?;
    let lts = system.generate_lts().map_err(|e| format!("generating the LTS: {e}"))?;
    let fingerprint = LtsIndex::build(&lts).fingerprint();

    let services: Vec<ServiceId> = system.catalog().services().map(|s| s.id().clone()).collect();
    let fields: Vec<FieldId> = system.catalog().fields().map(|f| f.id().clone()).collect();
    let users = random_profiles(&ProfileGeneratorConfig {
        count: options.users,
        seed: 13,
        services: services.clone(),
        consent_probability: 0.5,
        fields: fields.clone(),
        sensitivity_probability: 0.6,
    });
    let mut engine = ServiceEngine::new(
        system.catalog().clone(),
        system.dataflows().clone(),
        system.policy().clone(),
    );
    let workload = random_workload(&WorkloadConfig {
        length: options.requests,
        seed: 17,
        users: users.iter().map(|u| u.id().clone()).collect(),
        services: services.iter().map(|s| (s.clone(), 1.0)).collect(),
    });
    for request in &workload {
        let record = fields
            .iter()
            .fold(Record::new(), |record, field| record.with(field.clone(), format!("v-{field}")));
        let _ = engine.execute(request.user(), request.service(), &record);
    }
    let events = engine.log().events().to_vec();

    let mut config = SupervisorConfig::new(worker_program(options)?, &options.checkpoint_dir);
    config.workers = options.workers;
    config.checkpoint_every = options.checkpoint_every;
    if let Some(kill_after) = options.kill_after {
        config.fault_plan = FaultPlan::none().kill_after(0, 0, kill_after);
    }
    let mut monitor = DistributedMonitor::launch("Healthcare", &system, fingerprint, config)
        .map_err(|e| e.to_string())?;
    for user in &users {
        monitor.register_user(user).map_err(|e| e.to_string())?;
    }
    let mut alert_count = 0usize;
    for batch in events.chunks(options.batch) {
        let alerts = monitor.submit_batch(batch).map_err(|e| e.to_string())?;
        alert_count += alerts.len();
        if !options.quiet {
            for alert in &alerts {
                println!("{alert}");
            }
        }
    }
    let (rest, stats) = monitor.shutdown().map_err(|e| e.to_string())?;
    alert_count += rest.len();
    if !options.quiet {
        for alert in &rest {
            println!("{alert}");
        }
    }
    eprintln!(
        "{} workers, {} batches, {} events, {} alerts, {} checkpoints, {} recoveries",
        options.workers,
        stats.batches,
        stats.events,
        alert_count,
        stats.checkpoints,
        stats.recoveries.len(),
    );
    for recovery in &stats.recoveries {
        eprintln!(
            "  recovered worker {} (incarnation {}) in {:?}: resumed from batch {}{} — {}",
            recovery.worker,
            recovery.incarnation,
            recovery.latency,
            recovery.resumed_from_batch,
            if recovery.fell_back { " (fell back a generation)" } else { "" },
            recovery.cause,
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_options() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("privacy-supervisor: {message}");
            return ExitCode::from(exit::USAGE as u8);
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("privacy-supervisor: {message}");
            ExitCode::FAILURE
        }
    }
}
