//! `privacy-supervisor`: run the paper's healthcare monitor as a
//! fault-tolerant multi-process fleet.
//!
//! The distributed counterpart of `privacy-monitor`: the supervisor renders
//! the healthcare case-study model, spawns `--workers` shard-owning
//! `privacy-shardd` processes (found next to this executable unless
//! `--worker` overrides it), routes a seeded synthetic workload to them in
//! batches, and prints the merged alert stream — which is identical, alert
//! for alert, to what the in-process monitor would emit. Workers checkpoint
//! every `--checkpoint-every` batches and are restarted from their last
//! good checkpoint if they die; `--kill-after N` injects such a death to
//! demonstrate the recovery path.
//!
//! ```text
//! privacy-supervisor [--workers N] [--users N] [--requests N] [--batch N]
//!                    [--checkpoint-dir PATH] [--checkpoint-every N]
//!                    [--worker PATH] [--kill-after N] [--quiet]
//!                    [--ack-timeout-ms N] [--ack-grace-us N]
//!                    [--control-timeout-ms N] [--max-restarts N]
//!                    [--restart-base-ms N] [--restart-cap-ms N]
//!                    [--reset-after-acks N] [--max-frame-events N]
//!                    [--linger-us N]
//! ```
//!
//! The timeout and restart flags expose the supervisor's failure-detection
//! tuning ([`SupervisorConfig`] and [`RestartPolicy`]): how long to wait
//! for an ack or a control reply before declaring a worker dead, how many
//! restarts a worker gets without sustained progress, and the backoff
//! curve between attempts. See `--help` for each flag's meaning.
//!
//! Exit codes follow the [`privacy_distrib::exit`] taxonomy (see
//! `privacy-shardd --help`).
//!
//! [`RestartPolicy`]: privacy_distrib::RestartPolicy

use privacy_core::{casestudy, PrivacySystem};
use privacy_distrib::{exit, DistributedMonitor, FaultPlan, SupervisorConfig};
use privacy_lts::LtsIndex;
use privacy_model::{FieldId, Record, ServiceId};
use privacy_runtime::ServiceEngine;
use privacy_synth::{random_profiles, random_workload, ProfileGeneratorConfig, WorkloadConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Options {
    workers: usize,
    users: usize,
    requests: usize,
    batch: usize,
    checkpoint_dir: PathBuf,
    checkpoint_every: u64,
    worker: Option<PathBuf>,
    kill_after: Option<u64>,
    quiet: bool,
    ack_timeout: Option<Duration>,
    ack_grace: Option<Duration>,
    control_timeout: Option<Duration>,
    max_restarts: Option<u32>,
    restart_base: Option<Duration>,
    restart_cap: Option<Duration>,
    reset_after_acks: Option<u32>,
    max_frame_events: Option<usize>,
    linger: Option<Duration>,
}

const USAGE: &str = "usage: privacy-supervisor [OPTIONS]

Run the healthcare monitor as a supervised multi-process fleet.

Workload:
  --workers N            worker processes to spawn (default 2)
  --users N              synthetic user population (default 64)
  --requests N           synthetic workload length (default 2000)
  --batch N              events per super-batch (default 64)
  --quiet                suppress the alert stream (stats still printed)

Checkpointing:
  --checkpoint-dir PATH  per-worker checkpoint directory
  --checkpoint-every N   checkpoint all workers every N batches (default 4)

Transport tuning:
  --max-frame-events N   most events one coalesced wire frame may carry
                         before the writer flushes it (default 1024)
  --linger-us N          how long a writer holds a partial frame open for
                         more sub-batches, in microseconds (default 2000)

Failure detection and restart tuning:
  --ack-timeout-ms N     kill a worker that has not acked within N ms
                         (default 10000); the deadline additionally grows
                         by the per-event grace for events in flight
  --ack-grace-us N       extra ack deadline per in-flight event, in
                         microseconds (default 5000)
  --control-timeout-ms N give up on a checkpoint/export/import reply after
                         N ms (default 60000)
  --max-restarts N       restarts allowed without sustained progress before
                         the run fails with a typed error (default 5)
  --restart-base-ms N    backoff before the first restart attempt; doubles
                         per attempt (default 50)
  --restart-cap-ms N     upper bound on any single backoff delay
                         (default 2000)
  --reset-after-acks N   acked batches a fresh incarnation must deliver
                         before its restart budget resets (default 3)

Fault injection:
  --worker PATH          worker binary (default: privacy-shardd next to
                         this executable)
  --kill-after N         kill worker 0's first incarnation after N events";

fn parse_options() -> Result<Options, String> {
    let mut options = Options {
        workers: 2,
        users: 64,
        requests: 2_000,
        batch: 64,
        checkpoint_dir: std::env::temp_dir().join("privacy-supervisor-ckpt"),
        checkpoint_every: 4,
        worker: None,
        kill_after: None,
        quiet: false,
        ack_timeout: None,
        ack_grace: None,
        control_timeout: None,
        max_restarts: None,
        restart_base: None,
        restart_cap: None,
        reset_after_acks: None,
        max_frame_events: None,
        linger: None,
    };
    let mut args = std::env::args().skip(1);
    let next_value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                options.workers = next_value(&mut args, "--workers")?
                    .parse()
                    .map_err(|_| "bad --workers value".to_owned())?;
            }
            "--users" => {
                options.users = next_value(&mut args, "--users")?
                    .parse()
                    .map_err(|_| "bad --users value".to_owned())?;
            }
            "--requests" => {
                options.requests = next_value(&mut args, "--requests")?
                    .parse()
                    .map_err(|_| "bad --requests value".to_owned())?;
            }
            "--batch" => {
                options.batch = next_value(&mut args, "--batch")?
                    .parse()
                    .map_err(|_| "bad --batch value".to_owned())?;
                if options.batch == 0 {
                    return Err("--batch must be at least 1".to_owned());
                }
            }
            "--checkpoint-dir" => {
                options.checkpoint_dir = PathBuf::from(next_value(&mut args, "--checkpoint-dir")?);
            }
            "--checkpoint-every" => {
                options.checkpoint_every = next_value(&mut args, "--checkpoint-every")?
                    .parse()
                    .map_err(|_| "bad --checkpoint-every value".to_owned())?;
            }
            "--worker" => options.worker = Some(PathBuf::from(next_value(&mut args, "--worker")?)),
            "--kill-after" => {
                options.kill_after = Some(
                    next_value(&mut args, "--kill-after")?
                        .parse()
                        .map_err(|_| "bad --kill-after value".to_owned())?,
                );
            }
            "--quiet" => options.quiet = true,
            "--ack-timeout-ms" => {
                let millis: u64 = next_value(&mut args, "--ack-timeout-ms")?
                    .parse()
                    .map_err(|_| "bad --ack-timeout-ms value".to_owned())?;
                options.ack_timeout = Some(Duration::from_millis(millis));
            }
            "--ack-grace-us" => {
                let micros: u64 = next_value(&mut args, "--ack-grace-us")?
                    .parse()
                    .map_err(|_| "bad --ack-grace-us value".to_owned())?;
                options.ack_grace = Some(Duration::from_micros(micros));
            }
            "--max-frame-events" => {
                let count: usize = next_value(&mut args, "--max-frame-events")?
                    .parse()
                    .map_err(|_| "bad --max-frame-events value".to_owned())?;
                if count == 0 {
                    return Err("--max-frame-events must be at least 1".to_owned());
                }
                options.max_frame_events = Some(count);
            }
            "--linger-us" => {
                let micros: u64 = next_value(&mut args, "--linger-us")?
                    .parse()
                    .map_err(|_| "bad --linger-us value".to_owned())?;
                options.linger = Some(Duration::from_micros(micros));
            }
            "--control-timeout-ms" => {
                let millis: u64 = next_value(&mut args, "--control-timeout-ms")?
                    .parse()
                    .map_err(|_| "bad --control-timeout-ms value".to_owned())?;
                options.control_timeout = Some(Duration::from_millis(millis));
            }
            "--max-restarts" => {
                options.max_restarts = Some(
                    next_value(&mut args, "--max-restarts")?
                        .parse()
                        .map_err(|_| "bad --max-restarts value".to_owned())?,
                );
            }
            "--restart-base-ms" => {
                let millis: u64 = next_value(&mut args, "--restart-base-ms")?
                    .parse()
                    .map_err(|_| "bad --restart-base-ms value".to_owned())?;
                options.restart_base = Some(Duration::from_millis(millis));
            }
            "--restart-cap-ms" => {
                let millis: u64 = next_value(&mut args, "--restart-cap-ms")?
                    .parse()
                    .map_err(|_| "bad --restart-cap-ms value".to_owned())?;
                options.restart_cap = Some(Duration::from_millis(millis));
            }
            "--reset-after-acks" => {
                options.reset_after_acks = Some(
                    next_value(&mut args, "--reset-after-acks")?
                        .parse()
                        .map_err(|_| "bad --reset-after-acks value".to_owned())?,
                );
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(exit::OK);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(options)
}

/// The `privacy-shardd` binary: explicit path, or the one built next to us.
fn worker_program(options: &Options) -> Result<PathBuf, String> {
    if let Some(path) = &options.worker {
        return Ok(path.clone());
    }
    let me = std::env::current_exe().map_err(|e| format!("locating this executable: {e}"))?;
    let sibling = me.with_file_name("privacy-shardd");
    if sibling.exists() {
        Ok(sibling)
    } else {
        Err(format!("no worker at {} — pass --worker PATH", sibling.display()))
    }
}

fn run(options: &Options) -> Result<(), String> {
    let system: PrivacySystem =
        casestudy::healthcare().map_err(|e| format!("building the healthcare model: {e}"))?;
    let lts = system.generate_lts().map_err(|e| format!("generating the LTS: {e}"))?;
    let fingerprint = LtsIndex::build(&lts).fingerprint();

    let services: Vec<ServiceId> = system.catalog().services().map(|s| s.id().clone()).collect();
    let fields: Vec<FieldId> = system.catalog().fields().map(|f| f.id().clone()).collect();
    let users = random_profiles(&ProfileGeneratorConfig {
        count: options.users,
        seed: 13,
        services: services.clone(),
        consent_probability: 0.5,
        fields: fields.clone(),
        sensitivity_probability: 0.6,
    });
    let mut engine = ServiceEngine::new(
        system.catalog().clone(),
        system.dataflows().clone(),
        system.policy().clone(),
    );
    let workload = random_workload(&WorkloadConfig {
        length: options.requests,
        seed: 17,
        users: users.iter().map(|u| u.id().clone()).collect(),
        services: services.iter().map(|s| (s.clone(), 1.0)).collect(),
    });
    for request in &workload {
        let record = fields
            .iter()
            .fold(Record::new(), |record, field| record.with(field.clone(), format!("v-{field}")));
        let _ = engine.execute(request.user(), request.service(), &record);
    }
    let events = engine.log().events().to_vec();

    let mut config = SupervisorConfig::new(worker_program(options)?, &options.checkpoint_dir);
    config.workers = options.workers;
    config.checkpoint_every = options.checkpoint_every;
    if let Some(ack_timeout) = options.ack_timeout {
        config.ack_timeout = ack_timeout;
    }
    if let Some(grace) = options.ack_grace {
        config.ack_grace_per_event = grace;
    }
    if let Some(count) = options.max_frame_events {
        config.max_frame_events = count;
    }
    if let Some(linger) = options.linger {
        config.linger = linger;
    }
    if let Some(control_timeout) = options.control_timeout {
        config.control_timeout = control_timeout;
    }
    if let Some(max_restarts) = options.max_restarts {
        config.restart.max_restarts = max_restarts;
    }
    if let Some(base) = options.restart_base {
        config.restart.base_delay = base;
    }
    if let Some(cap) = options.restart_cap {
        config.restart.max_delay = cap;
    }
    if let Some(acks) = options.reset_after_acks {
        config.restart.reset_after_acks = acks;
    }
    if let Some(kill_after) = options.kill_after {
        config.fault_plan = FaultPlan::none().kill_after(0, 0, kill_after);
    }
    let mut monitor = DistributedMonitor::launch("Healthcare", &system, fingerprint, config)
        .map_err(|e| e.to_string())?;
    for user in &users {
        monitor.register_user(user).map_err(|e| e.to_string())?;
    }
    let mut alert_count = 0usize;
    for batch in events.chunks(options.batch) {
        let alerts = monitor.submit_batch(batch).map_err(|e| e.to_string())?;
        alert_count += alerts.len();
        if !options.quiet {
            for alert in &alerts {
                println!("{alert}");
            }
        }
    }
    let (rest, stats) = monitor.shutdown().map_err(|e| e.to_string())?;
    alert_count += rest.len();
    if !options.quiet {
        for alert in &rest {
            println!("{alert}");
        }
    }
    eprintln!(
        "{} workers, {} batches, {} events, {} alerts, {} checkpoints, {} recoveries",
        options.workers,
        stats.batches,
        stats.events,
        alert_count,
        stats.checkpoints,
        stats.recoveries.len(),
    );
    for recovery in &stats.recoveries {
        eprintln!(
            "  recovered worker {} (incarnation {}) in {:?}: resumed from batch {}{} — {}",
            recovery.worker,
            recovery.incarnation,
            recovery.latency,
            recovery.resumed_from_batch,
            if recovery.fell_back { " (fell back a generation)" } else { "" },
            recovery.cause,
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_options() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("privacy-supervisor: {message}");
            return ExitCode::from(exit::USAGE as u8);
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("privacy-supervisor: {message}");
            ExitCode::FAILURE
        }
    }
}
