//! `privacy-monitor`: run real logs through the indexed runtime monitor.
//!
//! The end-to-end wiring of the ingestion front end: a log file (or stdin),
//! in JSON lines / logfmt / CSV — gzip-compressed or plain — is parsed
//! through a [`FieldMapping`], resolved into events, and batch-ingested
//! into an [`IndexedMonitor`] over the paper's healthcare case-study model.
//! Alerts print live as batches complete; `--checkpoint` persists a
//! [`MonitorSnapshot`] after every batch — written atomically through
//! [`CheckpointStore`] (temp file + fsync + rename, with the previous
//! generation kept as `<path>.prev`) so a crash mid-write can never leave a
//! torn checkpoint. `--resume` loads the newest generation that decodes,
//! falling back to `.prev` with a typed warning when the live file is
//! corrupt.
//!
//! ```text
//! privacy-monitor [FILE|-] [--format auto|json|logfmt|csv]
//!                 [--error-policy fail-fast|skip] [--batch N] [--threads N]
//!                 [--checkpoint PATH] [--resume PATH] [--aliases]
//!                 [--no-consent] [--quiet]
//!                 [--follow] [--poll-ms N] [--dead-letter PATH]
//!                 [--stop-file PATH]
//! ```
//!
//! `--follow` switches from the one-shot offline run to the live pipeline
//! ([`privacy_mde::pipeline::PipelineRunner`]): the input file is tailed as
//! it grows (rotation and truncation are handled; stdin becomes a
//! long-lived pipe), poison records are quarantined to the `--dead-letter`
//! NDJSON file with their byte offsets, and creating `--stop-file` requests
//! a graceful drain — alerts flushed, one final resumable checkpoint
//! written. A later `--follow --resume PATH` run continues the identical
//! stream from that checkpoint.
//!
//! Unknown users are registered on first sight — consenting to every
//! catalog service by default (so alerts reflect risky *actions*, not a
//! blanket absence of consent), or with empty consent under `--no-consent`.
//!
//! Exit codes follow the [`privacy_distrib::exit`] taxonomy: 0 ok, 2 usage,
//! 10 ingestion failed, 11 snapshot/model state failed, 12 I/O failed — see
//! `--help`.

use privacy_core::{casestudy, PrivacySystem};
use privacy_distrib::{exit, CheckpointStore};
use privacy_ingest::{ingest_bytes, ErrorPolicy, FieldMapping, Format, IngestOptions, LiveSource};
use privacy_lts::LtsIndex;
use privacy_mde::pipeline::{
    IndexedSink, PipelineCheckpoint, PipelineConfig, PipelineError, PipelineRunner,
};
use privacy_model::{ServiceId, UserId, UserProfile};
use privacy_runtime::{Event, IndexedMonitor, MonitorSnapshot};
use std::collections::BTreeSet;
use std::io::Read;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Options {
    input: String,
    format: Option<Format>,
    policy: ErrorPolicy,
    batch: usize,
    threads: Option<usize>,
    checkpoint: Option<String>,
    resume: Option<String>,
    aliases: bool,
    no_consent: bool,
    quiet: bool,
    follow: bool,
    poll_ms: u64,
    dead_letter: Option<PathBuf>,
    stop_file: Option<PathBuf>,
}

const USAGE: &str = "usage: privacy-monitor [FILE|-] [--format auto|json|logfmt|csv] \
                     [--error-policy fail-fast|skip] [--batch N] [--threads N] \
                     [--checkpoint PATH] [--resume PATH] [--aliases] [--no-consent] [--quiet] \
                     [--follow] [--poll-ms N] [--dead-letter PATH] [--stop-file PATH]";

const HELP_EXIT_CODES: &str = "\
Checkpointing:
  --checkpoint PATH   after every batch, atomically replace PATH (temp file +
                      fsync + rename); the prior generation is kept at
                      PATH.prev
  --resume PATH       resume from the newest generation of PATH that decodes,
                      falling back to PATH.prev with a warning if the live
                      file is corrupt

Live operation:
  --follow            tail FILE as it grows (rotation and truncation are
                      handled) or treat stdin as a long-lived pipe, instead
                      of the one-shot offline run; checkpoints become
                      resumable pipeline checkpoints (offset + monitor state)
  --poll-ms N         tail poll interval in milliseconds (default 25)
  --dead-letter PATH  append quarantined records to PATH as NDJSON, each with
                      its byte offset and error kind
  --stop-file PATH    request a graceful drain when PATH appears: pending
                      alerts are flushed and a final resumable checkpoint is
                      written

Exit codes:
  0    ok
  2    usage error (bad flag or value)
  10   ingestion failed (unreadable input or a fatal parse under fail-fast)
  11   state failed (model build, snapshot decode, or resume rejected)
  12   I/O failed (checkpoint could not be written)";

/// A run failure carrying the exit code it must map to.
enum CliError {
    /// Unreadable input or a fatal ingestion error ([`exit::INGEST_FATAL`]).
    Ingest(String),
    /// Model or snapshot state could not be established
    /// ([`exit::SNAPSHOT_FATAL`]).
    State(String),
    /// A checkpoint could not be persisted ([`exit::IO_FATAL`]).
    Io(String),
}

impl CliError {
    fn code(&self) -> u8 {
        match self {
            CliError::Ingest(_) => exit::INGEST_FATAL as u8,
            CliError::State(_) => exit::SNAPSHOT_FATAL as u8,
            CliError::Io(_) => exit::IO_FATAL as u8,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Ingest(message) | CliError::State(message) | CliError::Io(message) => message,
        }
    }
}

fn parse_options() -> Result<Options, String> {
    let mut options = Options {
        input: "-".to_owned(),
        format: None,
        policy: ErrorPolicy::FailFast,
        batch: 1024,
        threads: None,
        checkpoint: None,
        resume: None,
        aliases: false,
        no_consent: false,
        quiet: false,
        follow: false,
        poll_ms: 25,
        dead_letter: None,
        stop_file: None,
    };
    let mut positional = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => {
                let value = args.next().ok_or("--format needs a value")?;
                options.format = match value.as_str() {
                    "auto" => None,
                    other => Some(
                        Format::parse(other).ok_or_else(|| format!("unknown format `{other}`"))?,
                    ),
                };
            }
            "--error-policy" => {
                let value = args.next().ok_or("--error-policy needs a value")?;
                options.policy = match value.as_str() {
                    "fail-fast" => ErrorPolicy::FailFast,
                    "skip" => ErrorPolicy::Skip,
                    other => return Err(format!("unknown error policy `{other}`")),
                };
            }
            "--batch" => {
                let value = args.next().ok_or("--batch needs a value")?;
                options.batch =
                    value.parse().map_err(|_| format!("bad --batch value `{value}`"))?;
                if options.batch == 0 {
                    return Err("--batch must be at least 1".to_owned());
                }
            }
            "--threads" => {
                let value = args.next().ok_or("--threads needs a value")?;
                options.threads =
                    Some(value.parse().map_err(|_| format!("bad --threads value `{value}`"))?);
            }
            "--checkpoint" => {
                options.checkpoint = Some(args.next().ok_or("--checkpoint needs a path")?);
            }
            "--resume" => options.resume = Some(args.next().ok_or("--resume needs a path")?),
            "--aliases" => options.aliases = true,
            "--no-consent" => options.no_consent = true,
            "--quiet" => options.quiet = true,
            "--follow" => options.follow = true,
            "--poll-ms" => {
                let value = args.next().ok_or("--poll-ms needs a value")?;
                options.poll_ms =
                    value.parse().map_err(|_| format!("bad --poll-ms value `{value}`"))?;
                if options.poll_ms == 0 {
                    return Err("--poll-ms must be at least 1".to_owned());
                }
            }
            "--dead-letter" => {
                options.dead_letter =
                    Some(PathBuf::from(args.next().ok_or("--dead-letter needs a path")?));
            }
            "--stop-file" => {
                options.stop_file =
                    Some(PathBuf::from(args.next().ok_or("--stop-file needs a path")?));
            }
            "--help" | "-h" => {
                println!("{USAGE}\n\n{HELP_EXIT_CODES}");
                std::process::exit(exit::OK);
            }
            other if !other.starts_with('-') || other == "-" => {
                if positional {
                    return Err(format!("unexpected extra input `{other}`"));
                }
                options.input = other.to_owned();
                positional = true;
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(options)
}

fn read_input(input: &str) -> Result<Vec<u8>, CliError> {
    let mut bytes = Vec::new();
    if input == "-" {
        std::io::stdin()
            .lock()
            .read_to_end(&mut bytes)
            .map_err(|e| CliError::Ingest(format!("reading stdin: {e}")))?;
    } else {
        bytes =
            std::fs::read(input).map_err(|e| CliError::Ingest(format!("reading {input}: {e}")))?;
    }
    Ok(bytes)
}

/// A profile for a user seen in the log but not registered yet.
fn profile_for(user: &UserId, services: &[ServiceId], no_consent: bool) -> UserProfile {
    let mut profile = UserProfile::new(user.clone());
    if !no_consent {
        for service in services {
            profile = profile.consents_to(service.clone());
        }
    }
    profile
}

/// The live pipeline behind `--follow`: tail (or pipe) → parse → monitor,
/// with quarantine, periodic checkpoints and graceful drain.
fn run_follow(options: &Options) -> Result<(), CliError> {
    let system: PrivacySystem = casestudy::healthcare()
        .map_err(|e| CliError::State(format!("building the healthcare model: {e}")))?;
    let lts =
        system.generate_lts().map_err(|e| CliError::State(format!("generating the LTS: {e}")))?;
    let index = Arc::new(LtsIndex::build(&lts));
    let catalog = system.catalog().clone();
    let policy = system.policy().clone();
    let services: Vec<ServiceId> = catalog.services().map(|s| s.id().clone()).collect();

    // In follow mode a checkpoint is a pipeline checkpoint: the stream
    // offset and counters plus the embedded monitor snapshot.
    let resume: Option<PipelineCheckpoint> = match &options.resume {
        Some(path) => {
            let store = CheckpointStore::new(path);
            let (loaded, warnings) = store.load_latest(|bytes| {
                PipelineCheckpoint::from_bytes(bytes).map(|_| ()).map_err(|e| e.to_string())
            });
            for warning in &warnings {
                eprintln!("privacy-monitor: warning: {warning}");
            }
            let (bytes, generation) = loaded.ok_or_else(|| {
                CliError::State(format!("no usable checkpoint generation at {path}"))
            })?;
            let checkpoint = PipelineCheckpoint::from_bytes(&bytes)
                .map_err(|e| CliError::State(format!("decoding checkpoint {path}: {e}")))?;
            eprintln!(
                "resuming from offset {} ({} events so far, {generation} generation)",
                checkpoint.offset, checkpoint.events
            );
            Some(checkpoint)
        }
        None => None,
    };
    let monitor = match &resume {
        Some(checkpoint) if !checkpoint.snapshot.is_empty() => {
            let snapshot = MonitorSnapshot::from_bytes(&checkpoint.snapshot)
                .map_err(|e| CliError::State(format!("decoding embedded snapshot: {e}")))?;
            IndexedMonitor::resume_from(catalog, policy, Arc::clone(&index), &snapshot)
                .map_err(|e| CliError::State(format!("resuming monitor state: {e}")))?
        }
        _ => IndexedMonitor::new(catalog, policy, Arc::clone(&index)),
    }
    .with_threads(options.threads);
    let mut sink = IndexedSink::new(monitor, services, options.no_consent);

    let mapping = if options.aliases {
        FieldMapping::with_common_aliases()
    } else {
        FieldMapping::canonical()
    };
    let mut config = PipelineConfig::new(mapping);
    config.format = options.format;
    config.policy = options.policy;
    config.batch = options.batch;
    config.checkpoint = options.checkpoint.as_ref().map(PathBuf::from);
    config.dead_letter = options.dead_letter.clone();
    config.stop_file = options.stop_file.clone();
    config.follow.poll_interval = Duration::from_millis(options.poll_ms);
    if let Some(checkpoint) = &resume {
        config.follow.start_offset = checkpoint.offset;
    }
    config.resume = resume;

    let source = if options.input == "-" {
        LiveSource::pipe(Box::new(std::io::stdin()), config.follow.clone())
    } else {
        LiveSource::tail(&options.input, config.follow.clone())
    };

    let runner = PipelineRunner::new(config);
    let quiet = options.quiet;
    let report = runner
        .run(source, &mut sink, |alert| {
            if !quiet {
                println!("{alert}");
            }
        })
        .map_err(|error| match error {
            PipelineError::Ingest(e) => {
                CliError::Ingest(format!("following {}: {e}", options.input))
            }
            PipelineError::Monitor(e) => CliError::State(e),
            PipelineError::Io(e) => CliError::Io(e),
        })?;
    eprintln!(
        "{} format, {} bytes, {} lines, {} events, {} quarantined ({} dead-lettered), \
         {} rotations, {} truncations, {} checkpoints, {} alerts — drained through offset {}",
        report.format.map_or_else(|| "undetected".to_owned(), |f| f.to_string()),
        report.bytes,
        report.lines,
        report.events,
        report.skipped,
        report.dead_letters,
        report.rotations,
        report.truncations,
        report.checkpoints,
        report.alerts.len(),
        report.offset,
    );
    Ok(())
}

fn run(options: &Options) -> Result<(), CliError> {
    // The paper's healthcare case study is the monitored system.
    let system: PrivacySystem = casestudy::healthcare()
        .map_err(|e| CliError::State(format!("building the healthcare model: {e}")))?;
    let lts =
        system.generate_lts().map_err(|e| CliError::State(format!("generating the LTS: {e}")))?;
    let index = Arc::new(LtsIndex::build(&lts));
    let catalog = system.catalog().clone();
    let policy = system.policy().clone();
    let services: Vec<ServiceId> = catalog.services().map(|s| s.id().clone()).collect();

    let mut monitor = match &options.resume {
        Some(path) => {
            // Load the newest generation that decodes; a corrupt live file
            // falls back to `.prev` with a warning instead of failing.
            let store = CheckpointStore::new(path);
            let (loaded, warnings) = store.load_latest(|bytes| {
                MonitorSnapshot::from_bytes(bytes).map(|_| ()).map_err(|e| e.to_string())
            });
            for warning in &warnings {
                eprintln!("privacy-monitor: warning: {warning}");
            }
            let (bytes, generation) = loaded.ok_or_else(|| {
                CliError::State(format!("no usable checkpoint generation at {path}"))
            })?;
            let snapshot = MonitorSnapshot::from_bytes(&bytes)
                .map_err(|e| CliError::State(format!("decoding snapshot {path}: {e}")))?;
            let monitor =
                IndexedMonitor::resume_from(catalog, policy, Arc::clone(&index), &snapshot)
                    .map_err(|e| CliError::State(format!("resuming from {path}: {e}")))?;
            eprintln!(
                "resumed {} users from {path} ({generation} generation)",
                monitor.user_count()
            );
            monitor
        }
        None => IndexedMonitor::new(catalog, policy, Arc::clone(&index)),
    }
    .with_threads(options.threads);

    let mapping = if options.aliases {
        FieldMapping::with_common_aliases()
    } else {
        FieldMapping::canonical()
    };
    let ingest_options = IngestOptions {
        format: options.format,
        policy: options.policy,
        ..IngestOptions::default()
    };

    let bytes = read_input(&options.input)?;
    let report = ingest_bytes(&bytes, &mapping, &ingest_options)
        .map_err(|e| CliError::Ingest(format!("ingesting {}: {e}", options.input)))?;
    for diagnostic in &report.diagnostics {
        eprintln!("{diagnostic}");
    }

    let mut known: BTreeSet<UserId> = BTreeSet::new();
    let mut alert_count = 0usize;
    for batch in report.events.chunks(options.batch) {
        for event in batch {
            if known.insert(event.user().clone()) {
                monitor.register_user(&profile_for(event.user(), &services, options.no_consent));
            }
        }
        let alerts = monitor.ingest_batch(batch);
        alert_count += alerts.len();
        if !options.quiet {
            for alert in &alerts {
                println!("{alert}");
            }
        }
        if let Some(path) = &options.checkpoint {
            // Atomic replace with a retained `.prev` generation: a crash
            // here leaves either the old checkpoint or the new one intact.
            let snapshot = monitor.snapshot();
            CheckpointStore::new(path)
                .write(&snapshot.to_bytes())
                .map_err(|e| CliError::Io(format!("writing checkpoint {path}: {e}")))?;
        }
    }
    let last = report.events.last().map(Event::sequence).unwrap_or(0);
    eprintln!(
        "{} format, {} lines, {} events (last sequence {last}), {} skipped, {} users, {} alerts",
        report.format,
        report.stats.lines,
        report.stats.events,
        report.stats.skipped,
        known.len(),
        alert_count,
    );
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_options() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("privacy-monitor: {message}");
            return ExitCode::from(exit::USAGE as u8);
        }
    };
    let outcome = if options.follow { run_follow(&options) } else { run(&options) };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("privacy-monitor: {}", error.message());
            ExitCode::from(error.code())
        }
    }
}
