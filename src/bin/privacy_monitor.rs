//! `privacy-monitor`: run real logs through the indexed runtime monitor.
//!
//! The end-to-end wiring of the ingestion front end: a log file (or stdin),
//! in JSON lines / logfmt / CSV — gzip-compressed or plain — is parsed
//! through a [`FieldMapping`], resolved into events, and batch-ingested
//! into an [`IndexedMonitor`] over the paper's healthcare case-study model.
//! Alerts print live as batches complete; `--checkpoint` persists a
//! [`MonitorSnapshot`] after every batch so a crashed run resumes where it
//! stopped (`--resume`).
//!
//! ```text
//! privacy-monitor [FILE|-] [--format auto|json|logfmt|csv]
//!                 [--error-policy fail-fast|skip] [--batch N] [--threads N]
//!                 [--checkpoint PATH] [--resume PATH] [--aliases]
//!                 [--no-consent] [--quiet]
//! ```
//!
//! Unknown users are registered on first sight — consenting to every
//! catalog service by default (so alerts reflect risky *actions*, not a
//! blanket absence of consent), or with empty consent under `--no-consent`.

use privacy_core::{casestudy, PrivacySystem};
use privacy_ingest::{ingest_bytes, ErrorPolicy, FieldMapping, Format, IngestOptions};
use privacy_lts::LtsIndex;
use privacy_model::{ServiceId, UserId, UserProfile};
use privacy_runtime::{Event, IndexedMonitor, MonitorSnapshot};
use std::collections::BTreeSet;
use std::io::Read;
use std::process::ExitCode;
use std::sync::Arc;

struct Options {
    input: String,
    format: Option<Format>,
    policy: ErrorPolicy,
    batch: usize,
    threads: Option<usize>,
    checkpoint: Option<String>,
    resume: Option<String>,
    aliases: bool,
    no_consent: bool,
    quiet: bool,
}

const USAGE: &str = "usage: privacy-monitor [FILE|-] [--format auto|json|logfmt|csv] \
                     [--error-policy fail-fast|skip] [--batch N] [--threads N] \
                     [--checkpoint PATH] [--resume PATH] [--aliases] [--no-consent] [--quiet]";

fn parse_options() -> Result<Options, String> {
    let mut options = Options {
        input: "-".to_owned(),
        format: None,
        policy: ErrorPolicy::FailFast,
        batch: 1024,
        threads: None,
        checkpoint: None,
        resume: None,
        aliases: false,
        no_consent: false,
        quiet: false,
    };
    let mut positional = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => {
                let value = args.next().ok_or("--format needs a value")?;
                options.format = match value.as_str() {
                    "auto" => None,
                    other => Some(
                        Format::parse(other).ok_or_else(|| format!("unknown format `{other}`"))?,
                    ),
                };
            }
            "--error-policy" => {
                let value = args.next().ok_or("--error-policy needs a value")?;
                options.policy = match value.as_str() {
                    "fail-fast" => ErrorPolicy::FailFast,
                    "skip" => ErrorPolicy::Skip,
                    other => return Err(format!("unknown error policy `{other}`")),
                };
            }
            "--batch" => {
                let value = args.next().ok_or("--batch needs a value")?;
                options.batch =
                    value.parse().map_err(|_| format!("bad --batch value `{value}`"))?;
                if options.batch == 0 {
                    return Err("--batch must be at least 1".to_owned());
                }
            }
            "--threads" => {
                let value = args.next().ok_or("--threads needs a value")?;
                options.threads =
                    Some(value.parse().map_err(|_| format!("bad --threads value `{value}`"))?);
            }
            "--checkpoint" => {
                options.checkpoint = Some(args.next().ok_or("--checkpoint needs a path")?);
            }
            "--resume" => options.resume = Some(args.next().ok_or("--resume needs a path")?),
            "--aliases" => options.aliases = true,
            "--no-consent" => options.no_consent = true,
            "--quiet" => options.quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if !other.starts_with('-') || other == "-" => {
                if positional {
                    return Err(format!("unexpected extra input `{other}`"));
                }
                options.input = other.to_owned();
                positional = true;
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(options)
}

fn read_input(input: &str) -> Result<Vec<u8>, String> {
    let mut bytes = Vec::new();
    if input == "-" {
        std::io::stdin()
            .lock()
            .read_to_end(&mut bytes)
            .map_err(|e| format!("reading stdin: {e}"))?;
    } else {
        bytes = std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?;
    }
    Ok(bytes)
}

/// A profile for a user seen in the log but not registered yet.
fn profile_for(user: &UserId, services: &[ServiceId], no_consent: bool) -> UserProfile {
    let mut profile = UserProfile::new(user.clone());
    if !no_consent {
        for service in services {
            profile = profile.consents_to(service.clone());
        }
    }
    profile
}

fn run(options: &Options) -> Result<(), String> {
    // The paper's healthcare case study is the monitored system.
    let system: PrivacySystem =
        casestudy::healthcare().map_err(|e| format!("building the healthcare model: {e}"))?;
    let lts = system.generate_lts().map_err(|e| format!("generating the LTS: {e}"))?;
    let index = Arc::new(LtsIndex::build(&lts));
    let catalog = system.catalog().clone();
    let policy = system.policy().clone();
    let services: Vec<ServiceId> = catalog.services().map(|s| s.id().clone()).collect();

    let mut monitor = match &options.resume {
        Some(path) => {
            let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
            let snapshot = MonitorSnapshot::from_bytes(&bytes)
                .map_err(|e| format!("decoding snapshot {path}: {e}"))?;
            let monitor =
                IndexedMonitor::resume_from(catalog, policy, Arc::clone(&index), &snapshot)
                    .map_err(|e| format!("resuming from {path}: {e}"))?;
            eprintln!("resumed {} users from {path}", monitor.user_count());
            monitor
        }
        None => IndexedMonitor::new(catalog, policy, Arc::clone(&index)),
    }
    .with_threads(options.threads);

    let mapping = if options.aliases {
        FieldMapping::with_common_aliases()
    } else {
        FieldMapping::canonical()
    };
    let ingest_options = IngestOptions {
        format: options.format,
        policy: options.policy,
        ..IngestOptions::default()
    };

    let bytes = read_input(&options.input)?;
    let report = ingest_bytes(&bytes, &mapping, &ingest_options)
        .map_err(|e| format!("ingesting {}: {e}", options.input))?;
    for diagnostic in &report.diagnostics {
        eprintln!("{diagnostic}");
    }

    let mut known: BTreeSet<UserId> = BTreeSet::new();
    let mut alert_count = 0usize;
    for batch in report.events.chunks(options.batch) {
        for event in batch {
            if known.insert(event.user().clone()) {
                monitor.register_user(&profile_for(event.user(), &services, options.no_consent));
            }
        }
        let alerts = monitor.ingest_batch(batch);
        alert_count += alerts.len();
        if !options.quiet {
            for alert in &alerts {
                println!("{alert}");
            }
        }
        if let Some(path) = &options.checkpoint {
            let snapshot = monitor.snapshot();
            std::fs::write(path, snapshot.to_bytes())
                .map_err(|e| format!("writing checkpoint {path}: {e}"))?;
        }
    }
    let last = report.events.last().map(Event::sequence).unwrap_or(0);
    eprintln!(
        "{} format, {} lines, {} events (last sequence {last}), {} skipped, {} users, {} alerts",
        report.format,
        report.stats.lines,
        report.stats.events,
        report.stats.skipped,
        known.len(),
        alert_count,
    );
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_options() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("privacy-monitor: {message}");
            return ExitCode::from(2);
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("privacy-monitor: {message}");
            ExitCode::FAILURE
        }
    }
}
