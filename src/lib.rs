//! # privacy-mde
//!
//! Umbrella crate for the reproduction of *"Identifying Privacy Risks in
//! Distributed Data Services: A Model-Driven Approach"* (Grace et al.,
//! ICDCS 2018).
//!
//! This crate simply re-exports every workspace crate under one roof so the
//! examples and integration tests can depend on a single package:
//!
//! * [`model`] — domain vocabulary (actors, fields, schemas, sensitivities,
//!   consent, datasets);
//! * [`dataflow`] — purpose-driven data-flow diagrams and validation;
//! * [`access`] — access-control lists, RBAC and policy deltas;
//! * [`lts`] — the generated labelled-transition-system privacy model;
//! * [`anonymity`] — k-anonymity, l-diversity, pseudonymisation, value risk
//!   and utility metrics;
//! * [`risk`] — the unwanted-disclosure and pseudonymisation risk analyses;
//! * [`runtime`] — the service simulator and runtime privacy monitor;
//! * [`synth`] — synthetic records, user profiles and workloads;
//! * [`baselines`] — ARX-, CAT- and LINDDUN-style comparator analysers;
//! * [`core`] — the model-driven pipeline and the healthcare case study;
//! * [`interchange`] — the textual `.psm` model interchange format (parser,
//!   resolver and printer) and the framed binary codec;
//! * [`distrib`] — fault-tolerant distributed monitoring: a supervisor
//!   routing shard-owned events to restartable worker processes;
//! * [`compliance`] — privacy-policy compliance checking over the LTS and
//!   over runtime event logs.
//!
//! # Quickstart
//!
//! ```
//! use privacy_mde::core::{casestudy, Pipeline};
//! use privacy_mde::model::RiskLevel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let system = casestudy::healthcare()?;
//! let outcome = Pipeline::new(&system).analyse_user(&casestudy::case_a_user())?;
//! assert_eq!(outcome.report.overall_level(), RiskLevel::Medium);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod pipeline;

pub use privacy_access as access;
pub use privacy_anonymity as anonymity;
pub use privacy_baselines as baselines;
pub use privacy_compliance as compliance;
pub use privacy_core as core;
pub use privacy_dataflow as dataflow;
pub use privacy_distrib as distrib;
pub use privacy_ingest as ingest;
pub use privacy_interchange as interchange;
pub use privacy_lts as lts;
pub use privacy_model as model;
pub use privacy_runtime as runtime;
pub use privacy_synth as synth;

pub use privacy_risk as risk;
