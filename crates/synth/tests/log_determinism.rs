//! Seed-determinism regression test for the synthetic-log pipeline.
//!
//! The ingestion round-trip oracle, the checkpoint/recovery bench and the
//! ingest bench all lean on one assumption: a fixed-seed synthetic workload
//! renders to the *same bytes* every time, on every machine, regardless of
//! how many threads the surrounding process uses. This test pins FNV-1a
//! hashes of the rendered streams so any accidental nondeterminism (or an
//! unintentional wire-format change — which would invalidate recorded
//! baselines and checked-in corpora) fails loudly.

use privacy_runtime::{Event, ServiceEngine};
use privacy_synth::{
    random_model, random_profiles, random_workload, render_events, LogFormat, ModelGeneratorConfig,
    ProfileGeneratorConfig, WorkloadConfig,
};

/// FNV-1a over the rendered bytes: stable, dependency-free, and order
/// sensitive.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Generates the fixed-seed model + workload and replays it into an event
/// stream. Every constant here is part of the pinned contract.
fn fixed_seed_events() -> Vec<Event> {
    let config = ModelGeneratorConfig {
        actors: 6,
        fields: 8,
        datastores: 2,
        services: 3,
        flows_per_service: 5,
        grant_probability: 0.5,
        seed: 23,
        ..ModelGeneratorConfig::default()
    };
    let (catalog, dataflows, policy) = random_model(&config).expect("seeded model generates");
    let services: Vec<_> = catalog.services().map(|s| (s.id().clone(), 1.0)).collect();
    let fields: Vec<_> = catalog.fields().map(|f| f.id().clone()).collect();
    let profiles = random_profiles(&ProfileGeneratorConfig {
        count: 32,
        seed: 29,
        services: catalog.services().map(|s| s.id().clone()).collect(),
        consent_probability: 0.5,
        fields: fields.clone(),
        sensitivity_probability: 0.6,
    });
    let workload = random_workload(&WorkloadConfig {
        length: 400,
        seed: 31,
        users: profiles.iter().map(|p| p.id().clone()).collect(),
        services,
    });
    let mut engine = ServiceEngine::new(catalog, dataflows, policy);
    for request in &workload {
        let record = fields.iter().fold(privacy_model::Record::new(), |record, field| {
            record.with(field.clone(), format!("v-{field}"))
        });
        let _ = engine.execute(request.user(), request.service(), &record);
    }
    engine.log().events().to_vec()
}

/// The pinned FNV-1a hashes of the rendered fixed-seed streams, one per
/// wire format. A change here is a wire-format (or generator) break: it
/// invalidates recorded bench baselines and the checked-in corpus files,
/// and must be deliberate.
const PINNED: [(LogFormat, u64); 3] = [
    (LogFormat::Json, 0x1d5b_97f4_6978_38e2),
    (LogFormat::Logfmt, 0xe081_07cc_e5f0_6709),
    (LogFormat::Csv, 0x0e40_7793_62af_8cbb),
];

#[test]
fn fixed_seed_streams_hash_to_their_pinned_values() {
    let events = fixed_seed_events();
    assert!(!events.is_empty(), "the fixed-seed workload must produce events");
    let mut drifted = Vec::new();
    for (format, pinned) in PINNED {
        let rendered = render_events(&events, format);
        let hash = fnv64(rendered.as_bytes());
        if hash != pinned {
            drifted.push(format!("{format}: got {hash:#018x}, pinned {pinned:#018x}"));
        }
    }
    assert!(drifted.is_empty(), "fixed-seed stream rendering drifted:\n  {}", drifted.join("\n  "));
}

#[test]
fn regeneration_is_byte_stable_within_a_process() {
    let first = fixed_seed_events();
    let second = fixed_seed_events();
    assert_eq!(first, second, "two same-seed generations must be identical");
    for format in LogFormat::ALL {
        assert_eq!(render_events(&first, format), render_events(&second, format));
    }
}

#[test]
fn rendering_is_independent_of_the_spawning_thread_count() {
    let reference: Vec<String> =
        LogFormat::ALL.iter().map(|&f| render_events(&fixed_seed_events(), f)).collect();
    for threads in [2usize, 4, 8] {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                std::thread::spawn(|| {
                    LogFormat::ALL
                        .iter()
                        .map(|&f| render_events(&fixed_seed_events(), f))
                        .collect::<Vec<String>>()
                })
            })
            .collect();
        for handle in handles {
            let rendered = handle.join().expect("render thread must not panic");
            assert_eq!(rendered, reference, "thread-count {threads} changed the bytes");
        }
    }
}
