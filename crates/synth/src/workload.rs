//! Synthetic workloads: sequences of service executions.
//!
//! The runtime simulator replays a workload — which user executes which
//! service, in which order — to exercise the "analysis of running systems"
//! path the paper motivates.

use privacy_model::{ServiceId, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// The request type itself lives with the engine that executes it; it is
// re-exported here so workload producers keep importing it from this crate.
pub use privacy_runtime::ServiceRequest;

/// Configuration of the workload generator.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Number of requests.
    pub length: usize,
    /// Random seed.
    pub seed: u64,
    /// The users issuing requests.
    pub users: Vec<UserId>,
    /// The services that may be requested, with a relative weight each.
    pub services: Vec<(ServiceId, f64)>,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            length: 100,
            seed: 42,
            users: (0..10).map(|i| UserId::new(format!("user-{i:05}"))).collect(),
            services: vec![
                (ServiceId::new("MedicalService"), 0.8),
                (ServiceId::new("MedicalResearchService"), 0.2),
            ],
        }
    }
}

impl WorkloadConfig {
    /// A configuration with the given number of requests.
    pub fn with_length(length: usize) -> Self {
        WorkloadConfig { length, ..WorkloadConfig::default() }
    }

    /// Builder-style: sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generates a seeded random workload.
///
/// Returns an empty workload if no users or services are configured.
pub fn random_workload(config: &WorkloadConfig) -> Vec<ServiceRequest> {
    if config.users.is_empty() || config.services.is_empty() {
        return Vec::new();
    }
    let total_weight: f64 = config.services.iter().map(|(_, w)| w.max(0.0)).sum();
    if total_weight <= 0.0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    (0..config.length)
        .map(|_| {
            let user = &config.users[rng.gen_range(0..config.users.len())];
            let mut pick = rng.gen_range(0.0..total_weight);
            let mut chosen = &config.services[0].0;
            for (service, weight) in &config.services {
                let weight = weight.max(0.0);
                if pick < weight {
                    chosen = service;
                    break;
                }
                pick -= weight;
            }
            ServiceRequest::new(user.clone(), chosen.clone())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_per_seed() {
        let config = WorkloadConfig::with_length(50).with_seed(1);
        assert_eq!(random_workload(&config), random_workload(&config));
        assert_ne!(
            random_workload(&config),
            random_workload(&WorkloadConfig::with_length(50).with_seed(2))
        );
        assert_eq!(random_workload(&config).len(), 50);
    }

    #[test]
    fn weights_bias_the_service_mix() {
        let config = WorkloadConfig {
            length: 500,
            services: vec![(ServiceId::new("A"), 1.0), (ServiceId::new("B"), 0.0)],
            ..WorkloadConfig::default()
        };
        let workload = random_workload(&config);
        assert!(workload.iter().all(|r| r.service().as_str() == "A"));
    }

    #[test]
    fn empty_configurations_produce_empty_workloads() {
        let no_users = WorkloadConfig { users: Vec::new(), ..WorkloadConfig::default() };
        assert!(random_workload(&no_users).is_empty());
        let no_services = WorkloadConfig { services: Vec::new(), ..WorkloadConfig::default() };
        assert!(random_workload(&no_services).is_empty());
        let zero_weights = WorkloadConfig {
            services: vec![(ServiceId::new("A"), 0.0)],
            ..WorkloadConfig::default()
        };
        assert!(random_workload(&zero_weights).is_empty());
    }

    #[test]
    fn requests_reference_configured_users_and_services() {
        let workload = random_workload(&WorkloadConfig::default());
        for request in &workload {
            assert!(request.user().as_str().starts_with("user-"));
            assert!(request.service().as_str().contains("Service"));
        }
        assert_eq!(workload.len(), 100);
        assert!(workload[0].to_string().contains("->"));
    }
}
