//! Synthetic user sensitivity profiles and consent assignments.
//!
//! The paper obtains user sensitivities *"directly from the user through a
//! questionnaire (if necessary)"*. With no real users available, this module
//! produces the exact profile of Case Study A plus seeded random populations
//! used by the scaling benchmarks.

use privacy_model::{FieldId, Sensitivity, SensitivityCategory, ServiceId, UserProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The user profile of Case Study A: consents to the Medical Service only and
/// is highly sensitive about the Diagnosis field.
pub fn case_a_profile() -> UserProfile {
    UserProfile::new("case-a-user")
        .consents_to(ServiceId::new("MedicalService"))
        .with_category_sensitivity(FieldId::new("Diagnosis"), SensitivityCategory::High)
}

/// Configuration of the random profile generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileGeneratorConfig {
    /// Number of users to generate.
    pub count: usize,
    /// Random seed.
    pub seed: u64,
    /// The services users may consent to.
    pub services: Vec<ServiceId>,
    /// Probability that a user consents to any given service.
    pub consent_probability: f64,
    /// The fields users may declare sensitivities about.
    pub fields: Vec<FieldId>,
    /// Probability that a user declares a sensitivity for any given field.
    pub sensitivity_probability: f64,
}

impl Default for ProfileGeneratorConfig {
    fn default() -> Self {
        ProfileGeneratorConfig {
            count: 10,
            seed: 42,
            services: vec![
                ServiceId::new("MedicalService"),
                ServiceId::new("MedicalResearchService"),
            ],
            consent_probability: 0.5,
            fields: vec![
                FieldId::new("Name"),
                FieldId::new("Date of Birth"),
                FieldId::new("Appointment"),
                FieldId::new("Medical Issues"),
                FieldId::new("Diagnosis"),
                FieldId::new("Treatment"),
            ],
            sensitivity_probability: 0.4,
        }
    }
}

impl ProfileGeneratorConfig {
    /// A configuration generating `count` users.
    pub fn with_count(count: usize) -> Self {
        ProfileGeneratorConfig { count, ..ProfileGeneratorConfig::default() }
    }

    /// Builder-style: sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generates a seeded random population of user profiles.
pub fn random_profiles(config: &ProfileGeneratorConfig) -> Vec<UserProfile> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    (0..config.count)
        .map(|index| {
            let mut user = UserProfile::new(format!("user-{index:05}"));
            for service in &config.services {
                if rng.gen_bool(config.consent_probability.clamp(0.0, 1.0)) {
                    user.consent_mut().grant(service.clone());
                }
            }
            for field in &config.fields {
                if rng.gen_bool(config.sensitivity_probability.clamp(0.0, 1.0)) {
                    let value: f64 = rng.gen_range(0.0..=1.0);
                    user.sensitivities_mut().set(field.clone(), Sensitivity::clamped(value));
                }
            }
            user
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_a_profile_matches_the_paper() {
        let user = case_a_profile();
        assert!(user.consent().includes(&ServiceId::new("MedicalService")));
        assert!(!user.consent().includes(&ServiceId::new("MedicalResearchService")));
        assert_eq!(
            user.sensitivities().sensitivity(&FieldId::new("Diagnosis")).category(),
            SensitivityCategory::High
        );
        assert!(user.sensitivities().sensitivity(&FieldId::new("Name")).is_zero());
    }

    #[test]
    fn random_profiles_are_deterministic_per_seed() {
        let config = ProfileGeneratorConfig::with_count(20).with_seed(3);
        let a = random_profiles(&config);
        let b = random_profiles(&config);
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        let c = random_profiles(&ProfileGeneratorConfig::with_count(20).with_seed(4));
        assert_ne!(a, c);
    }

    #[test]
    fn probabilities_control_consent_and_sensitivities() {
        let everything = ProfileGeneratorConfig {
            count: 5,
            consent_probability: 1.0,
            sensitivity_probability: 1.0,
            ..ProfileGeneratorConfig::default()
        };
        for user in random_profiles(&everything) {
            assert_eq!(user.consent().len(), 2);
            assert_eq!(user.sensitivities().len(), 6);
        }

        let nothing = ProfileGeneratorConfig {
            count: 5,
            consent_probability: 0.0,
            sensitivity_probability: 0.0,
            ..ProfileGeneratorConfig::default()
        };
        for user in random_profiles(&nothing) {
            assert!(user.consent().is_empty());
            assert!(user.sensitivities().is_empty());
        }
    }

    #[test]
    fn user_ids_are_unique() {
        let users = random_profiles(&ProfileGeneratorConfig::with_count(50));
        let ids: std::collections::BTreeSet<String> =
            users.iter().map(|u| u.id().as_str().to_owned()).collect();
        assert_eq!(ids.len(), 50);
    }

    #[test]
    fn generated_sensitivities_are_valid() {
        let users = random_profiles(&ProfileGeneratorConfig::with_count(30));
        for user in users {
            for (_, sensitivity) in user.sensitivities().iter() {
                assert!((0.0..=1.0).contains(&sensitivity.value()));
            }
        }
    }
}
