//! Skewed large-population generator for snapshot-footprint benchmarks.
//!
//! [`random_profiles`](crate::random_profiles) draws every user from the
//! same per-field Bernoulli, which at benchmark probabilities makes *every*
//! row dense — fine for stressing the monitor's hot path, useless for
//! measuring the sparse snapshot encoding, whose whole premise is that real
//! populations are skewed: most users interact with a service once, consent
//! to little, and never fill in a sensitivity questionnaire, while a small
//! engaged minority declares a handful of round-value answers.
//!
//! [`skewed_population`] generates exactly that shape, deterministically:
//! a configurable *engaged fraction* (default 10%) consents to one or two
//! services and declares 1..=[`max_engaged_fields`] sensitivities drawn
//! from the questionnaire palette {0.25, 0.5, 0.75, 1.0}; everyone else is
//! *cold* — at most one consent, no declared sensitivities. User ids are
//! the short `u{index}` form so the measured bytes-per-user reflects the
//! row encoding, not synthetic id padding.
//!
//! [`max_engaged_fields`]: SkewedPopulationConfig::max_engaged_fields

use privacy_model::{FieldId, Sensitivity, ServiceId, UserId, UserProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The questionnaire palette: the paper's four named sensitivity categories
/// mapped to their numeric anchors. Engaged users answer in these terms;
/// nobody declares a sensitivity of 0.137.
pub const SENSITIVITY_PALETTE: [f64; 4] = [0.25, 0.5, 0.75, 1.0];

/// Configuration of the skewed population generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewedPopulationConfig {
    /// Number of users to generate.
    pub count: usize,
    /// Random seed.
    pub seed: u64,
    /// The services users may consent to.
    pub services: Vec<ServiceId>,
    /// The fields engaged users may declare sensitivities about.
    pub fields: Vec<FieldId>,
    /// Fraction of the population that is *engaged* (clamped to `0.0..=1.0`).
    pub engaged_fraction: f64,
    /// Most sensitivities an engaged user declares (at least one is always
    /// declared; capped at the field count).
    pub max_engaged_fields: usize,
    /// Probability that a *cold* user holds their single consent.
    pub cold_consent_probability: f64,
}

impl Default for SkewedPopulationConfig {
    fn default() -> Self {
        SkewedPopulationConfig {
            count: 1000,
            seed: 42,
            services: Vec::new(),
            fields: Vec::new(),
            engaged_fraction: 0.1,
            max_engaged_fields: 3,
            cold_consent_probability: 0.5,
        }
    }
}

/// A generated skewed population: the profiles plus the ids of the engaged
/// minority, so a benchmark can drive its event stream at the users who
/// actually have monitoring state worth exercising.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewedPopulation {
    /// Every generated profile, cold and engaged, in index order.
    pub profiles: Vec<UserProfile>,
    /// The ids of the engaged users, in index order.
    pub engaged: Vec<UserId>,
}

/// Generates a seeded skewed population per `config`.
///
/// Deterministic for a given configuration: the same `(count, seed, …)`
/// always yields the same profiles, and prefixes agree — user `u17` is
/// identical whether the population has a thousand users or a million,
/// because each user consumes a fixed draw pattern from their own
/// per-user generator.
pub fn skewed_population(config: &SkewedPopulationConfig) -> SkewedPopulation {
    let engaged_fraction = config.engaged_fraction.clamp(0.0, 1.0);
    let max_fields = config.max_engaged_fields.clamp(1, config.fields.len().max(1));
    let mut profiles = Vec::with_capacity(config.count);
    let mut engaged = Vec::new();
    for index in 0..config.count {
        // One generator per user, keyed off (seed, index): population size
        // never shifts the draws of earlier users.
        let mut rng =
            StdRng::seed_from_u64(config.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut user = UserProfile::new(format!("u{index}"));
        let is_engaged = rng.gen_bool(engaged_fraction) && !config.fields.is_empty();
        if is_engaged {
            let consents = rng.gen_range(1..=2.min(config.services.len().max(1)));
            for _ in 0..consents {
                let service = &config.services[rng.gen_range(0..config.services.len())];
                user.consent_mut().grant(service.clone());
            }
            let declared = rng.gen_range(1..=max_fields);
            for _ in 0..declared {
                let field = &config.fields[rng.gen_range(0..config.fields.len())];
                let value = SENSITIVITY_PALETTE[rng.gen_range(0..SENSITIVITY_PALETTE.len())];
                user.sensitivities_mut().set(field.clone(), Sensitivity::clamped(value));
            }
            engaged.push(user.id().clone());
        } else if !config.services.is_empty()
            && rng.gen_bool(config.cold_consent_probability.clamp(0.0, 1.0))
        {
            let service = &config.services[rng.gen_range(0..config.services.len())];
            user.consent_mut().grant(service.clone());
        }
        profiles.push(user);
    }
    SkewedPopulation { profiles, engaged }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(count: usize, seed: u64) -> SkewedPopulationConfig {
        SkewedPopulationConfig {
            count,
            seed,
            services: vec![ServiceId::new("A"), ServiceId::new("B"), ServiceId::new("C")],
            fields: (0..8).map(|i| FieldId::new(format!("f{i}"))).collect(),
            ..SkewedPopulationConfig::default()
        }
    }

    #[test]
    fn populations_are_deterministic_and_prefix_stable() {
        let small = skewed_population(&config(500, 7));
        assert_eq!(small, skewed_population(&config(500, 7)));
        assert_ne!(small, skewed_population(&config(500, 8)));
        // Growing the population only appends: the first 500 users of the
        // 2000-user population are the 500-user population.
        let large = skewed_population(&config(2000, 7));
        assert_eq!(&large.profiles[..500], &small.profiles[..]);
    }

    #[test]
    fn the_population_is_actually_skewed() {
        let population = skewed_population(&config(5000, 3));
        assert_eq!(population.profiles.len(), 5000);
        let engaged = population.engaged.len();
        // ~10% engaged with generous slack for the Bernoulli draw.
        assert!((250..=750).contains(&engaged), "unexpected engaged count: {engaged}");
        let engaged_ids: std::collections::BTreeSet<_> =
            population.engaged.iter().map(|id| id.as_str().to_owned()).collect();
        for user in &population.profiles {
            if engaged_ids.contains(user.id().as_str()) {
                let declared = user.sensitivities().len();
                assert!((1..=3).contains(&declared), "engaged user declares 1..=3");
                assert!(!user.consent().is_empty(), "engaged users consent to something");
            } else {
                assert!(user.sensitivities().is_empty(), "cold users declare nothing");
                assert!(user.consent().len() <= 1, "cold users hold at most one consent");
            }
        }
    }

    #[test]
    fn declared_sensitivities_come_from_the_palette() {
        let population = skewed_population(&config(2000, 11));
        for user in &population.profiles {
            for (_, sensitivity) in user.sensitivities().iter() {
                assert!(
                    SENSITIVITY_PALETTE.contains(&sensitivity.value()),
                    "off-palette sensitivity: {}",
                    sensitivity.value()
                );
            }
        }
    }

    #[test]
    fn ids_are_short_and_unique() {
        let population = skewed_population(&config(100, 1));
        let ids: std::collections::BTreeSet<_> =
            population.profiles.iter().map(|u| u.id().as_str().to_owned()).collect();
        assert_eq!(ids.len(), 100);
        assert!(ids.iter().all(|id| id.starts_with('u') && id.len() <= 4));
    }
}
