//! Synthetic whole-system models (catalog + data flows + access policy).
//!
//! The LTS engine's differential tests and the scaling benchmarks need many
//! structurally diverse system models, far more than the single healthcare
//! case study of the paper. [`random_model`] generates seeded random models:
//! a catalog of actors/fields/schemas/datastores/services, one data-flow
//! diagram per service with random collect/disclose/create/read flows, and a
//! random ACL. Generation is deterministic given a seed, and every generated
//! model is valid by construction (non-empty field sets, no self-loop flows,
//! unique identifiers).

use privacy_access::{AccessControlList, AccessPolicy, FieldScope, Grant, Permission};
use privacy_dataflow::{DiagramBuilder, SystemDataFlows};
use privacy_model::{
    Actor, ActorId, Catalog, DataField, DataSchema, DatastoreDecl, DatastoreId, FieldId,
    ModelError, ServiceDecl, ServiceId,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the random system-model generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelGeneratorConfig {
    /// Number of identifying actors (a data subject is always added too).
    pub actors: usize,
    /// Number of data fields.
    pub fields: usize,
    /// Number of datastores (each with its own schema).
    pub datastores: usize,
    /// Number of services (each with its own data-flow diagram).
    pub services: usize,
    /// Number of flows per service diagram.
    pub flows_per_service: usize,
    /// Probability that a datastore is declared anonymised.
    pub anonymised_probability: f64,
    /// Probability that any given (actor, datastore) pair receives an ACL
    /// grant.
    pub grant_probability: f64,
    /// Random seed; equal seeds and configurations produce identical models.
    pub seed: u64,
}

impl Default for ModelGeneratorConfig {
    fn default() -> Self {
        ModelGeneratorConfig {
            actors: 3,
            fields: 4,
            datastores: 2,
            services: 2,
            flows_per_service: 4,
            anonymised_probability: 0.25,
            grant_probability: 0.5,
            seed: 42,
        }
    }
}

impl ModelGeneratorConfig {
    /// A configuration scaled to `actors` × `fields` with defaults elsewhere.
    pub fn scaled(actors: usize, fields: usize) -> Self {
        ModelGeneratorConfig { actors, fields, ..ModelGeneratorConfig::default() }
    }

    /// Builder-style: sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: sets the number of services and flows per service.
    pub fn with_services(mut self, services: usize, flows_per_service: usize) -> Self {
        self.services = services;
        self.flows_per_service = flows_per_service;
        self
    }

    /// A configuration whose **per-event evaluation cost** grows with
    /// `weight` (≥ 1): more actors and fields mean more candidate
    /// `(actor, field)` exposure pairs per monitored event, more flows mean
    /// wider per-event field lists, and a generous grant probability keeps
    /// the reader tables dense. Weight 1 is close to the default model;
    /// each extra weight step adds actors and fields linearly, so the
    /// pair-candidate work per event grows roughly quadratically while the
    /// state space stays small enough for the LTS generator (workers
    /// rebuild the LTS on every spawn).
    ///
    /// This is the knob the transport-crossover benchmark sweeps: it
    /// changes how much computation one shipped event buys, without
    /// changing the wire format or event count.
    pub fn heavy_evaluation(weight: usize) -> Self {
        let weight = weight.max(1);
        ModelGeneratorConfig {
            actors: 3 + 2 * weight,
            fields: 4 + 2 * weight,
            datastores: 2,
            services: 2 + weight.min(4),
            flows_per_service: 4 + weight,
            anonymised_probability: 0.25,
            grant_probability: 0.7,
            seed: 42,
        }
    }
}

/// A generated system model: the three artefacts the LTS generator consumes.
pub type GeneratedModel = (Catalog, SystemDataFlows, AccessPolicy);

/// Generates a seeded random system model.
///
/// # Errors
///
/// Returns a [`ModelError`] only if the generator itself produces an
/// inconsistent model (a bug, covered by the round-trip tests below).
pub fn random_model(config: &ModelGeneratorConfig) -> Result<GeneratedModel, ModelError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let actors = config.actors.max(1);
    let fields = config.fields.max(1);
    let datastores = config.datastores.max(1);
    let services = config.services.max(1);

    let actor_ids: Vec<ActorId> =
        (0..actors).map(|i| ActorId::new(format!("Actor{i:02}"))).collect();
    let field_ids: Vec<FieldId> =
        (0..fields).map(|i| FieldId::new(format!("Field{i:02}"))).collect();
    let store_ids: Vec<DatastoreId> =
        (0..datastores).map(|i| DatastoreId::new(format!("Store{i:02}"))).collect();

    let mut catalog = Catalog::new();
    catalog.add_actor(Actor::data_subject("Subject"))?;
    for actor in &actor_ids {
        catalog.add_actor(Actor::role(actor.clone()))?;
    }
    for (i, field) in field_ids.iter().enumerate() {
        let field = if i % 2 == 0 {
            DataField::sensitive(field.clone())
        } else {
            DataField::identifier(field.clone())
        };
        catalog.add_field(field)?;
    }
    for (i, store) in store_ids.iter().enumerate() {
        let schema_fields = random_subset(&mut rng, &field_ids);
        catalog.add_schema(DataSchema::new(format!("Schema{i:02}"), schema_fields))?;
        let decl = if rng.gen_bool(config.anonymised_probability) {
            DatastoreDecl::anonymised(store.clone(), format!("Schema{i:02}"))
        } else {
            DatastoreDecl::new(store.clone(), format!("Schema{i:02}"))
        };
        catalog.add_datastore(decl)?;
    }

    let mut system = SystemDataFlows::new();
    for s in 0..services {
        let service = ServiceId::new(format!("Service{s:02}"));
        catalog.add_service(ServiceDecl::new(service.clone(), actor_ids.clone()))?;
        let mut builder = DiagramBuilder::new(service);
        for order in 1..=config.flows_per_service.max(1) {
            let flow_fields = random_subset(&mut rng, &field_ids);
            let actor = choose(&mut rng, &actor_ids).clone();
            let order = order as u32;
            builder = match rng.gen_range(0usize..4) {
                0 => builder.collect(actor, flow_fields, "collect", order)?,
                1 if actor_ids.len() > 1 => {
                    let mut other = choose(&mut rng, &actor_ids).clone();
                    while other == actor {
                        other = choose(&mut rng, &actor_ids).clone();
                    }
                    builder.disclose(actor, other, flow_fields, "disclose", order)?
                }
                1 => builder.collect(actor, flow_fields, "collect", order)?,
                2 => {
                    let store = choose(&mut rng, &store_ids).clone();
                    builder.create(actor, store, flow_fields, "persist", order)?
                }
                _ => {
                    let store = choose(&mut rng, &store_ids).clone();
                    builder.read(actor, store, flow_fields, "process", order)?
                }
            };
        }
        system.add_diagram(builder.build())?;
    }

    let mut acl = AccessControlList::new();
    for actor in &actor_ids {
        for store in &store_ids {
            if !rng.gen_bool(config.grant_probability) {
                continue;
            }
            let grant = match rng.gen_range(0usize..3) {
                0 => Grant::read_all(actor.clone(), store.clone()),
                1 => Grant::read_write_all(actor.clone(), store.clone()),
                _ => Grant::new(
                    actor.clone(),
                    store.clone(),
                    FieldScope::fields(random_subset(&mut rng, &field_ids)),
                    [Permission::Read],
                ),
            };
            acl.grant(grant);
        }
    }
    let policy = AccessPolicy::from_parts(acl, Default::default());

    Ok((catalog, system, policy))
}

/// A uniformly chosen element of a non-empty slice.
fn choose<'a, T>(rng: &mut StdRng, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

/// A random non-empty subset (between one and all elements) of `items`.
fn random_subset<T: Clone>(rng: &mut StdRng, items: &[T]) -> Vec<T> {
    let take = rng.gen_range(1..=items.len());
    let mut picked: Vec<T> = Vec::with_capacity(take);
    let mut indices: Vec<usize> = (0..items.len()).collect();
    for _ in 0..take {
        let at = rng.gen_range(0..indices.len());
        picked.push(items[indices.swap_remove(at)].clone());
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use privacy_dataflow::FlowKind;

    #[test]
    fn heavy_evaluation_grows_per_event_work_monotonically() {
        // The candidate-pair work per event scales with actors × fields;
        // the knob must grow it strictly with weight and clamp weight 0.
        let sizes: Vec<usize> = [0, 1, 2, 4]
            .into_iter()
            .map(|weight| {
                let config = ModelGeneratorConfig::heavy_evaluation(weight);
                config.actors * config.fields
            })
            .collect();
        assert_eq!(sizes[0], sizes[1], "weight 0 clamps to 1");
        assert!(sizes[1] < sizes[2] && sizes[2] < sizes[3], "not monotone: {sizes:?}");
        // And the generated model must actually honour the shape.
        let config = ModelGeneratorConfig::heavy_evaluation(2);
        let (catalog, _, _) = random_model(&config).unwrap();
        assert_eq!(catalog.fields().count(), config.fields);
    }

    #[test]
    fn generation_is_deterministic_for_equal_seeds() {
        let config = ModelGeneratorConfig::default();
        let (cat_a, sys_a, pol_a) = random_model(&config).unwrap();
        let (cat_b, sys_b, pol_b) = random_model(&config).unwrap();
        assert_eq!(sys_a, sys_b);
        assert_eq!(pol_a, pol_b);
        assert_eq!(cat_a.state_variable_count(), cat_b.state_variable_count());
    }

    #[test]
    fn different_seeds_usually_differ() {
        let base = ModelGeneratorConfig::default();
        let (_, sys_a, _) = random_model(&base).unwrap();
        let (_, sys_b, _) = random_model(&base.clone().with_seed(43)).unwrap();
        assert_ne!(sys_a, sys_b);
    }

    #[test]
    fn models_have_the_requested_shape() {
        let config = ModelGeneratorConfig {
            actors: 4,
            fields: 5,
            datastores: 3,
            services: 2,
            flows_per_service: 6,
            ..ModelGeneratorConfig::default()
        };
        let (catalog, system, _) = random_model(&config).unwrap();
        // 4 identifying actors × 5 fields × 2 variables.
        assert_eq!(catalog.state_variable_count(), 40);
        assert_eq!(catalog.datastore_count(), 3);
        assert_eq!(system.len(), 2);
        assert_eq!(system.flow_count(), 12);
    }

    #[test]
    fn flows_are_always_classifiable_or_disclose() {
        for seed in 0..20 {
            let config = ModelGeneratorConfig::default().with_seed(seed);
            let (_, system, _) = random_model(&config).unwrap();
            for (_, flow) in system.flows() {
                assert_ne!(flow.kind_simple(), FlowKind::Unclassified);
                assert!(!flow.fields().is_empty());
            }
        }
    }

    #[test]
    fn single_actor_models_degrade_disclose_to_collect() {
        let config = ModelGeneratorConfig {
            actors: 1,
            flows_per_service: 8,
            ..ModelGeneratorConfig::default()
        };
        let (_, system, _) = random_model(&config).unwrap();
        for (_, flow) in system.flows() {
            assert_ne!(flow.kind_simple(), FlowKind::Disclose);
        }
    }
}
