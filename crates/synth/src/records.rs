//! Synthetic health-record datasets.

use privacy_model::{Dataset, Record, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The field identifiers used by the generated health records.
pub mod fields {
    use privacy_model::FieldId;

    /// The patient age in years.
    pub fn age() -> FieldId {
        FieldId::new("Age")
    }

    /// The patient height in centimetres.
    pub fn height() -> FieldId {
        FieldId::new("Height")
    }

    /// The patient weight in kilograms.
    pub fn weight() -> FieldId {
        FieldId::new("Weight")
    }

    /// The patient name (direct identifier).
    pub fn name() -> FieldId {
        FieldId::new("Name")
    }

    /// The diagnosis code (sensitive).
    pub fn diagnosis() -> FieldId {
        FieldId::new("Diagnosis")
    }
}

/// The raw (pre-anonymisation) values consistent with the six records of
/// Table I: ages inside the printed decade bands, heights inside the printed
/// 20 cm bands and the exact printed weights.
pub fn table1_raw_records() -> Dataset {
    let rows: [(i64, i64, f64); 6] = [
        (34, 185, 100.0),
        (36, 190, 102.0),
        (25, 182, 110.0),
        (28, 188, 111.0),
        (22, 170, 80.0),
        (27, 165, 110.0),
    ];
    Dataset::from_records(
        [fields::age(), fields::height(), fields::weight()],
        rows.iter().map(|(age, height, weight)| {
            Record::new().with("Age", *age).with("Height", *height).with("Weight", *weight)
        }),
    )
}

/// The six 2-anonymised records exactly as printed in Table I of the paper
/// (age and height generalised to bands, weight kept).
pub fn table1_release() -> Dataset {
    let rows: [(f64, f64, f64, f64, f64); 6] = [
        (30.0, 40.0, 180.0, 200.0, 100.0),
        (30.0, 40.0, 180.0, 200.0, 102.0),
        (20.0, 30.0, 180.0, 200.0, 110.0),
        (20.0, 30.0, 180.0, 200.0, 111.0),
        (20.0, 30.0, 160.0, 180.0, 80.0),
        (20.0, 30.0, 160.0, 180.0, 110.0),
    ];
    Dataset::from_records(
        [fields::age(), fields::height(), fields::weight()],
        rows.iter().map(|(alo, ahi, hlo, hhi, weight)| {
            Record::new()
                .with("Age", Value::interval(*alo, *ahi))
                .with("Height", Value::interval(*hlo, *hhi))
                .with("Weight", *weight)
        }),
    )
}

/// Configuration of the random health-record generator.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordGeneratorConfig {
    /// Number of records to generate.
    pub count: usize,
    /// Random seed (the same seed always produces the same dataset).
    pub seed: u64,
    /// Age range (inclusive).
    pub age_range: (i64, i64),
    /// Height range in centimetres (inclusive).
    pub height_range: (i64, i64),
    /// Weight range in kilograms (inclusive bounds of a uniform draw).
    pub weight_range: (f64, f64),
    /// Include a `Name` identifier column.
    pub include_names: bool,
    /// Include a `Diagnosis` code column drawn from this list (ignored when
    /// empty).
    pub diagnosis_codes: Vec<String>,
}

impl Default for RecordGeneratorConfig {
    fn default() -> Self {
        RecordGeneratorConfig {
            count: 100,
            seed: 42,
            age_range: (18, 90),
            height_range: (150, 200),
            weight_range: (45.0, 130.0),
            include_names: false,
            diagnosis_codes: Vec::new(),
        }
    }
}

impl RecordGeneratorConfig {
    /// A configuration producing `count` records with the default ranges.
    pub fn with_count(count: usize) -> Self {
        RecordGeneratorConfig { count, ..RecordGeneratorConfig::default() }
    }

    /// Builder-style: sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: include names and diagnosis codes, making the dataset
    /// suitable for the full healthcare case study.
    pub fn with_clinical_columns(mut self) -> Self {
        self.include_names = true;
        self.diagnosis_codes = vec![
            "hypertension".to_owned(),
            "diabetes".to_owned(),
            "asthma".to_owned(),
            "fracture".to_owned(),
            "influenza".to_owned(),
        ];
        self
    }
}

/// Generates a seeded random health-record dataset.
pub fn random_health_records(config: &RecordGeneratorConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut columns = vec![fields::age(), fields::height(), fields::weight()];
    if config.include_names {
        columns.insert(0, fields::name());
    }
    if !config.diagnosis_codes.is_empty() {
        columns.push(fields::diagnosis());
    }
    let mut dataset = Dataset::new(columns);
    for index in 0..config.count {
        let mut record = Record::new()
            .with("Age", rng.gen_range(config.age_range.0..=config.age_range.1))
            .with("Height", rng.gen_range(config.height_range.0..=config.height_range.1))
            .with("Weight", round1(rng.gen_range(config.weight_range.0..=config.weight_range.1)));
        if config.include_names {
            record.set("Name", format!("patient-{index:05}"));
        }
        if !config.diagnosis_codes.is_empty() {
            let code = &config.diagnosis_codes[rng.gen_range(0..config.diagnosis_codes.len())];
            record.set("Diagnosis", code.clone());
        }
        dataset.push(record);
    }
    dataset
}

fn round1(value: f64) -> f64 {
    (value * 10.0).round() / 10.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_release_matches_the_paper_rows() {
        let release = table1_release();
        assert_eq!(release.len(), 6);
        let first = release.get(0).unwrap();
        assert_eq!(first.get(&fields::age()), Some(&Value::interval(30.0, 40.0)));
        assert_eq!(first.get(&fields::height()), Some(&Value::interval(180.0, 200.0)));
        assert_eq!(first.get(&fields::weight()), Some(&Value::Float(100.0)));
        let last = release.get(5).unwrap();
        assert_eq!(last.get(&fields::weight()), Some(&Value::Float(110.0)));
        assert_eq!(last.get(&fields::height()), Some(&Value::interval(160.0, 180.0)));
    }

    #[test]
    fn raw_records_fall_inside_the_released_bands() {
        let raw = table1_raw_records();
        let release = table1_release();
        for (raw_record, released) in raw.iter().zip(release.iter()) {
            for field in [fields::age(), fields::height()] {
                let band = released.get(&field).unwrap();
                let value = raw_record.get(&field).unwrap();
                assert!(band.covers(value), "{value} not inside {band}");
            }
            assert_eq!(raw_record.get(&fields::weight()), released.get(&fields::weight()));
        }
    }

    #[test]
    fn random_records_are_deterministic_per_seed() {
        let config = RecordGeneratorConfig::with_count(50).with_seed(7);
        let a = random_health_records(&config);
        let b = random_health_records(&config);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);

        let c = random_health_records(&RecordGeneratorConfig::with_count(50).with_seed(8));
        assert_ne!(a, c);
    }

    #[test]
    fn generated_values_respect_the_configured_ranges() {
        let config = RecordGeneratorConfig {
            count: 200,
            age_range: (20, 30),
            height_range: (160, 170),
            weight_range: (60.0, 70.0),
            ..RecordGeneratorConfig::default()
        };
        let data = random_health_records(&config);
        for record in data.iter() {
            let age = record.get(&fields::age()).unwrap().as_f64().unwrap();
            assert!((20.0..=30.0).contains(&age));
            let height = record.get(&fields::height()).unwrap().as_f64().unwrap();
            assert!((160.0..=170.0).contains(&height));
            let weight = record.get(&fields::weight()).unwrap().as_f64().unwrap();
            assert!((60.0..=70.0).contains(&weight));
        }
    }

    #[test]
    fn clinical_columns_add_names_and_diagnoses() {
        let config = RecordGeneratorConfig::with_count(10).with_clinical_columns();
        let data = random_health_records(&config);
        assert!(data.columns().contains(&fields::name()));
        assert!(data.columns().contains(&fields::diagnosis()));
        for record in data.iter() {
            assert!(record.get(&fields::name()).is_some());
            let diagnosis = record.get(&fields::diagnosis()).unwrap().as_text().unwrap();
            assert!(config.diagnosis_codes.contains(&diagnosis.to_owned()));
        }
        // Names are unique.
        let names: std::collections::BTreeSet<String> =
            data.iter().map(|r| r.get(&fields::name()).unwrap().to_string()).collect();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn validation_passes_for_generated_datasets() {
        assert!(table1_release().validate().is_ok());
        assert!(table1_raw_records().validate().is_ok());
        let data = random_health_records(&RecordGeneratorConfig::default());
        assert!(data.validate().is_ok());
    }
}
