//! Synthetic log emission: render an [`EventLog`] in real wire formats.
//!
//! A production privacy monitor ingests logs that already exist — JSON
//! lines, logfmt, CSV — rather than in-process [`Event`] values. This module
//! renders an event log back out in each of those formats, which gives the
//! ingestion layer (`privacy-ingest`) its round-trip oracle: for any
//! synthetic stream, *render → parse* must reproduce the original events
//! bit-identically.
//!
//! ## Canonical record schema
//!
//! Every rendered record carries the same eight logical columns:
//!
//! | key         | value                                                      |
//! |-------------|------------------------------------------------------------|
//! | `seq`       | the event's sequence number, decimal                       |
//! | `user`      | the data subject's id                                      |
//! | `service`   | the executing service's id                                 |
//! | `actor`     | the acting actor's id                                      |
//! | `action`    | `collect`/`create`/`read`/`disclose`/`anon`/`delete`       |
//! | `fields`    | the involved field ids (JSON: array; logfmt/CSV: `;` list) |
//! | `store`     | the datastore id (omitted / empty when none)               |
//! | `permitted` | `true` or `false`                                          |
//!
//! In logfmt and CSV the multi-valued `fields` column is a single cell whose
//! elements are joined with `;`; a literal `;` or `\` inside an element is
//! escaped as `\;` / `\\`, so arbitrary field ids survive the round trip. An
//! empty cell means "no fields".

use privacy_runtime::{Event, EventLog};
use std::fmt;
use std::fmt::Write as _;

/// The wire formats the emitter can render (and the ingestion layer parses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogFormat {
    /// One JSON object per line (NDJSON).
    Json,
    /// One logfmt `key=value ...` record per line.
    Logfmt,
    /// RFC 4180 CSV with a leading header row.
    Csv,
}

impl LogFormat {
    /// All wire formats.
    pub const ALL: [LogFormat; 3] = [LogFormat::Json, LogFormat::Logfmt, LogFormat::Csv];

    /// The lowercase format name (`json`, `logfmt`, `csv`).
    pub fn as_str(self) -> &'static str {
        match self {
            LogFormat::Json => "json",
            LogFormat::Logfmt => "logfmt",
            LogFormat::Csv => "csv",
        }
    }
}

impl fmt::Display for LogFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The CSV header row the emitter writes (no trailing newline).
pub const CSV_HEADER: &str = "seq,user,service,actor,action,fields,store,permitted";

/// Renders one event as one line of `format` (no trailing newline).
///
/// Note a CSV line is only meaningful under the [`CSV_HEADER`] column order;
/// [`render_log`] emits the header for you.
pub fn render_event(event: &Event, format: LogFormat) -> String {
    match format {
        LogFormat::Json => render_json(event),
        LogFormat::Logfmt => render_logfmt(event),
        LogFormat::Csv => render_csv(event),
    }
}

/// Renders a slice of events as `format` text, one record per line, each
/// line newline-terminated. CSV output starts with the header row.
pub fn render_events(events: &[Event], format: LogFormat) -> String {
    let mut out = String::new();
    if format == LogFormat::Csv {
        out.push_str(CSV_HEADER);
        out.push('\n');
    }
    for event in events {
        out.push_str(&render_event(event, format));
        out.push('\n');
    }
    out
}

/// Renders a whole event log as `format` text (see [`render_events`]).
pub fn render_log(log: &EventLog, format: LogFormat) -> String {
    render_events(log.events(), format)
}

fn render_json(event: &Event) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"seq\":{}", event.sequence());
    let _ = write!(out, ",\"user\":{}", json_string(event.user().as_str()));
    let _ = write!(out, ",\"service\":{}", json_string(event.service().as_str()));
    let _ = write!(out, ",\"actor\":{}", json_string(event.actor().as_str()));
    let _ = write!(out, ",\"action\":{}", json_string(&event.action().to_string()));
    out.push_str(",\"fields\":[");
    for (i, field) in event.fields().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(field.as_str()));
    }
    out.push(']');
    if let Some(store) = event.datastore() {
        let _ = write!(out, ",\"store\":{}", json_string(store.as_str()));
    }
    let _ = write!(out, ",\"permitted\":{}}}", event.permitted());
    out
}

fn render_logfmt(event: &Event) -> String {
    let mut out = String::new();
    let _ = write!(out, "seq={}", event.sequence());
    let _ = write!(out, " user={}", logfmt_value(event.user().as_str()));
    let _ = write!(out, " service={}", logfmt_value(event.service().as_str()));
    let _ = write!(out, " actor={}", logfmt_value(event.actor().as_str()));
    let _ = write!(out, " action={}", event.action());
    let fields = join_list(event.fields().iter().map(|f| f.as_str()));
    let _ = write!(out, " fields={}", logfmt_value(&fields));
    if let Some(store) = event.datastore() {
        let _ = write!(out, " store={}", logfmt_value(store.as_str()));
    }
    let _ = write!(out, " permitted={}", event.permitted());
    out
}

fn render_csv(event: &Event) -> String {
    let fields = join_list(event.fields().iter().map(|f| f.as_str()));
    let store = event.datastore().map(|s| s.as_str()).unwrap_or("");
    [
        event.sequence().to_string(),
        csv_cell(event.user().as_str()),
        csv_cell(event.service().as_str()),
        csv_cell(event.actor().as_str()),
        event.action().to_string(),
        csv_cell(&fields),
        csv_cell(store),
        event.permitted().to_string(),
    ]
    .join(",")
}

/// Joins list elements with `;`, escaping literal `\` and `;` inside an
/// element as `\\` and `\;`.
fn join_list<'a>(elements: impl Iterator<Item = &'a str>) -> String {
    let mut out = String::new();
    for (i, element) in elements.enumerate() {
        if i > 0 {
            out.push(';');
        }
        for ch in element.chars() {
            if ch == '\\' || ch == ';' {
                out.push('\\');
            }
            out.push(ch);
        }
    }
    out
}

/// A JSON string literal, quotes included.
fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A logfmt value, quoted only when it has to be (empty, or contains a
/// space, quote, backslash, `=` or control character).
fn logfmt_value(value: &str) -> String {
    let needs_quoting = value.is_empty()
        || value.chars().any(|c| c == ' ' || c == '"' || c == '\\' || c == '=' || c.is_control());
    if !needs_quoting {
        return value.to_owned();
    }
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An RFC 4180 CSV cell: quoted when it contains a comma, quote or line
/// break, with embedded quotes doubled.
fn csv_cell(value: &str) -> String {
    if !value.contains(',')
        && !value.contains('"')
        && !value.contains('\n')
        && !value.contains('\r')
    {
        return value.to_owned();
    }
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for ch in value.chars() {
        if ch == '"' {
            out.push('"');
        }
        out.push(ch);
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use privacy_model::{DatastoreId, FieldId};
    use privacy_runtime::Event;

    fn sample() -> Event {
        Event::new(
            7,
            "alice",
            "MedicalService",
            "Doctor",
            privacy_lts::ActionKind::Read,
            [FieldId::new("Diagnosis"), FieldId::new("Name")],
            Some(DatastoreId::new("EHR")),
            true,
        )
    }

    #[test]
    fn json_lines_carry_every_column() {
        let line = render_event(&sample(), LogFormat::Json);
        assert!(line.starts_with("{\"seq\":7,"));
        assert!(line.contains("\"user\":\"alice\""));
        assert!(line.contains("\"action\":\"read\""));
        assert!(line.contains("\"fields\":[\"Diagnosis\",\"Name\"]"));
        assert!(line.contains("\"store\":\"EHR\""));
        assert!(line.ends_with("\"permitted\":true}"));
    }

    #[test]
    fn logfmt_quotes_only_when_needed() {
        let line = render_event(&sample(), LogFormat::Logfmt);
        assert_eq!(
            line,
            "seq=7 user=alice service=MedicalService actor=Doctor action=read \
             fields=Diagnosis;Name store=EHR permitted=true"
        );
        assert_eq!(logfmt_value("has space"), "\"has space\"");
        assert_eq!(logfmt_value("a=b"), "\"a=b\"");
        assert_eq!(logfmt_value(""), "\"\"");
        assert_eq!(logfmt_value("plain"), "plain");
    }

    #[test]
    fn csv_rows_follow_the_header_and_quote_specials() {
        let text = render_events(&[sample()], LogFormat::Csv);
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some(CSV_HEADER));
        assert_eq!(
            lines.next(),
            Some("7,alice,MedicalService,Doctor,read,Diagnosis;Name,EHR,true")
        );
        assert_eq!(csv_cell("a,b"), "\"a,b\"");
        assert_eq!(csv_cell("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn list_elements_escape_the_separator() {
        assert_eq!(join_list(["a;b", "c\\d"].into_iter()), "a\\;b;c\\\\d");
        assert_eq!(join_list(std::iter::empty()), "");
    }

    #[test]
    fn json_strings_escape_controls() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
