//! # privacy-synth
//!
//! Synthetic data and workload generation.
//!
//! The paper evaluates its method on a doctors'-surgery case study with
//! health records and profiled users. Real patient data and real user
//! questionnaires are obviously unavailable, so this crate generates the
//! closest synthetic equivalents (the substitution is documented in
//! DESIGN.md):
//!
//! * [`records`] — health-record datasets: the exact six records behind
//!   Table I plus seeded random populations with controllable distributions
//!   for the scaling benchmarks;
//! * [`profiles`] — user sensitivity profiles and consent assignments (the
//!   Case Study A profile plus random populations of users);
//! * [`workload`] — sequences of service executions used to drive the
//!   runtime simulator;
//! * [`models`] — random whole-system models (catalog, data flows, access
//!   policy) for the LTS engine's differential tests and scaling benches;
//! * [`population`] — skewed large populations (a small engaged minority,
//!   a cold majority) for the snapshot-footprint benchmarks;
//! * [`logs`] — renders an event log back out in real wire formats (JSON
//!   lines, logfmt, CSV): the synthetic-log emitter behind the
//!   `privacy-ingest` round-trip differential tests.
//!
//! All generators are deterministic given a seed so experiments are
//! reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod logs;
pub mod models;
pub mod population;
pub mod profiles;
pub mod records;
pub mod workload;

pub use logs::{render_event, render_events, render_log, LogFormat, CSV_HEADER};
pub use models::{random_model, GeneratedModel, ModelGeneratorConfig};
pub use population::{
    skewed_population, SkewedPopulation, SkewedPopulationConfig, SENSITIVITY_PALETTE,
};
pub use profiles::{case_a_profile, random_profiles, ProfileGeneratorConfig};
pub use records::{
    random_health_records, table1_raw_records, table1_release, RecordGeneratorConfig,
};
pub use workload::{random_workload, ServiceRequest, WorkloadConfig};

/// Convenience re-export of the most commonly used items.
pub mod prelude {
    pub use crate::logs::{render_event, render_events, render_log, LogFormat, CSV_HEADER};
    pub use crate::models::{random_model, GeneratedModel, ModelGeneratorConfig};
    pub use crate::population::{
        skewed_population, SkewedPopulation, SkewedPopulationConfig, SENSITIVITY_PALETTE,
    };
    pub use crate::profiles::{case_a_profile, random_profiles, ProfileGeneratorConfig};
    pub use crate::records::{
        random_health_records, table1_raw_records, table1_release, RecordGeneratorConfig,
    };
    pub use crate::workload::{random_workload, ServiceRequest, WorkloadConfig};
}
