//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to a crate registry, so this vendored
//! shim provides the subset of `crossbeam::channel` the workspace uses: an
//! unbounded multi-producer **multi-consumer** channel (std's `mpsc` receiver
//! is single-consumer, so the queue here is a mutex-protected `VecDeque` with
//! a condvar for blocking receives). Senders and receivers are cloneable and
//! the channel disconnects when either side is fully dropped, exactly the
//! behaviour `run_concurrent_workload` relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel {
    //! A crossbeam-channel–compatible unbounded MPMC channel.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half of a channel; cheap to clone.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel; cheap to clone (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded channel, returning its two halves.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State { items: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, State<T>> {
        shared.queue.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = lock(&self.shared);
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut state = lock(&self.shared);
                state.senders -= 1;
                state.senders
            };
            if remaining == 0 {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value is available or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = lock(&self.shared);
            loop {
                if let Some(value) = state.items.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state =
                    self.shared.ready.wait(state).unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }

        /// Returns an iterator yielding values until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            lock(&self.shared).receivers -= 1;
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn values_round_trip_in_order_single_threaded() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            assert_eq!(rx.iter().collect::<Vec<_>>(), vec![1, 2]);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cloned_receivers_share_the_queue_without_duplication() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: usize = thread::scope(|scope| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        let rx = rx.clone();
                        scope.spawn(move || rx.iter().count())
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            });
            assert_eq!(total, 100);
        }

        #[test]
        fn send_fails_once_all_receivers_are_gone() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }
    }
}
