//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to a crate registry, so this vendored
//! shim provides the subset of `crossbeam` the workspace uses:
//!
//! * [`channel`] — an unbounded multi-producer **multi-consumer** channel
//!   (std's `mpsc` receiver is single-consumer, so the queue here is a
//!   mutex-protected `VecDeque` with a condvar for blocking receives).
//!   Senders and receivers are cloneable and the channel disconnects when
//!   either side is fully dropped, exactly the behaviour
//!   `run_concurrent_workload` relies on.
//! * [`thread`] — crossbeam-style scoped threads (`thread::scope` returning a
//!   `Result` instead of propagating panics), layered over
//!   `std::thread::scope`. The parallel LTS generation engine fans its
//!   frontier out over these.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod thread {
    //! Crossbeam-compatible scoped threads.
    //!
    //! [`scope`] mirrors `crossbeam::thread::scope`: spawned threads may
    //! borrow from the enclosing stack frame, every thread is joined before
    //! `scope` returns, and a panic in any spawned thread surfaces as an
    //! `Err` from `scope` rather than unwinding through the caller.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// The result type of [`scope`]: `Err` carries the payload of a panicking
    /// spawned thread.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle that can spawn borrowing threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result (`Err` if it
        /// panicked).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives the
        /// scope again so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Creates a scope for spawning borrowing threads; all spawned threads
    /// are joined before this returns.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the panic payload if the closure or any
    /// not-explicitly-joined spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope { inner: s }))))
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1usize, 2, 3, 4];
            let total = AtomicUsize::new(0);
            let result = scope(|s| {
                let handles: Vec<_> =
                    data.chunks(2).map(|chunk| s.spawn(|_| chunk.iter().sum::<usize>())).collect();
                for handle in handles {
                    total.fetch_add(handle.join().unwrap(), Ordering::SeqCst);
                }
            });
            assert!(result.is_ok());
            assert_eq!(total.load(Ordering::SeqCst), 10);
        }

        #[test]
        fn nested_spawns_via_the_rehanded_scope() {
            let result = scope(|s| {
                s.spawn(|inner| inner.spawn(|_| 21usize).join().unwrap() * 2).join().unwrap()
            });
            assert_eq!(result.unwrap(), 42);
        }

        #[test]
        fn panics_surface_as_err_not_unwind() {
            let result = scope(|s| {
                s.spawn::<_, ()>(|_| panic!("worker exploded"));
            });
            assert!(result.is_err());
        }
    }
}

pub mod channel {
    //! A crossbeam-channel–compatible unbounded MPMC channel.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half of a channel; cheap to clone.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel; cheap to clone (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded channel, returning its two halves.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State { items: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, State<T>> {
        shared.queue.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = lock(&self.shared);
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut state = lock(&self.shared);
                state.senders -= 1;
                state.senders
            };
            if remaining == 0 {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value is available or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = lock(&self.shared);
            loop {
                if let Some(value) = state.items.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state =
                    self.shared.ready.wait(state).unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }

        /// Returns an iterator yielding values until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            lock(&self.shared).receivers -= 1;
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn values_round_trip_in_order_single_threaded() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            assert_eq!(rx.iter().collect::<Vec<_>>(), vec![1, 2]);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cloned_receivers_share_the_queue_without_duplication() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: usize = thread::scope(|scope| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        let rx = rx.clone();
                        scope.spawn(move || rx.iter().count())
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            });
            assert_eq!(total, 100);
        }

        #[test]
        fn send_fails_once_all_receivers_are_gone() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }
    }
}
