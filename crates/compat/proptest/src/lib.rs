//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to a crate registry, so this vendored
//! shim implements the subset of proptest this workspace's property tests
//! use: the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! header), numeric range strategies, tuple strategies, [`collection::vec`],
//! [`bool::ANY`], and the [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assert_ne!`] macros.
//!
//! Design differences from real proptest, deliberately accepted:
//!
//! * no shrinking — a failing case reports its inputs' case number but is not
//!   minimised;
//! * sampling is plain uniform (no bias towards boundary values);
//! * the RNG seed is fixed per test (derived from the test name), so runs are
//!   fully deterministic rather than seeded from the environment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runtime configuration of a `proptest!` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Returns the default configuration with `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The random generator handed to strategies.
pub type TestRng = StdRng;

/// Error produced by a failing `prop_assert*` inside a test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Drives the cases of one property test.
#[derive(Debug)]
pub struct TestRunner {
    cases: u32,
    rng: TestRng,
}

impl TestRunner {
    /// Creates a runner for the named test: deterministic, but with a
    /// per-test RNG stream so sibling tests don't see identical samples.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |hash, byte| {
            (hash ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3)
        });
        TestRunner { cases: config.cases, rng: TestRng::seed_from_u64(seed) }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The generator strategies sample from.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, i64, i32, f64, f32);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
}

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy producing `true` or `false` with equal probability.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Bounds on the length of a generated collection.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange { min: exact, max: exact }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty collection size range");
            SizeRange { min: range.start, max: range.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            assert!(range.start() <= range.end(), "empty collection size range");
            SizeRange { min: *range.start(), max: *range.end() }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy for vectors whose length lies in `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }` item
/// becomes a `#[test]` that runs `body` against `cases` random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut runner = $crate::TestRunner::new(config, stringify!($name));
            let strategies = ($($strategy,)+);
            for case in 0..runner.cases() {
                let ($($arg,)+) = $crate::Strategy::new_value(&strategies, runner.rng());
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(error) = outcome {
                    ::std::panic!(
                        "property `{}` failed at case {} of {}: {}",
                        stringify!($name),
                        case + 1,
                        runner.cases(),
                        error
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Like `assert!`, but fails only the current proptest case (by returning a
/// [`TestCaseError`] from the enclosing case closure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Like `assert_ne!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

pub mod prelude {
    //! The glob-importable API surface, mirroring `proptest::prelude`.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -4i64..=4, z in 0.5f64..1.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.5..1.5).contains(&z));
        }

        #[test]
        fn vec_lengths_respect_the_size_range(
            items in crate::collection::vec((0usize..3, crate::bool::ANY), 2..6),
        ) {
            prop_assert!((2..6).contains(&items.len()));
            for (n, _flag) in items {
                prop_assert!(n < 3);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]

        #[test]
        fn configured_case_count_is_used(_x in 0usize..1) {
            // Body intentionally trivial; the case count is asserted below by
            // construction (the runner loops `cases` times).
            prop_assert_eq!(_x, 0);
        }
    }

    #[test]
    fn prop_assert_failures_name_the_case() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                fn always_fails(x in 0usize..1) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("always_fails"), "unexpected panic: {message}");
        assert!(message.contains("x was 0"), "unexpected panic: {message}");
    }
}
