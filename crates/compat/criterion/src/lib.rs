//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to a crate registry, so this vendored
//! shim provides the subset of Criterion's API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros — backed by a
//! deliberately simple measurement loop (median of wall-clock samples, no
//! outlier analysis, no HTML reports).
//!
//! Behavioural notes:
//!
//! * `cargo bench` runs each benchmark for up to `sample_size` samples or the
//!   group's `measurement_time`, whichever is hit first, and prints
//!   `<name> ... median <t> (<n> samples)`.
//! * `cargo test` passes `--test` to `harness = false` bench binaries; in
//!   that mode every benchmark body runs **once** as a smoke test.
//! * A single positional CLI argument is treated as a substring filter over
//!   benchmark names, like real Criterion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of a parameterised benchmark: a function name plus a parameter
/// rendered with `Display`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-iteration timing loop handed to benchmark closures.
pub struct Bencher<'a> {
    mode: Mode,
    samples: &'a mut Vec<Duration>,
    budget: Duration,
    sample_size: usize,
}

impl Bencher<'_> {
    /// Calls `routine` repeatedly, recording one wall-clock sample per call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.mode == Mode::Test {
            black_box(routine());
            return;
        }
        // One untimed warm-up call, then timed samples.
        black_box(routine());
        let started = Instant::now();
        while self.samples.len() < self.sample_size && started.elapsed() < self.budget {
            let sample = Instant::now();
            black_box(routine());
            self.samples.push(sample.elapsed());
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full measurement (`cargo bench`).
    Bench,
    /// Run every body once (`cargo test` on a `harness = false` bench).
    Test,
}

/// Entry point: owns the CLI configuration shared by every group.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { mode: Mode::Bench, filter: None }
    }
}

impl Criterion {
    /// Applies the harness CLI arguments (`--test`, a name filter); flags the
    /// shim does not model (`--bench`, `--save-baseline`, …) are ignored.
    pub fn configure_from_args(self) -> Self {
        self.configure_from(std::env::args().skip(1))
    }

    fn configure_from(mut self, mut args: impl Iterator<Item = String>) -> Self {
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.mode = Mode::Test,
                "--save-baseline"
                | "--baseline"
                | "--load-baseline"
                | "--measurement-time"
                | "--warm-up-time"
                | "--sample-size"
                | "--profile-time"
                | "--output-format"
                | "--color"
                | "--plotting-backend"
                | "--sampling-mode"
                | "--significance-level"
                | "--noise-threshold"
                | "--confidence-level"
                | "--nresamples" => {
                    args.next();
                }
                // `--flag=value` forms carry their value with them; bare
                // unknown flags are assumed boolean. Anything else would leak
                // a flag's value into the name filter and silently skip every
                // benchmark.
                flag if flag.starts_with('-') => {}
                name => self.filter = Some(name.to_string()),
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function(
        &mut self,
        name: impl fmt::Display,
        routine: impl FnMut(&mut Bencher<'_>),
    ) -> &mut Self {
        let name = name.to_string();
        self.benchmark_group(name.clone()).run(&name, 100, Duration::from_secs(5), routine);
        self
    }

    /// Prints the closing summary (a no-op in the shim; kept for API parity).
    pub fn final_summary(&self) {}
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Sets the warm-up budget. The shim always does exactly one warm-up
    /// call, so this only exists for API parity.
    pub fn warm_up_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        routine: impl FnMut(&mut Bencher<'_>),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id);
        self.run(&id, self.sample_size, self.measurement_time, routine);
        self
    }

    /// Benchmarks `routine` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: impl FnMut(&mut Bencher<'_>, &I),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id);
        self.run(&id, self.sample_size, self.measurement_time, |b| routine(b, input));
        self
    }

    /// Ends the group (a no-op in the shim; kept for API parity).
    pub fn finish(self) {}

    fn run(
        &self,
        id: &str,
        sample_size: usize,
        budget: Duration,
        mut routine: impl FnMut(&mut Bencher<'_>),
    ) {
        if let Some(filter) = &self.criterion.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut samples = Vec::new();
        let mut bencher =
            Bencher { mode: self.criterion.mode, samples: &mut samples, budget, sample_size };
        routine(&mut bencher);
        match self.criterion.mode {
            Mode::Test => println!("{id} ... ok (ran once in test mode)"),
            Mode::Bench => {
                samples.sort_unstable();
                let median = samples.get(samples.len() / 2).copied().unwrap_or_default();
                println!("{id} ... median {median:?} ({} samples)", samples.len());
            }
        }
    }
}

/// Declares a function that runs the listed benchmark targets with a shared
/// [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declares `main` for a `harness = false` benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples_in_bench_mode() {
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            mode: Mode::Bench,
            samples: &mut samples,
            budget: Duration::from_millis(50),
            sample_size: 5,
        };
        let mut runs = 0usize;
        bencher.iter(|| runs += 1);
        assert_eq!(samples.len(), 5);
        assert_eq!(runs, 6, "one warm-up call plus five samples");
    }

    #[test]
    fn bencher_runs_once_in_test_mode() {
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            mode: Mode::Test,
            samples: &mut samples,
            budget: Duration::from_secs(1),
            sample_size: 100,
        };
        let mut runs = 0usize;
        bencher.iter(|| runs += 1);
        assert_eq!(runs, 1);
        assert!(samples.is_empty());
    }

    #[test]
    fn value_taking_flags_do_not_leak_into_the_name_filter() {
        let args = ["--profile-time", "10", "--output-format", "bencher"];
        let criterion = Criterion::default().configure_from(args.iter().map(|s| s.to_string()));
        assert_eq!(criterion.filter, None);
        assert_eq!(criterion.mode, Mode::Bench);

        let args = ["--test", "--color=always", "generate"];
        let criterion = Criterion::default().configure_from(args.iter().map(|s| s.to_string()));
        assert_eq!(criterion.filter.as_deref(), Some("generate"));
        assert_eq!(criterion.mode, Mode::Test);
    }

    #[test]
    fn benchmark_ids_render_name_and_parameter() {
        assert_eq!(BenchmarkId::new("generate", "4a_8f").to_string(), "generate/4a_8f");
        assert_eq!(BenchmarkId::from_parameter(100).to_string(), "100");
    }
}
