//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to a crate registry, so this tiny
//! vendored shim provides the subset of `parking_lot` the workspace actually
//! uses — a [`Mutex`] and an [`RwLock`] whose locking methods return guards
//! directly (no poisoning `Result`) — implemented on top of their
//! [`std::sync`] counterparts. Poisoned locks are recovered transparently,
//! matching `parking_lot`'s "no poisoning" semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive with `parking_lot`-style ergonomics:
/// `lock()` returns the guard directly and never exposes poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    ///
    /// Unlike [`std::sync::Mutex::lock`] this never returns a poisoning
    /// error: if a previous holder panicked the value is handed out as-is.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner()) }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`]; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock with `parking_lot`-style ergonomics: `read()` /
/// `write()` return guards directly and never expose poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|poisoned| poisoned.into_inner()),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|poisoned| poisoned.into_inner()),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`RwLock::read`]; releases the shared lock on drop.
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII guard returned by [`RwLock::write`]; releases the exclusive lock on
/// drop.
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_readers_share_and_writers_exclude() {
        let lock = RwLock::new(10usize);
        {
            let a = lock.read();
            let b = lock.read();
            assert_eq!((*a, *b), (10, 10));
        }
        *lock.write() += 32;
        assert_eq!(lock.into_inner(), 42);
    }

    #[test]
    fn rwlock_contended_writes_are_not_lost() {
        let counter = Arc::new(RwLock::new(0usize));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    for _ in 0..50 {
                        *counter.write() += 1;
                    }
                });
            }
        });
        assert_eq!(*counter.read(), 200);
    }

    #[test]
    fn lock_and_into_inner_round_trip() {
        let mutex = Mutex::new(1usize);
        *mutex.lock() += 41;
        assert_eq!(mutex.into_inner(), 42);
    }

    #[test]
    fn contended_increments_are_not_lost() {
        let counter = Arc::new(Mutex::new(0usize));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    for _ in 0..100 {
                        *counter.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*counter.lock(), 800);
    }
}
