//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crate registry, so this vendored
//! shim provides the subset of `rand` 0.8's API the workspace uses:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and the [`Rng`] extension
//! trait with `gen_range` (over half-open and inclusive integer / float
//! ranges) and `gen_bool`. The generator is splitmix64 — statistically fine
//! for synthetic-workload generation, deliberately **not** cryptographic.
//!
//! Determinism matters more than distribution quality here: the synthetic
//! record/profile/workload generators promise "same seed, same output", which
//! this shim honours (within this workspace; the streams differ from the real
//! `rand::rngs::StdRng`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: the only primitive is `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty (e.g. `5..5` or `2.0..1.0`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability must be in [0, 1], got {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 significant bits, the float equivalent of `bits / 2^64`.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, bound)` via Lemire-style multiply-shift (the mild
/// modulo bias is irrelevant at the workspace's sample sizes, but the
/// multiply keeps the hot path branch-free).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = end.abs_diff(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, i64, i32);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                let value = self.start + unit * (self.end - self.start);
                // `unit < 1`, but the multiply-add can still round up to
                // exactly `end`; the half-open contract excludes it.
                if value < self.end {
                    value
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                // For floats the closed upper bound is a measure-zero
                // distinction; sample the half-open range and clamp.
                let unit = unit_f64(rng.next_u64()) as $t;
                (start + unit * (end - start)).clamp(start, end)
            }
        }
    )*};
}

impl_float_sample_range!(f64, f32);

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (splitmix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea & Flood): one 64-bit state word, full
            // period, passes BigCrush when used as a stream like this.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&g));
        }
    }

    #[test]
    fn half_open_float_range_never_returns_the_upper_bound() {
        // An RNG pinned at u64::MAX makes `unit` as close to 1 as possible;
        // at magnitudes where the bound's ULP exceeds the gap, the
        // multiply-add would round to exactly `end` without the clamp.
        struct Max;
        impl super::RngCore for Max {
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let mut rng = Max;
        let (start, end) = (1.0e16, 1.0e16 + 2.0);
        let value = rng.gen_range(start..end);
        assert!((start..end).contains(&value), "{value} escaped [{start}, {end})");
    }

    #[test]
    fn gen_range_covers_every_value_of_a_small_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_the_requested_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits} hits for p=0.3");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
