//! Differential property tests: the indexed disclosure analysis against the
//! retained scan-path analysis, over seeded random `privacy-synth` system
//! models and user populations.
//!
//! The indexed strategy must agree with the scan strategy on everything:
//! identical reports (findings, violation sets, risk levels, exposed-state
//! counts, annotated-transition lists) *and* — for the mutating entry
//! points — identical annotated LTSs, including the ids and labels of the
//! potential-read risk transitions both paths add.

use privacy_lts::{generate_lts, GeneratorConfig};
use privacy_model::{FieldId, ServiceId, UserProfile};
use privacy_risk::{DisclosureAnalysis, DisclosureReport};
use privacy_synth::{random_model, random_profiles, ModelGeneratorConfig, ProfileGeneratorConfig};
use proptest::prelude::*;

/// A seeded user population matched to the generated model's vocabulary.
fn population(catalog: &privacy_model::Catalog, seed: u64, count: usize) -> Vec<UserProfile> {
    let services: Vec<ServiceId> = catalog.services().map(|s| s.id().clone()).collect();
    let fields: Vec<FieldId> = catalog.fields().map(|f| f.id().clone()).collect();
    random_profiles(&ProfileGeneratorConfig {
        count,
        seed,
        services,
        consent_probability: 0.5,
        fields,
        sensitivity_probability: 0.6,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn indexed_analyse_equals_scan_analyse_on_random_models(
        seed in 0u64..1_000_000,
        profile_seed in 0u64..1_000_000,
        actors in 1usize..5,
        fields in 1usize..5,
        potential_reads in proptest::bool::ANY,
    ) {
        let model_config = ModelGeneratorConfig {
            actors,
            fields,
            seed,
            ..ModelGeneratorConfig::default()
        };
        let (catalog, system, policy) =
            random_model(&model_config).expect("generated model is valid");
        let mut config = GeneratorConfig::default().with_max_states(20_000);
        config.explore_potential_reads = potential_reads;
        let lts =
            generate_lts(&catalog, &system, &policy, &config).expect("generation in bounds");

        let analysis = DisclosureAnalysis::new(&catalog, &policy);
        for user in population(&catalog, profile_seed, 3) {
            // Mutating strategies: reports and annotated LTSs must match.
            let mut indexed_lts = lts.clone();
            let mut scan_lts = lts.clone();
            let indexed = analysis.analyse(&mut indexed_lts, &user);
            let scanned = analysis.analyse_scan(&mut scan_lts, &user);
            prop_assert_eq!(&indexed, &scanned);
            prop_assert_eq!(&indexed_lts, &scan_lts);

            // Read-only strategies agree with each other and never mutate.
            let index = privacy_lts::LtsIndex::build(&lts);
            let probe_lts = lts.clone();
            let assessed = analysis.assess(&index, &user);
            let assessed_scan = analysis.assess_scan(&probe_lts, &user);
            prop_assert_eq!(&assessed, &assessed_scan);
            prop_assert_eq!(&probe_lts, &lts);

            // The read-only view agrees with the mutating analysis on every
            // risk dimension.
            prop_assert_eq!(assessed.len(), indexed.len());
            for (a, b) in assessed.findings().iter().zip(indexed.findings()) {
                prop_assert_eq!(a.actor(), b.actor());
                prop_assert_eq!(a.field(), b.field());
                prop_assert_eq!(a.datastore(), b.datastore());
                prop_assert_eq!(a.level(), b.level());
                prop_assert_eq!(a.severity(), b.severity());
                prop_assert_eq!(a.likelihood(), b.likelihood());
                prop_assert_eq!(a.exposed_states(), b.exposed_states());
            }
        }
    }

    #[test]
    fn batch_assessment_equals_per_user_scan_assessment(
        seed in 0u64..1_000_000,
        profile_seed in 0u64..1_000_000,
        threads in 1usize..5,
    ) {
        let (catalog, system, policy) =
            random_model(&ModelGeneratorConfig::default().with_seed(seed))
                .expect("generated model is valid");
        let config = GeneratorConfig::default().with_max_states(20_000);
        let lts =
            generate_lts(&catalog, &system, &policy, &config).expect("generation in bounds");
        let index = privacy_lts::LtsIndex::build(&lts);
        let analysis = DisclosureAnalysis::new(&catalog, &policy);

        let users = population(&catalog, profile_seed, 6);
        let batch = analysis.analyse_users_batch(&index, &users, Some(threads));
        let expected: Vec<DisclosureReport> =
            users.iter().map(|user| analysis.assess_scan(&lts, user)).collect();
        prop_assert_eq!(batch, expected);
    }
}
