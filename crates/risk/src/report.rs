//! Combined risk reports.
//!
//! The paper argues that the output of the analysis can *"form part of the
//! privacy policy explained to users"* and inform the system designer's
//! decisions. [`RiskReport`] bundles the unwanted-disclosure report and the
//! pseudonymisation report for one user and renders them as human-readable
//! text (the experiments binary prints these for every case study).

use crate::disclosure::DisclosureReport;
use crate::pseudonym::PseudonymReport;
use privacy_model::RiskLevel;
use std::fmt;

/// The combined result of running every risk analysis for one user.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RiskReport {
    disclosure: Option<DisclosureReport>,
    pseudonym: Option<PseudonymReport>,
}

impl RiskReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        RiskReport::default()
    }

    /// Attaches an unwanted-disclosure report.
    pub fn with_disclosure(mut self, report: DisclosureReport) -> Self {
        self.disclosure = Some(report);
        self
    }

    /// Attaches a pseudonymisation report.
    pub fn with_pseudonym(mut self, report: PseudonymReport) -> Self {
        self.pseudonym = Some(report);
        self
    }

    /// The unwanted-disclosure report, if present.
    pub fn disclosure(&self) -> Option<&DisclosureReport> {
        self.disclosure.as_ref()
    }

    /// The pseudonymisation report, if present.
    pub fn pseudonym(&self) -> Option<&PseudonymReport> {
        self.pseudonym.as_ref()
    }

    /// The overall risk level: the maximum of the disclosure findings and
    /// High/Medium when the pseudonymisation is unacceptable / has
    /// violations.
    pub fn overall_level(&self) -> RiskLevel {
        let mut level = RiskLevel::Low;
        if let Some(disclosure) = &self.disclosure {
            level = level.max(disclosure.max_level());
        }
        if let Some(pseudonym) = &self.pseudonym {
            if pseudonym.is_unacceptable() {
                level = level.max(RiskLevel::High);
            } else if pseudonym.violation_series().iter().any(|v| *v > 0) {
                level = level.max(RiskLevel::Medium);
            }
        }
        level
    }

    /// Returns `true` if the report contains something a designer must act
    /// on (any finding above Low, or an unacceptable pseudonymisation).
    pub fn requires_action(&self) -> bool {
        self.overall_level().at_least(RiskLevel::Medium)
    }

    /// Renders the report as plain text.
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for RiskReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== privacy risk report (overall level: {}) ===", self.overall_level())?;
        match &self.disclosure {
            Some(report) => write!(f, "{report}")?,
            None => writeln!(f, "unwanted-disclosure analysis: not run")?,
        }
        match &self.pseudonym {
            Some(report) => write!(f, "{report}")?,
            None => writeln!(f, "pseudonymisation analysis: not run")?,
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_low_and_requires_no_action() {
        let report = RiskReport::new();
        assert_eq!(report.overall_level(), RiskLevel::Low);
        assert!(!report.requires_action());
        assert!(report.disclosure().is_none());
        assert!(report.pseudonym().is_none());
        let text = report.render();
        assert!(text.contains("not run"));
        assert!(text.contains("overall level: Low"));
    }
}
