//! Re-identification risk analysis — the *first* pseudonymisation risk the
//! paper names in Section III-B ("the risk that a person whose personal data
//! is pseudonymised within a disclosed data set can be re-identified") and
//! then defers in favour of value risk.  This module supplies the deferred
//! dimension so both risk types can be reported side by side.
//!
//! The analysis follows the prosecutor attacker model used by ARX-style
//! tooling: for every combination of quasi-identifiers readable by the
//! adversary, a record's re-identification probability is `1 / |s|`, where
//! `s` is the equivalence class the record falls into once only those
//! quasi-identifiers are visible.

use privacy_anonymity::kanon::equivalence_classes;
use privacy_model::{Dataset, FieldId, ModelError};
use std::fmt;

/// The designer's re-identification policy: a record is *at risk* when its
/// re-identification probability is at least `threshold`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReidentPolicy {
    threshold: f64,
}

impl ReidentPolicy {
    /// Creates a policy flagging records whose re-identification probability
    /// is at least `threshold`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::OutOfRange`] if `threshold` is outside `(0, 1]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use privacy_risk::reident::ReidentPolicy;
    /// let policy = ReidentPolicy::new(0.5)?;
    /// assert_eq!(policy.threshold(), 0.5);
    /// # Ok::<(), privacy_model::ModelError>(())
    /// ```
    pub fn new(threshold: f64) -> Result<Self, ModelError> {
        if !(threshold > 0.0 && threshold <= 1.0) {
            return Err(ModelError::OutOfRange {
                what: "re-identification threshold",
                value: threshold,
                min: f64::MIN_POSITIVE,
                max: 1.0,
            });
        }
        Ok(ReidentPolicy { threshold })
    }

    /// The prosecutor-model policy used by the examples: a record is at risk
    /// when the adversary is at least 50 % certain of the match.
    pub fn majority() -> Self {
        ReidentPolicy { threshold: 0.5 }
    }

    /// The probability threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl Default for ReidentPolicy {
    fn default() -> Self {
        ReidentPolicy::majority()
    }
}

/// Re-identification risk for one visible quasi-identifier combination.
#[derive(Debug, Clone, PartialEq)]
pub struct ReidentFinding {
    visible: Vec<FieldId>,
    record_risks: Vec<f64>,
    at_risk: usize,
    threshold: f64,
}

impl ReidentFinding {
    /// The quasi-identifiers assumed visible to the adversary.
    pub fn visible(&self) -> &[FieldId] {
        &self.visible
    }

    /// Per-record re-identification probabilities (`1 / |class|`), in record
    /// order.
    pub fn record_risks(&self) -> &[f64] {
        &self.record_risks
    }

    /// The prosecutor risk: the largest per-record probability.
    pub fn max_risk(&self) -> f64 {
        self.record_risks.iter().copied().fold(0.0, f64::max)
    }

    /// The marketer risk: the expected fraction of records an adversary
    /// matching every record at random would re-identify (the mean
    /// per-record probability).
    pub fn average_risk(&self) -> f64 {
        if self.record_risks.is_empty() {
            0.0
        } else {
            self.record_risks.iter().sum::<f64>() / self.record_risks.len() as f64
        }
    }

    /// The number of records whose probability reaches the policy threshold.
    pub fn at_risk(&self) -> usize {
        self.at_risk
    }

    /// A label for the combination, e.g. `"Age+Height"` or `"(none)"`.
    pub fn label(&self) -> String {
        if self.visible.is_empty() {
            "(none)".to_owned()
        } else {
            self.visible.iter().map(FieldId::as_str).collect::<Vec<_>>().join("+")
        }
    }
}

impl fmt::Display for ReidentFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "visible {}: prosecutor {:.2}, marketer {:.2}, {} record(s) at risk (>= {:.0}%)",
            self.label(),
            self.max_risk(),
            self.average_risk(),
            self.at_risk,
            self.threshold * 100.0
        )
    }
}

/// The result of the re-identification analysis over a set of visible
/// quasi-identifier combinations.
#[derive(Debug, Clone, PartialEq)]
pub struct ReidentReport {
    policy: ReidentPolicy,
    findings: Vec<ReidentFinding>,
}

impl ReidentReport {
    /// The policy the analysis was run with.
    pub fn policy(&self) -> &ReidentPolicy {
        &self.policy
    }

    /// One finding per visible combination, in supply order.
    pub fn findings(&self) -> &[ReidentFinding] {
        &self.findings
    }

    /// The at-risk record counts in supply order (the analogue of the
    /// paper's violation series for value risk).
    pub fn at_risk_series(&self) -> Vec<usize> {
        self.findings.iter().map(ReidentFinding::at_risk).collect()
    }

    /// The worst prosecutor risk across all combinations.
    pub fn max_risk(&self) -> f64 {
        self.findings.iter().map(ReidentFinding::max_risk).fold(0.0, f64::max)
    }
}

impl fmt::Display for ReidentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "re-identification risk (threshold {:.0}%)", self.policy.threshold() * 100.0)?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

/// Computes re-identification risk of `release` for every quasi-identifier
/// combination in `visible_sets`.
///
/// # Examples
///
/// ```
/// use privacy_risk::reident::{reident_risk, ReidentPolicy};
/// use privacy_model::{Dataset, FieldId, Record, Value};
///
/// let release = Dataset::from_records(
///     [FieldId::new("Age"), FieldId::new("Height")],
///     [
///         Record::new().with("Age", Value::interval(20.0, 30.0)).with("Height", 180),
///         Record::new().with("Age", Value::interval(20.0, 30.0)).with("Height", 165),
///     ],
/// );
/// let report = reident_risk(
///     &release,
///     &[vec![], vec![FieldId::new("Height")]],
///     &ReidentPolicy::majority(),
/// );
/// // With no quasi-identifier both records share one class of size 2;
/// // once Height is visible every record is unique.
/// assert_eq!(report.at_risk_series(), vec![2, 2]);
/// assert!(report.findings()[0].max_risk() < report.findings()[1].max_risk());
/// ```
pub fn reident_risk(
    release: &Dataset,
    visible_sets: &[Vec<FieldId>],
    policy: &ReidentPolicy,
) -> ReidentReport {
    let findings = visible_sets
        .iter()
        .map(|visible| {
            let mut record_risks = vec![0.0; release.len()];
            for class in equivalence_classes(release, visible) {
                let risk = if class.is_empty() { 0.0 } else { 1.0 / class.len() as f64 };
                for &member in class.members() {
                    record_risks[member] = risk;
                }
            }
            let at_risk = record_risks.iter().filter(|&&r| r + 1e-12 >= policy.threshold()).count();
            ReidentFinding {
                visible: visible.clone(),
                record_risks,
                at_risk,
                threshold: policy.threshold(),
            }
        })
        .collect();
    ReidentReport { policy: policy.clone(), findings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privacy_model::{Record, Value};

    fn age() -> FieldId {
        FieldId::new("Age")
    }

    fn height() -> FieldId {
        FieldId::new("Height")
    }

    /// The six Table I records, generalised for 2-anonymisation.
    fn table1_release() -> Dataset {
        let rows: [(f64, f64, f64, f64, f64); 6] = [
            (30.0, 40.0, 180.0, 200.0, 100.0),
            (30.0, 40.0, 180.0, 200.0, 102.0),
            (20.0, 30.0, 180.0, 200.0, 110.0),
            (20.0, 30.0, 180.0, 200.0, 111.0),
            (20.0, 30.0, 160.0, 180.0, 80.0),
            (20.0, 30.0, 160.0, 180.0, 110.0),
        ];
        Dataset::from_records(
            [age(), height(), FieldId::new("Weight")],
            rows.iter().map(|(alo, ahi, hlo, hhi, w)| {
                Record::new()
                    .with("Age", Value::interval(*alo, *ahi))
                    .with("Height", Value::interval(*hlo, *hhi))
                    .with("Weight", *w)
            }),
        )
    }

    #[test]
    fn policy_rejects_out_of_range_thresholds() {
        assert!(ReidentPolicy::new(0.0).is_err());
        assert!(ReidentPolicy::new(1.5).is_err());
        assert!(ReidentPolicy::new(-0.1).is_err());
        assert!(ReidentPolicy::new(1.0).is_ok());
        assert_eq!(ReidentPolicy::default(), ReidentPolicy::majority());
    }

    #[test]
    fn more_visible_quasi_identifiers_never_reduce_risk() {
        let release = table1_release();
        let report = reident_risk(
            &release,
            &[vec![], vec![height()], vec![age()], vec![age(), height()]],
            &ReidentPolicy::majority(),
        );
        let series: Vec<f64> = report.findings().iter().map(ReidentFinding::max_risk).collect();
        for window in series.windows(2) {
            assert!(window[1] >= window[0] - 1e-12, "risk decreased: {series:?}");
        }
    }

    #[test]
    fn table1_classes_give_expected_prosecutor_risks() {
        let release = table1_release();
        let report =
            reident_risk(&release, &[vec![], vec![age(), height()]], &ReidentPolicy::majority());
        // With nothing visible there is a single class of six records.
        assert!((report.findings()[0].max_risk() - 1.0 / 6.0).abs() < 1e-9);
        // With Age and Height visible the smallest class has two records.
        assert!((report.findings()[1].max_risk() - 0.5).abs() < 1e-9);
        assert_eq!(report.at_risk_series(), vec![0, 6]);
    }

    #[test]
    fn marketer_risk_equals_classes_over_records() {
        let release = table1_release();
        let report = reident_risk(&release, &[vec![age(), height()]], &ReidentPolicy::majority());
        // Three equivalence classes over six records → expected fraction 1/2.
        assert!((report.findings()[0].average_risk() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn unique_records_are_fully_identifiable() {
        let release = Dataset::from_records(
            [height()],
            [Record::new().with("Height", 150), Record::new().with("Height", 190)],
        );
        let report = reident_risk(&release, &[vec![height()]], &ReidentPolicy::new(1.0).unwrap());
        assert_eq!(report.findings()[0].at_risk(), 2);
        assert!((report.max_risk() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_release_reports_no_risk() {
        let release = Dataset::new([age()]);
        let report = reident_risk(&release, &[vec![age()]], &ReidentPolicy::majority());
        assert_eq!(report.at_risk_series(), vec![0]);
        assert_eq!(report.max_risk(), 0.0);
        assert_eq!(report.findings()[0].average_risk(), 0.0);
    }

    #[test]
    fn report_and_findings_render_readably() {
        let release = table1_release();
        let report = reident_risk(&release, &[vec![age()]], &ReidentPolicy::majority());
        let text = report.to_string();
        assert!(text.contains("re-identification risk"));
        assert!(text.contains("visible Age"));
        assert!(report.findings()[0].label() == "Age");
        let empty = reident_risk(&release, &[vec![]], &ReidentPolicy::majority());
        assert_eq!(empty.findings()[0].label(), "(none)");
    }
}
