//! Relative sensitivity `σ(d, a)` and the impact dimension of risk.
//!
//! Section III-A: *"we may write the sensitivity of a data field d relative
//! to an actor a as σ(d, a), where σ(d, a) = 0 if the actor is allowed, and
//! σ(d, a) = σ(d) if the actor is non-allowed."* The sensitivity of a privacy
//! state is *"the maximum sensitivity amongst the data fields that have
//! either been identified or could be identified"* (by a non-allowed actor),
//! and the impact of a transition is the sensitivity **change** it causes
//! relative to the absolute privacy state.

use privacy_lts::{PrivacyState, VarSpace};
use privacy_model::{ActorId, Catalog, FieldId, Sensitivity, UserProfile};
use std::collections::BTreeSet;
use std::fmt;

/// The per-user sensitivity model: the user's declared sensitivities plus the
/// allowed-actor set derived from their consent.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityModel {
    user: UserProfile,
    allowed: BTreeSet<ActorId>,
}

impl SensitivityModel {
    /// Builds the model for one user: the allowed actors are the union of
    /// the actors of every service the user consented to.
    pub fn new(catalog: &Catalog, user: &UserProfile) -> Self {
        let allowed = catalog.allowed_actors(user.consent().services()).into_iter().collect();
        SensitivityModel { user: user.clone(), allowed }
    }

    /// The user this model belongs to.
    pub fn user(&self) -> &UserProfile {
        &self.user
    }

    /// The allowed actors.
    pub fn allowed_actors(&self) -> &BTreeSet<ActorId> {
        &self.allowed
    }

    /// Returns `true` if the actor is allowed for this user.
    pub fn is_allowed(&self, actor: &ActorId) -> bool {
        self.allowed.contains(actor)
    }

    /// The non-allowed actors among the given candidates.
    pub fn non_allowed<'a>(&self, actors: impl IntoIterator<Item = &'a ActorId>) -> Vec<ActorId> {
        actors.into_iter().filter(|a| !self.is_allowed(a)).cloned().collect()
    }

    /// The user's raw sensitivity `σ(d)` for a field.
    pub fn field_sensitivity(&self, field: &FieldId) -> Sensitivity {
        self.user.sensitivities().sensitivity(field)
    }

    /// The relative sensitivity `σ(d, a)`.
    pub fn relative_sensitivity(&self, field: &FieldId, actor: &ActorId) -> Sensitivity {
        if self.is_allowed(actor) {
            Sensitivity::ZERO
        } else {
            self.field_sensitivity(field)
        }
    }

    /// The sensitivity of a privacy state: the maximum `σ(d, a)` over every
    /// (actor, field) pair for which `has ∨ could` holds.
    pub fn state_sensitivity(&self, space: &VarSpace, state: &PrivacyState) -> Sensitivity {
        state
            .exposed_pairs(space)
            .map(|(actor, field)| self.relative_sensitivity(field, actor))
            .fold(Sensitivity::ZERO, Sensitivity::max)
    }

    /// The sensitivity change caused by moving from `before` to `after`,
    /// measured (as the paper prescribes) relative to the absolute privacy
    /// state: the sensitivity contributed by pairs newly exposed in `after`.
    pub fn transition_sensitivity(
        &self,
        space: &VarSpace,
        before: &PrivacyState,
        after: &PrivacyState,
    ) -> Sensitivity {
        after
            .exposed_pairs(space)
            .filter(|(actor, field)| !before.has_or_could(space, actor, field))
            .map(|(actor, field)| self.relative_sensitivity(field, actor))
            .fold(Sensitivity::ZERO, Sensitivity::max)
    }
}

impl fmt::Display for SensitivityModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sensitivity model for {} ({} allowed actors)",
            self.user.id(),
            self.allowed.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privacy_model::{
        Actor, DataField, DataSchema, SensitivityCategory, ServiceDecl, ServiceId,
    };

    fn catalog() -> Catalog {
        let mut catalog = Catalog::new();
        catalog.add_actor(Actor::role("Doctor")).unwrap();
        catalog.add_actor(Actor::role("Administrator")).unwrap();
        catalog.add_actor(Actor::role("Researcher")).unwrap();
        catalog.add_field(DataField::identifier("Name")).unwrap();
        catalog.add_field(DataField::sensitive("Diagnosis")).unwrap();
        catalog
            .add_schema(DataSchema::new("S", [FieldId::new("Name"), FieldId::new("Diagnosis")]))
            .unwrap();
        catalog.add_service(ServiceDecl::new("MedicalService", [ActorId::new("Doctor")])).unwrap();
        catalog
            .add_service(ServiceDecl::new(
                "ResearchService",
                [ActorId::new("Administrator"), ActorId::new("Researcher")],
            ))
            .unwrap();
        catalog
    }

    fn case_a_user() -> UserProfile {
        UserProfile::new("patient-1")
            .consents_to(ServiceId::new("MedicalService"))
            .with_category_sensitivity(FieldId::new("Diagnosis"), SensitivityCategory::High)
    }

    #[test]
    fn allowed_actors_follow_consent() {
        let model = SensitivityModel::new(&catalog(), &case_a_user());
        assert!(model.is_allowed(&ActorId::new("Doctor")));
        assert!(!model.is_allowed(&ActorId::new("Administrator")));
        assert!(!model.is_allowed(&ActorId::new("Researcher")));
        let non_allowed = model.non_allowed(
            [ActorId::new("Doctor"), ActorId::new("Administrator"), ActorId::new("Researcher")]
                .iter(),
        );
        assert_eq!(non_allowed.len(), 2);
    }

    #[test]
    fn relative_sensitivity_is_zero_for_allowed_actors() {
        let model = SensitivityModel::new(&catalog(), &case_a_user());
        let diagnosis = FieldId::new("Diagnosis");
        assert!(model.relative_sensitivity(&diagnosis, &ActorId::new("Doctor")).is_zero());
        let admin_sensitivity =
            model.relative_sensitivity(&diagnosis, &ActorId::new("Administrator"));
        assert_eq!(admin_sensitivity, model.field_sensitivity(&diagnosis));
        assert!(admin_sensitivity.value() > 0.66);
        // An unmentioned field has zero sensitivity for everyone.
        assert!(model
            .relative_sensitivity(&FieldId::new("Name"), &ActorId::new("Administrator"))
            .is_zero());
    }

    #[test]
    fn state_sensitivity_takes_the_maximum_over_exposed_pairs() {
        let model = SensitivityModel::new(&catalog(), &case_a_user());
        let space = VarSpace::from_catalog(&catalog());
        let diagnosis = FieldId::new("Diagnosis");
        let name = FieldId::new("Name");

        let absolute = PrivacyState::absolute(&space);
        assert!(model.state_sensitivity(&space, &absolute).is_zero());

        // Only the allowed doctor is exposed: still zero.
        let doctor_knows = absolute.with_has(&space, &ActorId::new("Doctor"), &diagnosis);
        assert!(model.state_sensitivity(&space, &doctor_knows).is_zero());

        // The administrator *could* read the diagnosis: high sensitivity.
        let admin_could =
            doctor_knows.with_could(&space, &ActorId::new("Administrator"), &diagnosis);
        assert!(model.state_sensitivity(&space, &admin_could).value() > 0.66);

        // Exposure of a non-sensitive field contributes nothing extra.
        let with_name = admin_could.with_has(&space, &ActorId::new("Researcher"), &name);
        assert_eq!(
            model.state_sensitivity(&space, &with_name),
            model.state_sensitivity(&space, &admin_could)
        );
    }

    #[test]
    fn transition_sensitivity_measures_only_the_new_exposure() {
        let model = SensitivityModel::new(&catalog(), &case_a_user());
        let space = VarSpace::from_catalog(&catalog());
        let diagnosis = FieldId::new("Diagnosis");
        let admin = ActorId::new("Administrator");

        let before = PrivacyState::absolute(&space);
        let after = before.with_could(&space, &admin, &diagnosis);
        let change = model.transition_sensitivity(&space, &before, &after);
        assert!(change.value() > 0.66);

        // Re-exposing the same pair causes no further change.
        let after_again = after.with_has(&space, &admin, &diagnosis);
        // has was not set before, but could was — the pair was already
        // exposed, so the change is zero.
        assert!(model.transition_sensitivity(&space, &after, &after_again).is_zero());
    }

    #[test]
    fn display_names_the_user() {
        let model = SensitivityModel::new(&catalog(), &case_a_user());
        assert!(model.to_string().contains("patient-1"));
        assert!(model.to_string().contains("1 allowed actors"));
        assert_eq!(model.user().id().as_str(), "patient-1");
        assert_eq!(model.allowed_actors().len(), 1);
    }
}
