//! Pseudonymisation (value) risk analysis (Section III-B, Table I, Fig. 4).
//!
//! The analysis considers an adversary actor (the paper's Researcher) that
//! has access rights to the pseudonymised version `f_anon` of a sensitive
//! field `f` but not to `f` itself. For every combination of
//! quasi-identifiers the adversary can see, the per-record value risk
//! `risk(r, f) = frequency(f)/size(s)` is computed over the released data and
//! the number of **violations** of the designer's value-risk policy is
//! counted (Table I). Risk-transitions are added to the LTS from every state
//! where the adversary has accessed `f_anon`, labelled with the violation
//! count of the quasi-identifiers visible in that state (the dotted edges of
//! Fig. 4).

use privacy_access::{AccessPolicy, Permission};
use privacy_anonymity::{value_risk, ValueRiskPolicy, ValueRiskReport};
use privacy_lts::{
    ActionKind, Lts, LtsIndex, RiskAnnotation, StateId, TransitionId, TransitionLabel,
};
use privacy_model::{ActorId, Catalog, Dataset, FieldId, ModelError, RiskLevel};
use std::fmt;

/// The violation count for one visible quasi-identifier combination — one
/// column of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct PseudonymFinding {
    visible: Vec<FieldId>,
    report: ValueRiskReport,
}

impl PseudonymFinding {
    /// The quasi-identifiers assumed visible.
    pub fn visible(&self) -> &[FieldId] {
        &self.visible
    }

    /// The underlying per-record value-risk report.
    pub fn report(&self) -> &ValueRiskReport {
        &self.report
    }

    /// The number of policy violations.
    pub fn violations(&self) -> usize {
        self.report.violation_count()
    }

    /// The fraction of records violating the policy.
    pub fn violation_rate(&self) -> f64 {
        self.report.violation_rate()
    }

    /// A label for the combination, e.g. `"Age+Height"` or `"(none)"`.
    pub fn label(&self) -> String {
        if self.visible.is_empty() {
            "(none)".to_owned()
        } else {
            self.visible.iter().map(FieldId::as_str).collect::<Vec<_>>().join("+")
        }
    }
}

impl fmt::Display for PseudonymFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "visible {}: {} violations", self.label(), self.violations())
    }
}

/// The result of the pseudonymisation risk analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct PseudonymReport {
    adversary: ActorId,
    policy: ValueRiskPolicy,
    findings: Vec<PseudonymFinding>,
    risk_transitions: Vec<TransitionId>,
    violation_threshold: Option<f64>,
}

impl PseudonymReport {
    /// The adversary actor the analysis was run against.
    pub fn adversary(&self) -> &ActorId {
        &self.adversary
    }

    /// The value-risk policy.
    pub fn policy(&self) -> &ValueRiskPolicy {
        &self.policy
    }

    /// One finding per analysed quasi-identifier combination, in the order
    /// they were supplied.
    pub fn findings(&self) -> &[PseudonymFinding] {
        &self.findings
    }

    /// The risk-transitions added to the LTS (the dotted edges of Fig. 4).
    pub fn risk_transitions(&self) -> &[TransitionId] {
        &self.risk_transitions
    }

    /// The violation counts in supply order — the paper's `0, 2, 4` series.
    pub fn violation_series(&self) -> Vec<usize> {
        self.findings.iter().map(PseudonymFinding::violations).collect()
    }

    /// The worst violation rate across the findings.
    pub fn max_violation_rate(&self) -> f64 {
        self.findings.iter().map(PseudonymFinding::violation_rate).fold(0.0, f64::max)
    }

    /// Returns `true` if the configured violation threshold is exceeded — the
    /// paper's *"a system designer could declare that a number of violations
    /// above 50 % is unacceptable"*.
    pub fn is_unacceptable(&self) -> bool {
        match self.violation_threshold {
            Some(threshold) => self.max_violation_rate() > threshold,
            None => false,
        }
    }
}

impl fmt::Display for PseudonymReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "pseudonymisation risk for adversary {}: {}", self.adversary, self.policy)?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        writeln!(f, "  {} risk transitions added to the LTS", self.risk_transitions.len())?;
        if self.is_unacceptable() {
            writeln!(f, "  VERDICT: pseudonymisation technique is NOT acceptable")?;
        }
        Ok(())
    }
}

/// The pseudonymisation risk analysis.
#[derive(Debug, Clone)]
pub struct PseudonymAnalysis<'a> {
    catalog: &'a Catalog,
    policy: &'a AccessPolicy,
    value_policy: ValueRiskPolicy,
    violation_threshold: Option<f64>,
}

impl<'a> PseudonymAnalysis<'a> {
    /// Creates an analysis for the given value-risk policy.
    pub fn new(
        catalog: &'a Catalog,
        policy: &'a AccessPolicy,
        value_policy: ValueRiskPolicy,
    ) -> Self {
        PseudonymAnalysis { catalog, policy, value_policy, violation_threshold: None }
    }

    /// Builder-style: declare the violation rate above which the
    /// pseudonymisation technique is unacceptable (the analysis then reports
    /// [`PseudonymReport::is_unacceptable`] and
    /// [`PseudonymAnalysis::analyse_strict`] turns it into an error).
    pub fn with_violation_threshold(mut self, threshold: f64) -> Self {
        self.violation_threshold = Some(threshold);
        self
    }

    /// Runs the analysis:
    ///
    /// * computes one [`PseudonymFinding`] per visible quasi-identifier
    ///   combination in `visible_sets` (the columns of Table I);
    /// * adds a risk-transition to the LTS from every reachable state in
    ///   which the adversary has accessed the pseudonymised target field but
    ///   lacks read access to the original field, annotated with the
    ///   violation count of the quasi-identifiers visible in that state.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`]s from the underlying value-risk computation
    /// (e.g. the target field missing from the release).
    pub fn analyse(
        &self,
        lts: &mut Lts,
        adversary: &ActorId,
        release: &Dataset,
        visible_sets: &[Vec<FieldId>],
    ) -> Result<PseudonymReport, ModelError> {
        self.analyse_inner(lts, None, adversary, release, visible_sets)
    }

    /// Like [`PseudonymAnalysis::analyse`] but resolving the at-risk states
    /// from a prebuilt columnar [`LtsIndex`] instead of scanning the
    /// reachable states. The index must have been built from `lts` in its
    /// current state; use this when an index already exists for the LTS
    /// (e.g. alongside the disclosure batch analyses) — building one just
    /// for this query would cost more than the single scan it replaces.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`]s from the underlying value-risk
    /// computation, as [`PseudonymAnalysis::analyse`] does.
    pub fn analyse_with_index(
        &self,
        lts: &mut Lts,
        index: &LtsIndex,
        adversary: &ActorId,
        release: &Dataset,
        visible_sets: &[Vec<FieldId>],
    ) -> Result<PseudonymReport, ModelError> {
        self.analyse_inner(lts, Some(index), adversary, release, visible_sets)
    }

    fn analyse_inner(
        &self,
        lts: &mut Lts,
        index: Option<&LtsIndex>,
        adversary: &ActorId,
        release: &Dataset,
        visible_sets: &[Vec<FieldId>],
    ) -> Result<PseudonymReport, ModelError> {
        let mut findings = Vec::new();
        for visible in visible_sets {
            let report = value_risk(release, visible, &self.value_policy)?;
            findings.push(PseudonymFinding { visible: visible.clone(), report });
        }

        let risk_transitions = self.annotate_lts(lts, index, adversary, release)?;

        Ok(PseudonymReport {
            adversary: adversary.clone(),
            policy: self.value_policy.clone(),
            findings,
            risk_transitions,
            violation_threshold: self.violation_threshold,
        })
    }

    /// Like [`PseudonymAnalysis::analyse`] but fails when the violation
    /// threshold is exceeded — the design-time "throw an error" behaviour
    /// described in Case Study B.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Invalid`] when the violation threshold is
    /// exceeded, in addition to the errors of [`PseudonymAnalysis::analyse`].
    pub fn analyse_strict(
        &self,
        lts: &mut Lts,
        adversary: &ActorId,
        release: &Dataset,
        visible_sets: &[Vec<FieldId>],
    ) -> Result<PseudonymReport, ModelError> {
        let report = self.analyse(lts, adversary, release, visible_sets)?;
        if report.is_unacceptable() {
            return Err(ModelError::invalid(format!(
                "pseudonymisation violates the value-risk policy for {:.0}% of records \
                 (threshold {:.0}%)",
                report.max_violation_rate() * 100.0,
                self.violation_threshold.unwrap_or(1.0) * 100.0
            )));
        }
        Ok(report)
    }

    /// Adds the Fig. 4 risk-transitions for the adversary to the LTS and
    /// returns their ids.
    fn annotate_lts(
        &self,
        lts: &mut Lts,
        index: Option<&LtsIndex>,
        adversary: &ActorId,
        release: &Dataset,
    ) -> Result<Vec<TransitionId>, ModelError> {
        let space = lts.space().clone();
        let target = self.value_policy.target().clone();
        let target_anon = target.anonymised();

        // The adversary must have rights to the anonymised field somewhere
        // but not to the original field anywhere; otherwise there is nothing
        // to analyse. Access grants are checked against the datastores whose
        // schema actually contains the original field.
        let has_original_access = self.catalog.datastores().any(|d| {
            self.catalog
                .datastore_schema(d.id())
                .map(|schema| schema.contains(&target))
                .unwrap_or(false)
                && self.policy.can(adversary, Permission::Read, d.id(), &target)
        });
        if has_original_access {
            return Ok(Vec::new());
        }

        // Candidate visible quasi-identifiers: release columns other than the
        // target field.
        let qi_columns: Vec<FieldId> =
            release.columns().iter().filter(|c| *c != &target).cloned().collect();

        let mut added = Vec::new();
        // The at-risk states: every reachable state in which the adversary
        // has accessed the pseudonymised target. A prebuilt index answers
        // this from its per-variable posting list (same breadth-first order
        // the scan produces); without one, a single reachability scan is
        // cheaper than building an index for one query.
        let at_risk: Vec<StateId> = match index {
            Some(index) => index.states_where_has(adversary, &target_anon).to_vec(),
            None => lts
                .reachable()
                .into_iter()
                .filter(|id| lts.state(*id).has(&space, adversary, &target_anon))
                .collect(),
        };

        for state_id in at_risk {
            let state = lts.state(state_id).clone();
            // The quasi-identifiers visible to the adversary in this state:
            // those whose pseudonymised counterpart it has accessed.
            let visible: Vec<FieldId> = qi_columns
                .iter()
                .filter(|qi| state.has(&space, adversary, &qi.anonymised()))
                .cloned()
                .collect();
            let report = value_risk(release, &visible, &self.value_policy)?;
            let violations = report.violation_count();
            let rate = report.violation_rate();

            let level = if self
                .violation_threshold
                .map(|threshold| rate > threshold)
                .unwrap_or(violations > 0)
            {
                RiskLevel::High
            } else if violations > 0 {
                RiskLevel::Medium
            } else {
                RiskLevel::Low
            };

            let target_state = state.with_has(&space, adversary, &target);
            let target_id = lts.intern(target_state);
            let label =
                TransitionLabel::new(ActionKind::Read, adversary.clone(), [target.clone()], None)
                    .with_risk(
                        RiskAnnotation::level(level).with_score(report.max_risk()).with_note(
                            format!(
                        "{violations} value-risk violations with visible quasi-identifiers \
                         {:?}",
                        visible.iter().map(FieldId::as_str).collect::<Vec<_>>()
                    ),
                        ),
                    );
            added.push(lts.add_risk_transition(state_id, target_id, label));
        }
        Ok(added)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privacy_access::{AccessControlList, Grant};
    use privacy_lts::{Lts, PrivacyState, VarSpace};
    use privacy_model::{Actor, DataField, DataSchema, DatastoreDecl, Record, Value};

    fn age() -> FieldId {
        FieldId::new("Age")
    }

    fn height() -> FieldId {
        FieldId::new("Height")
    }

    fn weight() -> FieldId {
        FieldId::new("Weight")
    }

    /// The six 2-anonymised records of Table I.
    fn table1_release() -> Dataset {
        let rows: [(f64, f64, f64, f64, f64); 6] = [
            (30.0, 40.0, 180.0, 200.0, 100.0),
            (30.0, 40.0, 180.0, 200.0, 102.0),
            (20.0, 30.0, 180.0, 200.0, 110.0),
            (20.0, 30.0, 180.0, 200.0, 111.0),
            (20.0, 30.0, 160.0, 180.0, 80.0),
            (20.0, 30.0, 160.0, 180.0, 110.0),
        ];
        Dataset::from_records(
            [age(), height(), weight()],
            rows.iter().map(|(alo, ahi, hlo, hhi, w)| {
                Record::new()
                    .with("Age", Value::interval(*alo, *ahi))
                    .with("Height", Value::interval(*hlo, *hhi))
                    .with("Weight", *w)
            }),
        )
    }

    /// Catalog and policy for Case Study B: the researcher may read the
    /// anonymised store only.
    fn fixture() -> (Catalog, AccessPolicy) {
        let mut catalog = Catalog::new();
        catalog.add_actor(Actor::role("Researcher")).unwrap();
        catalog.add_actor(Actor::role("Administrator")).unwrap();
        for field in ["Age", "Height", "Weight"] {
            catalog.add_field_with_anonymised(DataField::quasi_identifier(field)).unwrap();
        }
        catalog.add_schema(DataSchema::new("EHRSchema", [age(), height(), weight()])).unwrap();
        catalog
            .add_schema(DataSchema::new(
                "AnonSchema",
                [
                    FieldId::new("Age_anon"),
                    FieldId::new("Height_anon"),
                    FieldId::new("Weight_anon"),
                ],
            ))
            .unwrap();
        catalog.add_datastore(DatastoreDecl::new("EHR", "EHRSchema")).unwrap();
        catalog.add_datastore(DatastoreDecl::anonymised("AnonEHR", "AnonSchema")).unwrap();

        let acl = AccessControlList::new()
            .with_grant(Grant::read_all("Researcher", "AnonEHR"))
            .with_grant(Grant::read_all("Administrator", "EHR"));
        (catalog, AccessPolicy::from_parts(acl, Default::default()))
    }

    /// An LTS in which the researcher progressively accesses the anonymised
    /// weight, then also the anonymised height and age.
    fn researcher_lts(catalog: &Catalog) -> Lts {
        let space = VarSpace::from_catalog(catalog);
        let researcher = ActorId::new("Researcher");
        let mut lts = Lts::new(space.clone());
        let s0 = lts.initial();
        let s1_state = PrivacyState::absolute(&space).with_has(
            &space,
            &researcher,
            &FieldId::new("Weight_anon"),
        );
        let s1 = lts.intern(s1_state.clone());
        let s2_state = s1_state.with_has(&space, &researcher, &FieldId::new("Height_anon"));
        let s2 = lts.intern(s2_state.clone());
        let s3_state = s2_state.with_has(&space, &researcher, &FieldId::new("Age_anon"));
        let s3 = lts.intern(s3_state);
        for (from, to, field) in
            [(s0, s1, "Weight_anon"), (s1, s2, "Height_anon"), (s2, s3, "Age_anon")]
        {
            lts.add_transition(
                from,
                to,
                TransitionLabel::new(
                    ActionKind::Read,
                    researcher.clone(),
                    [FieldId::new(field)],
                    None,
                ),
            );
        }
        lts
    }

    #[test]
    fn table_one_violation_series_is_0_2_4() {
        let (catalog, policy) = fixture();
        let mut lts = researcher_lts(&catalog);
        let analysis = PseudonymAnalysis::new(
            &catalog,
            &policy,
            ValueRiskPolicy::weight_within_5kg_at_90_percent(),
        );
        let report = analysis
            .analyse(
                &mut lts,
                &ActorId::new("Researcher"),
                &table1_release(),
                &[vec![height()], vec![age()], vec![age(), height()]],
            )
            .unwrap();
        assert_eq!(report.violation_series(), vec![0, 2, 4]);
        assert_eq!(report.findings()[0].label(), "Height");
        assert_eq!(report.findings()[2].label(), "Age+Height");
        assert!(!report.risk_transitions().is_empty());
    }

    #[test]
    fn risk_transitions_are_added_from_every_at_risk_state() {
        let (catalog, policy) = fixture();
        let mut lts = researcher_lts(&catalog);
        let before = lts.stats();
        let analysis = PseudonymAnalysis::new(
            &catalog,
            &policy,
            ValueRiskPolicy::weight_within_5kg_at_90_percent(),
        );
        let report = analysis
            .analyse(&mut lts, &ActorId::new("Researcher"), &table1_release(), &[])
            .unwrap();
        // Three states have Weight_anon accessed (s1, s2, s3); each receives
        // a dotted risk transition.
        assert_eq!(report.risk_transitions().len(), 3);
        let after = lts.stats();
        assert_eq!(after.risk_transitions, before.risk_transitions + 3);

        // The annotation on the transition out of the fully-informed state
        // carries four violations and High risk.
        let last = *report.risk_transitions().last().unwrap();
        let annotation = lts.transition(last).label().risk().unwrap();
        assert!(annotation.note().contains("4 value-risk violations"));
        assert_eq!(annotation.risk_level(), RiskLevel::High);
        assert_eq!(annotation.score(), Some(1.0));
    }

    #[test]
    fn adversary_with_access_to_the_original_field_is_not_analysed() {
        let (catalog, policy) = fixture();
        let mut lts = researcher_lts(&catalog);
        // The administrator can read the raw EHR (including Weight), so the
        // value-risk machinery does not apply to them.
        let analysis = PseudonymAnalysis::new(
            &catalog,
            &policy,
            ValueRiskPolicy::weight_within_5kg_at_90_percent(),
        );
        let report = analysis
            .analyse(&mut lts, &ActorId::new("Administrator"), &table1_release(), &[])
            .unwrap();
        assert!(report.risk_transitions().is_empty());
    }

    #[test]
    fn strict_analysis_rejects_unacceptable_pseudonymisation() {
        let (catalog, policy) = fixture();
        let mut lts = researcher_lts(&catalog);
        let analysis = PseudonymAnalysis::new(
            &catalog,
            &policy,
            ValueRiskPolicy::weight_within_5kg_at_90_percent(),
        )
        .with_violation_threshold(0.5);

        // With age and height visible, 4 of 6 records (67 %) violate the
        // policy, which exceeds the 50 % threshold.
        let err = analysis
            .analyse_strict(
                &mut lts,
                &ActorId::new("Researcher"),
                &table1_release(),
                &[vec![age(), height()]],
            )
            .unwrap_err();
        assert!(matches!(err, ModelError::Invalid { .. }));

        // With only height visible there are no violations and the strict
        // analysis passes.
        let report = analysis
            .analyse_strict(
                &mut lts,
                &ActorId::new("Researcher"),
                &table1_release(),
                &[vec![height()]],
            )
            .unwrap();
        assert!(!report.findings().is_empty());
    }

    #[test]
    fn report_display_mentions_violations_and_verdict() {
        let (catalog, policy) = fixture();
        let mut lts = researcher_lts(&catalog);
        let analysis = PseudonymAnalysis::new(
            &catalog,
            &policy,
            ValueRiskPolicy::weight_within_5kg_at_90_percent(),
        )
        .with_violation_threshold(0.5);
        let report = analysis
            .analyse(
                &mut lts,
                &ActorId::new("Researcher"),
                &table1_release(),
                &[vec![], vec![age(), height()]],
            )
            .unwrap();
        assert!(report.is_unacceptable());
        let text = report.to_string();
        assert!(text.contains("pseudonymisation risk for adversary Researcher"));
        assert!(text.contains("visible (none): 0 violations"));
        assert!(text.contains("visible Age+Height: 4 violations"));
        assert!(text.contains("NOT acceptable"));
        assert_eq!(report.adversary().as_str(), "Researcher");
        assert!(report.max_violation_rate() > 0.5);
        assert_eq!(report.policy().target().as_str(), "Weight");
    }

    #[test]
    fn indexed_analysis_matches_scan_analysis() {
        let (catalog, policy) = fixture();
        let base = researcher_lts(&catalog);
        let analysis = PseudonymAnalysis::new(
            &catalog,
            &policy,
            ValueRiskPolicy::weight_within_5kg_at_90_percent(),
        );
        let sets = [vec![], vec![age()], vec![age(), height()]];

        let mut scan_lts = base.clone();
        let scan = analysis
            .analyse(&mut scan_lts, &ActorId::new("Researcher"), &table1_release(), &sets)
            .unwrap();

        let mut indexed_lts = base.clone();
        let index = LtsIndex::build(&indexed_lts);
        let indexed = analysis
            .analyse_with_index(
                &mut indexed_lts,
                &index,
                &ActorId::new("Researcher"),
                &table1_release(),
                &sets,
            )
            .unwrap();

        assert_eq!(scan, indexed);
        assert_eq!(scan_lts, indexed_lts);
    }

    #[test]
    fn missing_target_column_is_an_error() {
        let (catalog, policy) = fixture();
        let mut lts = researcher_lts(&catalog);
        let bad_policy = ValueRiskPolicy::new("BloodPressure", 5.0, 0.9).unwrap();
        let analysis = PseudonymAnalysis::new(&catalog, &policy, bad_policy);
        // The release has no BloodPressure column.
        let result = analysis.analyse(
            &mut lts,
            &ActorId::new("Researcher"),
            &table1_release(),
            &[vec![age()]],
        );
        assert!(matches!(result, Err(ModelError::Unknown { .. })));
    }
}
