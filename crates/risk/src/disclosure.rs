//! Unwanted-disclosure risk analysis (Section III-A, Case Study A).
//!
//! For one user, the analysis determines the **non-allowed actors** (those
//! not involved in any service the user consented to), finds every field of
//! every datastore such an actor has read access to once the user's data is
//! stored there, computes the impact (the relative sensitivity `σ(d, a)`) and
//! the likelihood (the summed scenario probabilities) of the actor actually
//! reading the field, combines them through the risk matrix, and annotates
//! the LTS: existing `read` transitions by non-allowed actors receive a risk
//! label, and a *potential-read* risk transition is added from every state
//! where the actor could (but has not yet) identified the field.

use crate::likelihood::LikelihoodModel;
use crate::matrix::RiskMatrix;
use crate::sensitivity::SensitivityModel;
use privacy_access::{AccessPolicy, Permission};
use privacy_lts::{ActionKind, Lts, RiskAnnotation, TransitionId, TransitionLabel};
use privacy_model::{
    ActorId, Catalog, DatastoreId, FieldId, Likelihood, RiskLevel, Severity, UserProfile,
};
use std::collections::BTreeSet;
use std::fmt;

/// One unwanted-disclosure finding: a non-allowed actor that can identify a
/// field of a datastore the user's data reaches.
#[derive(Debug, Clone, PartialEq)]
pub struct DisclosureFinding {
    actor: ActorId,
    field: FieldId,
    datastore: DatastoreId,
    severity: Severity,
    likelihood: Likelihood,
    probability: f64,
    level: RiskLevel,
    annotated_transitions: Vec<TransitionId>,
    exposed_states: usize,
}

impl DisclosureFinding {
    /// The non-allowed actor.
    pub fn actor(&self) -> &ActorId {
        &self.actor
    }

    /// The field at risk.
    pub fn field(&self) -> &FieldId {
        &self.field
    }

    /// The datastore through which the actor can reach the field.
    pub fn datastore(&self) -> &DatastoreId {
        &self.datastore
    }

    /// The impact category.
    pub fn severity(&self) -> Severity {
        self.severity
    }

    /// The likelihood category.
    pub fn likelihood(&self) -> Likelihood {
        self.likelihood
    }

    /// The raw likelihood probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// The combined risk level.
    pub fn level(&self) -> RiskLevel {
        self.level
    }

    /// The transitions (existing reads and added potential reads) that were
    /// annotated with this finding's risk.
    pub fn annotated_transitions(&self) -> &[TransitionId] {
        &self.annotated_transitions
    }

    /// The number of reachable states in which the actor could identify the
    /// field.
    pub fn exposed_states(&self) -> usize {
        self.exposed_states
    }
}

impl fmt::Display for DisclosureFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: non-allowed actor {} can read {} from {} \
             (impact {}, likelihood {} [p={:.3}], {} exposed states)",
            self.level,
            self.actor,
            self.field,
            self.datastore,
            self.severity,
            self.likelihood,
            self.probability,
            self.exposed_states
        )
    }
}

/// The result of the unwanted-disclosure analysis for one user.
#[derive(Debug, Clone, PartialEq)]
pub struct DisclosureReport {
    user: UserProfile,
    allowed: BTreeSet<ActorId>,
    non_allowed: BTreeSet<ActorId>,
    findings: Vec<DisclosureFinding>,
}

impl DisclosureReport {
    /// The user the analysis was run for.
    pub fn user(&self) -> &UserProfile {
        &self.user
    }

    /// The allowed actors derived from the user's consent.
    pub fn allowed_actors(&self) -> &BTreeSet<ActorId> {
        &self.allowed
    }

    /// The non-allowed actors.
    pub fn non_allowed_actors(&self) -> &BTreeSet<ActorId> {
        &self.non_allowed
    }

    /// All findings, sorted by descending risk level.
    pub fn findings(&self) -> &[DisclosureFinding] {
        &self.findings
    }

    /// The findings at or above the given level.
    pub fn findings_at_least(&self, level: RiskLevel) -> Vec<&DisclosureFinding> {
        self.findings.iter().filter(|f| f.level().at_least(level)).collect()
    }

    /// The highest risk level found (Low when there are no findings).
    pub fn max_level(&self) -> RiskLevel {
        self.findings.iter().map(DisclosureFinding::level).max().unwrap_or(RiskLevel::Low)
    }

    /// The risk level for a specific actor and field (Low if no finding
    /// exists — no exposure means no unwanted-disclosure risk).
    pub fn risk_for(&self, actor: &ActorId, field: &FieldId) -> RiskLevel {
        self.findings
            .iter()
            .filter(|f| f.actor() == actor && f.field() == field)
            .map(DisclosureFinding::level)
            .max()
            .unwrap_or(RiskLevel::Low)
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.findings.len()
    }

    /// Returns `true` if no unwanted disclosure was found.
    pub fn is_empty(&self) -> bool {
        self.findings.is_empty()
    }
}

impl fmt::Display for DisclosureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "disclosure risk for {}: {} findings (max level {})",
            self.user.id(),
            self.findings.len(),
            self.max_level()
        )?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

/// The unwanted-disclosure analysis.
#[derive(Debug, Clone)]
pub struct DisclosureAnalysis<'a> {
    catalog: &'a Catalog,
    policy: &'a AccessPolicy,
    matrix: RiskMatrix,
    likelihood: LikelihoodModel,
}

impl<'a> DisclosureAnalysis<'a> {
    /// Creates an analysis with the standard risk matrix and likelihood
    /// model.
    pub fn new(catalog: &'a Catalog, policy: &'a AccessPolicy) -> Self {
        DisclosureAnalysis {
            catalog,
            policy,
            matrix: RiskMatrix::standard(),
            likelihood: LikelihoodModel::standard(),
        }
    }

    /// Builder-style: overrides the risk matrix.
    pub fn with_matrix(mut self, matrix: RiskMatrix) -> Self {
        self.matrix = matrix;
        self
    }

    /// Builder-style: overrides the likelihood model.
    pub fn with_likelihood(mut self, likelihood: LikelihoodModel) -> Self {
        self.likelihood = likelihood;
        self
    }

    /// Runs the analysis for one user, annotating the LTS in place.
    pub fn analyse(&self, lts: &mut Lts, user: &UserProfile) -> DisclosureReport {
        let sensitivity = SensitivityModel::new(self.catalog, user);
        let allowed: BTreeSet<ActorId> = sensitivity.allowed_actors().clone();
        let non_allowed: BTreeSet<ActorId> = self
            .catalog
            .identifying_actors()
            .map(|a| a.id().clone())
            .filter(|a| !allowed.contains(a))
            .collect();

        let mut findings = Vec::new();
        let space = lts.space().clone();
        let reachable = lts.reachable();

        for datastore in self.catalog.datastores() {
            let schema = match self.catalog.schema(datastore.schema()) {
                Some(schema) => schema,
                None => continue,
            };
            for field in schema.fields() {
                for actor in &non_allowed {
                    if !self.policy.can(actor, Permission::Read, datastore.id(), field) {
                        continue;
                    }
                    // Which reachable states expose the field to this actor?
                    let exposed: Vec<_> = reachable
                        .iter()
                        .copied()
                        .filter(|id| lts.state(*id).could(&space, actor, field))
                        .collect();
                    if exposed.is_empty() {
                        continue;
                    }

                    let impact = sensitivity.relative_sensitivity(field, actor);
                    let probability = self.likelihood.probability(actor, datastore.id());
                    let severity = self.matrix.categorise_impact(impact);
                    let likelihood_cat = self.matrix.categorise_likelihood(probability);
                    let level = self.matrix.level(severity, likelihood_cat);
                    let annotation = RiskAnnotation::dimensions(severity, likelihood_cat, level)
                        .with_score(impact.value().max(probability))
                        .with_note(format!(
                            "unwanted disclosure of {field} to non-allowed actor {actor}"
                        ));

                    let mut annotated = Vec::new();

                    // Annotate existing read transitions by this actor on
                    // this field.
                    let existing: Vec<TransitionId> = lts
                        .transitions()
                        .filter(|(_, t)| {
                            t.label().action() == ActionKind::Read
                                && t.label().actor() == actor
                                && t.label().involves_field(field)
                        })
                        .map(|(id, _)| id)
                        .collect();
                    for id in existing {
                        lts.annotate(id, annotation.clone());
                        annotated.push(id);
                    }

                    // Add potential-read risk transitions from every exposed
                    // state where the actor has not yet identified the field.
                    for state_id in &exposed {
                        let state = lts.state(*state_id).clone();
                        if state.has(&space, actor, field) {
                            continue;
                        }
                        let target = state.with_has(&space, actor, field);
                        let target_id = lts.intern(target);
                        let label = TransitionLabel::new(
                            ActionKind::Read,
                            actor.clone(),
                            [field.clone()],
                            Some(datastore.schema().clone()),
                        )
                        .with_risk(annotation.clone());
                        let tid = lts.add_risk_transition(*state_id, target_id, label);
                        annotated.push(tid);
                    }

                    findings.push(DisclosureFinding {
                        actor: actor.clone(),
                        field: field.clone(),
                        datastore: datastore.id().clone(),
                        severity,
                        likelihood: likelihood_cat,
                        probability,
                        level,
                        annotated_transitions: annotated,
                        exposed_states: exposed.len(),
                    });
                }
            }
        }

        findings.sort_by(|a, b| {
            b.level
                .cmp(&a.level)
                .then_with(|| a.actor.cmp(&b.actor))
                .then_with(|| a.field.cmp(&b.field))
        });

        DisclosureReport { user: user.clone(), allowed, non_allowed, findings }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privacy_access::{AccessControlList, Grant, PolicyDelta};
    use privacy_dataflow::{DiagramBuilder, SystemDataFlows};
    use privacy_lts::{generate_lts, GeneratorConfig};
    use privacy_model::{
        Actor, DataField, DataSchema, DatastoreDecl, SensitivityCategory, ServiceDecl, ServiceId,
    };

    /// The doctors'-surgery fixture of Case Study A, reduced to the elements
    /// the analysis needs.
    fn fixture() -> (Catalog, SystemDataFlows, AccessPolicy) {
        let mut catalog = Catalog::new();
        catalog.add_actor(Actor::role("Receptionist")).unwrap();
        catalog.add_actor(Actor::role("Doctor")).unwrap();
        catalog.add_actor(Actor::role("Administrator")).unwrap();
        catalog.add_actor(Actor::role("Researcher")).unwrap();
        catalog.add_field(DataField::identifier("Name")).unwrap();
        catalog.add_field(DataField::sensitive("Diagnosis")).unwrap();
        catalog
            .add_schema(DataSchema::new(
                "EHRSchema",
                [FieldId::new("Name"), FieldId::new("Diagnosis")],
            ))
            .unwrap();
        catalog.add_datastore(DatastoreDecl::new("EHR", "EHRSchema")).unwrap();
        catalog
            .add_service(ServiceDecl::new(
                "MedicalService",
                [ActorId::new("Receptionist"), ActorId::new("Doctor")],
            ))
            .unwrap();
        catalog
            .add_service(ServiceDecl::new(
                "MedicalResearchService",
                [ActorId::new("Administrator"), ActorId::new("Researcher")],
            ))
            .unwrap();

        let medical = DiagramBuilder::new("MedicalService")
            .collect("Doctor", ["Name", "Diagnosis"], "consultation", 1)
            .unwrap()
            .create("Doctor", "EHR", ["Name", "Diagnosis"], "record", 2)
            .unwrap()
            .build();
        let system = SystemDataFlows::new().with_diagram(medical).unwrap();

        let acl = AccessControlList::new()
            .with_grant(Grant::read_write_all("Doctor", "EHR"))
            .with_grant(Grant::read_all("Administrator", "EHR"));
        let policy = AccessPolicy::from_parts(acl, Default::default());
        (catalog, system, policy)
    }

    fn case_a_user() -> UserProfile {
        UserProfile::new("patient-1")
            .consents_to(ServiceId::new("MedicalService"))
            .with_category_sensitivity(FieldId::new("Diagnosis"), SensitivityCategory::High)
    }

    #[test]
    fn case_study_a_administrator_read_is_medium_risk() {
        let (catalog, system, policy) = fixture();
        let mut lts =
            generate_lts(&catalog, &system, &policy, &GeneratorConfig::default()).unwrap();
        let report = DisclosureAnalysis::new(&catalog, &policy).analyse(&mut lts, &case_a_user());

        // The non-allowed actors are exactly the Administrator and the
        // Researcher, as in the paper.
        assert_eq!(
            report.non_allowed_actors().iter().map(ActorId::as_str).collect::<Vec<_>>(),
            vec!["Administrator", "Researcher"]
        );

        // The Administrator's potential read of the Diagnosis is Medium.
        assert_eq!(
            report.risk_for(&ActorId::new("Administrator"), &FieldId::new("Diagnosis")),
            RiskLevel::Medium
        );
        assert_eq!(report.max_level(), RiskLevel::Medium);

        // The Name is not sensitive for this user, so its disclosure to the
        // administrator is Low.
        assert_eq!(
            report.risk_for(&ActorId::new("Administrator"), &FieldId::new("Name")),
            RiskLevel::Low
        );

        // The researcher has no access to the EHR, so no finding exists.
        assert_eq!(
            report.risk_for(&ActorId::new("Researcher"), &FieldId::new("Diagnosis")),
            RiskLevel::Low
        );

        // The LTS now carries annotated risk transitions.
        assert!(lts.stats().risk_transitions > 0);
        assert!(lts.transitions_at_risk(RiskLevel::Medium).count() > 0);
        let medium_findings = report.findings_at_least(RiskLevel::Medium);
        assert_eq!(medium_findings.len(), 1);
        assert!(!medium_findings[0].annotated_transitions().is_empty());
        assert!(medium_findings[0].exposed_states() > 0);
    }

    #[test]
    fn case_study_a_policy_change_reduces_the_risk_to_low() {
        let (catalog, system, policy) = fixture();
        // The designer revokes the Administrator's read access to the EHR.
        let delta = PolicyDelta::new().revoke("Administrator", Permission::Read, "EHR");
        let revised = policy.with_applied(&delta);

        let mut lts =
            generate_lts(&catalog, &system, &revised, &GeneratorConfig::default()).unwrap();
        let report = DisclosureAnalysis::new(&catalog, &revised).analyse(&mut lts, &case_a_user());

        assert_eq!(
            report.risk_for(&ActorId::new("Administrator"), &FieldId::new("Diagnosis")),
            RiskLevel::Low
        );
        assert_eq!(report.max_level(), RiskLevel::Low);
        assert!(report.is_empty());
        assert_eq!(lts.stats().risk_transitions, 0);
    }

    #[test]
    fn consenting_to_every_service_removes_all_findings() {
        let (catalog, system, policy) = fixture();
        let mut lts =
            generate_lts(&catalog, &system, &policy, &GeneratorConfig::default()).unwrap();
        let user = case_a_user().consents_to(ServiceId::new("MedicalResearchService"));
        let report = DisclosureAnalysis::new(&catalog, &policy).analyse(&mut lts, &user);
        // The administrator is now an allowed actor, so σ(d, a) = 0 and no
        // finding is produced.
        assert!(report.is_empty());
        assert_eq!(report.non_allowed_actors().len(), 0);
    }

    #[test]
    fn higher_likelihood_escalates_the_risk_level() {
        let (catalog, system, policy) = fixture();
        let mut lts =
            generate_lts(&catalog, &system, &policy, &GeneratorConfig::default()).unwrap();
        let mut likelihood = LikelihoodModel::standard();
        likelihood.set_override(
            "Administrator",
            "EHR",
            [crate::likelihood::Scenario::new(
                crate::likelihood::ScenarioKind::NonAgreedService,
                0.5,
            )
            .unwrap()],
        );
        let report = DisclosureAnalysis::new(&catalog, &policy)
            .with_likelihood(likelihood)
            .analyse(&mut lts, &case_a_user());
        assert_eq!(
            report.risk_for(&ActorId::new("Administrator"), &FieldId::new("Diagnosis")),
            RiskLevel::High
        );
    }

    #[test]
    fn report_display_lists_findings() {
        let (catalog, system, policy) = fixture();
        let mut lts =
            generate_lts(&catalog, &system, &policy, &GeneratorConfig::default()).unwrap();
        let report = DisclosureAnalysis::new(&catalog, &policy).analyse(&mut lts, &case_a_user());
        let text = report.to_string();
        assert!(text.contains("disclosure risk for patient-1"));
        assert!(text.contains("Administrator"));
        assert!(text.contains("Medium"));
        assert!(!report.is_empty());
    }
}
