//! Unwanted-disclosure risk analysis (Section III-A, Case Study A).
//!
//! For one user, the analysis determines the **non-allowed actors** (those
//! not involved in any service the user consented to), finds every field of
//! every datastore such an actor has read access to once the user's data is
//! stored there, computes the impact (the relative sensitivity `σ(d, a)`) and
//! the likelihood (the summed scenario probabilities) of the actor actually
//! reading the field, combines them through the risk matrix, and annotates
//! the LTS: existing `read` transitions by non-allowed actors receive a risk
//! label, and a *potential-read* risk transition is added from every state
//! where the actor could (but has not yet) identified the field.
//!
//! Two interchangeable execution strategies exist for every entry point:
//!
//! * **Index probes** ([`DisclosureAnalysis::analyse`],
//!   [`DisclosureAnalysis::assess`], [`DisclosureAnalysis::analyse_users_batch`])
//!   — the default. The exposed-state set of each (actor, field) pair is a
//!   posting-list lookup in a columnar [`LtsIndex`] and the existing-read
//!   probe is a per-(actor, action) posting list filtered by a field bitset,
//!   instead of one walk over all reachable states / all transitions per
//!   pair. One index build is amortised over every (datastore, field, actor)
//!   triple — and, with the batch API, over every user of a population.
//! * **Label scans** ([`DisclosureAnalysis::analyse_scan`],
//!   [`DisclosureAnalysis::assess_scan`]) — the original implementation,
//!   retained verbatim for differential testing. Both strategies produce
//!   identical reports (and, for the mutating entry points, identical
//!   annotated LTSs); the property tests in `tests/index_differential.rs`
//!   pin that equivalence over random models.

use crate::likelihood::LikelihoodModel;
use crate::matrix::RiskMatrix;
use crate::sensitivity::SensitivityModel;
use privacy_access::{AccessPolicy, Permission};
use privacy_lts::{ActionKind, Lts, LtsIndex, RiskAnnotation, TransitionId, TransitionLabel};
use privacy_model::{
    ActorId, Catalog, DatastoreId, FieldId, Likelihood, RiskLevel, Severity, UserProfile,
};
use std::collections::BTreeSet;
use std::fmt;

/// One unwanted-disclosure finding: a non-allowed actor that can identify a
/// field of a datastore the user's data reaches.
#[derive(Debug, Clone, PartialEq)]
pub struct DisclosureFinding {
    actor: ActorId,
    field: FieldId,
    datastore: DatastoreId,
    severity: Severity,
    likelihood: Likelihood,
    probability: f64,
    level: RiskLevel,
    annotated_transitions: Vec<TransitionId>,
    exposed_states: usize,
}

impl DisclosureFinding {
    /// The non-allowed actor.
    pub fn actor(&self) -> &ActorId {
        &self.actor
    }

    /// The field at risk.
    pub fn field(&self) -> &FieldId {
        &self.field
    }

    /// The datastore through which the actor can reach the field.
    pub fn datastore(&self) -> &DatastoreId {
        &self.datastore
    }

    /// The impact category.
    pub fn severity(&self) -> Severity {
        self.severity
    }

    /// The likelihood category.
    pub fn likelihood(&self) -> Likelihood {
        self.likelihood
    }

    /// The raw likelihood probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// The combined risk level.
    pub fn level(&self) -> RiskLevel {
        self.level
    }

    /// The transitions (existing reads and added potential reads) that were
    /// annotated with this finding's risk. The read-only entry points
    /// ([`DisclosureAnalysis::assess`] and the batch API) list the matching
    /// existing reads without annotating them and add no potential reads.
    pub fn annotated_transitions(&self) -> &[TransitionId] {
        &self.annotated_transitions
    }

    /// The number of reachable states in which the actor could identify the
    /// field.
    pub fn exposed_states(&self) -> usize {
        self.exposed_states
    }
}

impl fmt::Display for DisclosureFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: non-allowed actor {} can read {} from {} \
             (impact {}, likelihood {} [p={:.3}], {} exposed states)",
            self.level,
            self.actor,
            self.field,
            self.datastore,
            self.severity,
            self.likelihood,
            self.probability,
            self.exposed_states
        )
    }
}

/// The result of the unwanted-disclosure analysis for one user.
#[derive(Debug, Clone, PartialEq)]
pub struct DisclosureReport {
    user: UserProfile,
    allowed: BTreeSet<ActorId>,
    non_allowed: BTreeSet<ActorId>,
    findings: Vec<DisclosureFinding>,
}

impl DisclosureReport {
    /// The user the analysis was run for.
    pub fn user(&self) -> &UserProfile {
        &self.user
    }

    /// The allowed actors derived from the user's consent.
    pub fn allowed_actors(&self) -> &BTreeSet<ActorId> {
        &self.allowed
    }

    /// The non-allowed actors.
    pub fn non_allowed_actors(&self) -> &BTreeSet<ActorId> {
        &self.non_allowed
    }

    /// All findings, sorted by descending risk level.
    pub fn findings(&self) -> &[DisclosureFinding] {
        &self.findings
    }

    /// The findings at or above the given level.
    pub fn findings_at_least(&self, level: RiskLevel) -> Vec<&DisclosureFinding> {
        self.findings.iter().filter(|f| f.level().at_least(level)).collect()
    }

    /// The highest risk level found (Low when there are no findings).
    pub fn max_level(&self) -> RiskLevel {
        self.findings.iter().map(DisclosureFinding::level).max().unwrap_or(RiskLevel::Low)
    }

    /// The risk level for a specific actor and field (Low if no finding
    /// exists — no exposure means no unwanted-disclosure risk).
    pub fn risk_for(&self, actor: &ActorId, field: &FieldId) -> RiskLevel {
        self.findings
            .iter()
            .filter(|f| f.actor() == actor && f.field() == field)
            .map(DisclosureFinding::level)
            .max()
            .unwrap_or(RiskLevel::Low)
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.findings.len()
    }

    /// Returns `true` if no unwanted disclosure was found.
    pub fn is_empty(&self) -> bool {
        self.findings.is_empty()
    }
}

impl fmt::Display for DisclosureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "disclosure risk for {}: {} findings (max level {})",
            self.user.id(),
            self.findings.len(),
            self.max_level()
        )?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

/// The unwanted-disclosure analysis.
#[derive(Debug, Clone)]
pub struct DisclosureAnalysis<'a> {
    catalog: &'a Catalog,
    policy: &'a AccessPolicy,
    matrix: RiskMatrix,
    likelihood: LikelihoodModel,
}

/// The risk dimensions of one (datastore, field, actor) triple, computed
/// identically by every strategy.
struct TripleRisk {
    severity: Severity,
    likelihood: Likelihood,
    probability: f64,
    level: RiskLevel,
    annotation: RiskAnnotation,
}

impl<'a> DisclosureAnalysis<'a> {
    /// Creates an analysis with the standard risk matrix and likelihood
    /// model.
    pub fn new(catalog: &'a Catalog, policy: &'a AccessPolicy) -> Self {
        DisclosureAnalysis {
            catalog,
            policy,
            matrix: RiskMatrix::standard(),
            likelihood: LikelihoodModel::standard(),
        }
    }

    /// Builder-style: overrides the risk matrix.
    pub fn with_matrix(mut self, matrix: RiskMatrix) -> Self {
        self.matrix = matrix;
        self
    }

    /// Builder-style: overrides the likelihood model.
    pub fn with_likelihood(mut self, likelihood: LikelihoodModel) -> Self {
        self.likelihood = likelihood;
        self
    }

    /// The allowed / non-allowed actor partition for one user.
    fn actor_partition(
        &self,
        sensitivity: &SensitivityModel,
    ) -> (BTreeSet<ActorId>, BTreeSet<ActorId>) {
        let allowed: BTreeSet<ActorId> = sensitivity.allowed_actors().clone();
        let non_allowed: BTreeSet<ActorId> = self
            .catalog
            .identifying_actors()
            .map(|a| a.id().clone())
            .filter(|a| !allowed.contains(a))
            .collect();
        (allowed, non_allowed)
    }

    /// Computes the impact/likelihood dimensions and the annotation of one
    /// (datastore, field, actor) triple.
    fn triple_risk(
        &self,
        sensitivity: &SensitivityModel,
        datastore: &DatastoreId,
        field: &FieldId,
        actor: &ActorId,
    ) -> TripleRisk {
        let impact = sensitivity.relative_sensitivity(field, actor);
        let probability = self.likelihood.probability(actor, datastore);
        let severity = self.matrix.categorise_impact(impact);
        let likelihood_cat = self.matrix.categorise_likelihood(probability);
        let level = self.matrix.level(severity, likelihood_cat);
        let annotation = RiskAnnotation::dimensions(severity, likelihood_cat, level)
            .with_score(impact.value().max(probability))
            .with_note(format!("unwanted disclosure of {field} to non-allowed actor {actor}"));
        TripleRisk { severity, likelihood: likelihood_cat, probability, level, annotation }
    }

    /// Runs the analysis for one user, annotating the LTS in place. Builds a
    /// columnar analysis index of the LTS and probes it; behaviourally
    /// identical to [`DisclosureAnalysis::analyse_scan`].
    pub fn analyse(&self, lts: &mut Lts, user: &UserProfile) -> DisclosureReport {
        let index = LtsIndex::build(lts);
        self.analyse_with_index(lts, &index, user)
    }

    /// Like [`DisclosureAnalysis::analyse`] but over a prebuilt index. The
    /// index must have been built from `lts` in its current state: both the
    /// exposed-state sets and the existing-read probes describe that
    /// snapshot (risk transitions this call adds are tracked separately so
    /// later triples still observe them, exactly as the scan path's repeated
    /// scans would).
    pub fn analyse_with_index(
        &self,
        lts: &mut Lts,
        index: &LtsIndex,
        user: &UserProfile,
    ) -> DisclosureReport {
        let sensitivity = SensitivityModel::new(self.catalog, user);
        let (allowed, non_allowed) = self.actor_partition(&sensitivity);

        let mut findings = Vec::new();
        let space = lts.space().clone();
        // Risk transitions added by *this* analysis, with the (actor, field)
        // pair their label carries: the scan path re-discovers them in its
        // per-triple transition scans, so the index path must too.
        let mut delta: Vec<(ActorId, FieldId, TransitionId)> = Vec::new();

        for datastore in self.catalog.datastores() {
            let schema = match self.catalog.schema(datastore.schema()) {
                Some(schema) => schema,
                None => continue,
            };
            for field in schema.fields() {
                for actor in &non_allowed {
                    if !self.policy.can(actor, Permission::Read, datastore.id(), field) {
                        continue;
                    }
                    // Which reachable states expose the field to this actor?
                    // (Index probe over the build-time snapshot — the scan
                    // path equally snapshots `reachable()` up front.)
                    let exposed = index.states_where_could(actor, field);
                    if exposed.is_empty() {
                        continue;
                    }

                    let risk = self.triple_risk(&sensitivity, datastore.id(), field, actor);
                    let mut annotated = Vec::new();

                    // Annotate existing read transitions by this actor on
                    // this field: the snapshot's posting list, then any risk
                    // transition this analysis already added for the pair.
                    let existing: Vec<TransitionId> = existing_reads(index, actor, field)
                        .into_iter()
                        .chain(
                            delta
                                .iter()
                                .filter_map(|(a, f, id)| (a == actor && f == field).then_some(*id)),
                        )
                        .collect();
                    for id in existing {
                        lts.annotate(id, risk.annotation.clone());
                        annotated.push(id);
                    }

                    // Add potential-read risk transitions from every exposed
                    // state where the actor has not yet identified the field.
                    for state_id in exposed {
                        let state = lts.state(*state_id).clone();
                        if state.has(&space, actor, field) {
                            continue;
                        }
                        let target = state.with_has(&space, actor, field);
                        let target_id = lts.intern(target);
                        let label = TransitionLabel::new(
                            ActionKind::Read,
                            actor.clone(),
                            [field.clone()],
                            Some(datastore.schema().clone()),
                        )
                        .with_risk(risk.annotation.clone());
                        let before = lts.transition_count();
                        let tid = lts.add_risk_transition(*state_id, target_id, label);
                        if lts.transition_count() > before {
                            delta.push((actor.clone(), field.clone(), tid));
                        }
                        annotated.push(tid);
                    }

                    findings.push(DisclosureFinding {
                        actor: actor.clone(),
                        field: field.clone(),
                        datastore: datastore.id().clone(),
                        severity: risk.severity,
                        likelihood: risk.likelihood,
                        probability: risk.probability,
                        level: risk.level,
                        annotated_transitions: annotated,
                        exposed_states: exposed.len(),
                    });
                }
            }
        }

        sort_findings(&mut findings);
        DisclosureReport { user: user.clone(), allowed, non_allowed, findings }
    }

    /// Read-only disclosure assessment over a prebuilt index: identical
    /// findings (actors, fields, datastores, risk dimensions, exposed-state
    /// counts) to [`DisclosureAnalysis::analyse`], except that existing read
    /// transitions are *listed* rather than annotated and no potential-read
    /// risk transitions are added. This is the per-user unit of the batch
    /// API, where many users share one immutable index — the snapshot
    /// answers every probe, so no LTS reference is needed.
    pub fn assess(&self, index: &LtsIndex, user: &UserProfile) -> DisclosureReport {
        let sensitivity = SensitivityModel::new(self.catalog, user);
        let (allowed, non_allowed) = self.actor_partition(&sensitivity);

        let mut findings = Vec::new();
        for datastore in self.catalog.datastores() {
            let schema = match self.catalog.schema(datastore.schema()) {
                Some(schema) => schema,
                None => continue,
            };
            for field in schema.fields() {
                for actor in &non_allowed {
                    if !self.policy.can(actor, Permission::Read, datastore.id(), field) {
                        continue;
                    }
                    // Only the exposed-state *count* is reported, so the O(1)
                    // per-variable counter suffices — no list materialises.
                    let exposed = index.count_states_of_variable(
                        actor,
                        field,
                        privacy_lts::space::VarKind::Could,
                    );
                    if exposed == 0 {
                        continue;
                    }
                    let risk = self.triple_risk(&sensitivity, datastore.id(), field, actor);
                    let annotated = existing_reads(index, actor, field);
                    findings.push(DisclosureFinding {
                        actor: actor.clone(),
                        field: field.clone(),
                        datastore: datastore.id().clone(),
                        severity: risk.severity,
                        likelihood: risk.likelihood,
                        probability: risk.probability,
                        level: risk.level,
                        annotated_transitions: annotated,
                        exposed_states: exposed,
                    });
                }
            }
        }

        sort_findings(&mut findings);
        DisclosureReport { user: user.clone(), allowed, non_allowed, findings }
    }

    /// The scan-strategy counterpart of [`DisclosureAnalysis::assess`],
    /// retained for differential testing: walks reachable states and the
    /// transition relation per (datastore, field, actor) triple.
    pub fn assess_scan(&self, lts: &Lts, user: &UserProfile) -> DisclosureReport {
        let sensitivity = SensitivityModel::new(self.catalog, user);
        let (allowed, non_allowed) = self.actor_partition(&sensitivity);

        let mut findings = Vec::new();
        let space = lts.space().clone();
        let reachable = lts.reachable();

        for datastore in self.catalog.datastores() {
            let schema = match self.catalog.schema(datastore.schema()) {
                Some(schema) => schema,
                None => continue,
            };
            for field in schema.fields() {
                for actor in &non_allowed {
                    if !self.policy.can(actor, Permission::Read, datastore.id(), field) {
                        continue;
                    }
                    let exposed: Vec<_> = reachable
                        .iter()
                        .copied()
                        .filter(|id| lts.state(*id).could(&space, actor, field))
                        .collect();
                    if exposed.is_empty() {
                        continue;
                    }
                    let risk = self.triple_risk(&sensitivity, datastore.id(), field, actor);
                    let annotated: Vec<TransitionId> = lts
                        .transitions()
                        .filter(|(_, t)| {
                            t.label().action() == ActionKind::Read
                                && t.label().actor() == actor
                                && t.label().involves_field(field)
                        })
                        .map(|(id, _)| id)
                        .collect();
                    findings.push(DisclosureFinding {
                        actor: actor.clone(),
                        field: field.clone(),
                        datastore: datastore.id().clone(),
                        severity: risk.severity,
                        likelihood: risk.likelihood,
                        probability: risk.probability,
                        level: risk.level,
                        annotated_transitions: annotated,
                        exposed_states: exposed.len(),
                    });
                }
            }
        }

        sort_findings(&mut findings);
        DisclosureReport { user: user.clone(), allowed, non_allowed, findings }
    }

    /// Assesses many user profiles over **one** LTS + index, fanning the
    /// population out over `threads` crossbeam scoped threads (`None` = one
    /// per CPU). Reports come back in user order and are identical to
    /// calling [`DisclosureAnalysis::assess`] per user — the parallelism
    /// only partitions the user list.
    pub fn analyse_users_batch(
        &self,
        index: &LtsIndex,
        users: &[UserProfile],
        threads: Option<usize>,
    ) -> Vec<DisclosureReport> {
        privacy_lts::batch::parallel_map(users, threads, |user| self.assess(index, user))
    }

    /// The original full-scan mutating analysis, retained for differential
    /// testing and as the reference semantics of
    /// [`DisclosureAnalysis::analyse`].
    pub fn analyse_scan(&self, lts: &mut Lts, user: &UserProfile) -> DisclosureReport {
        let sensitivity = SensitivityModel::new(self.catalog, user);
        let (allowed, non_allowed) = self.actor_partition(&sensitivity);

        let mut findings = Vec::new();
        let space = lts.space().clone();
        let reachable = lts.reachable();

        for datastore in self.catalog.datastores() {
            let schema = match self.catalog.schema(datastore.schema()) {
                Some(schema) => schema,
                None => continue,
            };
            for field in schema.fields() {
                for actor in &non_allowed {
                    if !self.policy.can(actor, Permission::Read, datastore.id(), field) {
                        continue;
                    }
                    // Which reachable states expose the field to this actor?
                    let exposed: Vec<_> = reachable
                        .iter()
                        .copied()
                        .filter(|id| lts.state(*id).could(&space, actor, field))
                        .collect();
                    if exposed.is_empty() {
                        continue;
                    }

                    let risk = self.triple_risk(&sensitivity, datastore.id(), field, actor);
                    let mut annotated = Vec::new();

                    // Annotate existing read transitions by this actor on
                    // this field.
                    let existing: Vec<TransitionId> = lts
                        .transitions()
                        .filter(|(_, t)| {
                            t.label().action() == ActionKind::Read
                                && t.label().actor() == actor
                                && t.label().involves_field(field)
                        })
                        .map(|(id, _)| id)
                        .collect();
                    for id in existing {
                        lts.annotate(id, risk.annotation.clone());
                        annotated.push(id);
                    }

                    // Add potential-read risk transitions from every exposed
                    // state where the actor has not yet identified the field.
                    for state_id in &exposed {
                        let state = lts.state(*state_id).clone();
                        if state.has(&space, actor, field) {
                            continue;
                        }
                        let target = state.with_has(&space, actor, field);
                        let target_id = lts.intern(target);
                        let label = TransitionLabel::new(
                            ActionKind::Read,
                            actor.clone(),
                            [field.clone()],
                            Some(datastore.schema().clone()),
                        )
                        .with_risk(risk.annotation.clone());
                        let tid = lts.add_risk_transition(*state_id, target_id, label);
                        annotated.push(tid);
                    }

                    findings.push(DisclosureFinding {
                        actor: actor.clone(),
                        field: field.clone(),
                        datastore: datastore.id().clone(),
                        severity: risk.severity,
                        likelihood: risk.likelihood,
                        probability: risk.probability,
                        level: risk.level,
                        annotated_transitions: annotated,
                        exposed_states: exposed.len(),
                    });
                }
            }
        }

        sort_findings(&mut findings);
        DisclosureReport { user: user.clone(), allowed, non_allowed, findings }
    }
}

/// The snapshot's existing `read` transitions by `actor` involving `field`,
/// ascending — the per-(actor, action) posting list filtered by the field's
/// bitset bit. The field resolves through the interner once per call, not
/// once per posting entry; an unknown field short-circuits to empty.
fn existing_reads(index: &LtsIndex, actor: &ActorId, field: &FieldId) -> Vec<TransitionId> {
    index
        .field_index(field)
        .map(|field_idx| {
            index
                .transitions_by_actor_of_kind(actor, ActionKind::Read)
                .iter()
                .filter(|&&tx| index.involves_field(tx, field_idx))
                .map(|&tx| TransitionId(tx as usize))
                .collect()
        })
        .unwrap_or_default()
}

fn sort_findings(findings: &mut [DisclosureFinding]) {
    findings.sort_by(|a, b| {
        b.level
            .cmp(&a.level)
            .then_with(|| a.actor.cmp(&b.actor))
            .then_with(|| a.field.cmp(&b.field))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use privacy_access::{AccessControlList, Grant, PolicyDelta};
    use privacy_dataflow::{DiagramBuilder, SystemDataFlows};
    use privacy_lts::{generate_lts, GeneratorConfig};
    use privacy_model::{
        Actor, DataField, DataSchema, DatastoreDecl, SensitivityCategory, ServiceDecl, ServiceId,
    };

    /// The doctors'-surgery fixture of Case Study A, reduced to the elements
    /// the analysis needs.
    fn fixture() -> (Catalog, SystemDataFlows, AccessPolicy) {
        let mut catalog = Catalog::new();
        catalog.add_actor(Actor::role("Receptionist")).unwrap();
        catalog.add_actor(Actor::role("Doctor")).unwrap();
        catalog.add_actor(Actor::role("Administrator")).unwrap();
        catalog.add_actor(Actor::role("Researcher")).unwrap();
        catalog.add_field(DataField::identifier("Name")).unwrap();
        catalog.add_field(DataField::sensitive("Diagnosis")).unwrap();
        catalog
            .add_schema(DataSchema::new(
                "EHRSchema",
                [FieldId::new("Name"), FieldId::new("Diagnosis")],
            ))
            .unwrap();
        catalog.add_datastore(DatastoreDecl::new("EHR", "EHRSchema")).unwrap();
        catalog
            .add_service(ServiceDecl::new(
                "MedicalService",
                [ActorId::new("Receptionist"), ActorId::new("Doctor")],
            ))
            .unwrap();
        catalog
            .add_service(ServiceDecl::new(
                "MedicalResearchService",
                [ActorId::new("Administrator"), ActorId::new("Researcher")],
            ))
            .unwrap();

        let medical = DiagramBuilder::new("MedicalService")
            .collect("Doctor", ["Name", "Diagnosis"], "consultation", 1)
            .unwrap()
            .create("Doctor", "EHR", ["Name", "Diagnosis"], "record", 2)
            .unwrap()
            .build();
        let system = SystemDataFlows::new().with_diagram(medical).unwrap();

        let acl = AccessControlList::new()
            .with_grant(Grant::read_write_all("Doctor", "EHR"))
            .with_grant(Grant::read_all("Administrator", "EHR"));
        let policy = AccessPolicy::from_parts(acl, Default::default());
        (catalog, system, policy)
    }

    fn case_a_user() -> UserProfile {
        UserProfile::new("patient-1")
            .consents_to(ServiceId::new("MedicalService"))
            .with_category_sensitivity(FieldId::new("Diagnosis"), SensitivityCategory::High)
    }

    /// Runs the indexed and scan analyses on separate LTS copies and
    /// asserts both the reports and the annotated LTSs agree.
    fn analyse_both(
        catalog: &Catalog,
        policy: &AccessPolicy,
        lts: &mut Lts,
        analysis: &DisclosureAnalysis<'_>,
        user: &UserProfile,
    ) -> DisclosureReport {
        let _ = (catalog, policy);
        let mut scan_lts = lts.clone();
        let report = analysis.analyse(lts, user);
        let scan_report = analysis.analyse_scan(&mut scan_lts, user);
        assert_eq!(report, scan_report, "indexed and scan reports diverge");
        assert_eq!(*lts, scan_lts, "indexed and scan LTSs diverge");
        report
    }

    #[test]
    fn case_study_a_administrator_read_is_medium_risk() {
        let (catalog, system, policy) = fixture();
        let mut lts =
            generate_lts(&catalog, &system, &policy, &GeneratorConfig::default()).unwrap();
        let analysis = DisclosureAnalysis::new(&catalog, &policy);
        let report = analyse_both(&catalog, &policy, &mut lts, &analysis, &case_a_user());

        // The non-allowed actors are exactly the Administrator and the
        // Researcher, as in the paper.
        assert_eq!(
            report.non_allowed_actors().iter().map(ActorId::as_str).collect::<Vec<_>>(),
            vec!["Administrator", "Researcher"]
        );

        // The Administrator's potential read of the Diagnosis is Medium.
        assert_eq!(
            report.risk_for(&ActorId::new("Administrator"), &FieldId::new("Diagnosis")),
            RiskLevel::Medium
        );
        assert_eq!(report.max_level(), RiskLevel::Medium);

        // The Name is not sensitive for this user, so its disclosure to the
        // administrator is Low.
        assert_eq!(
            report.risk_for(&ActorId::new("Administrator"), &FieldId::new("Name")),
            RiskLevel::Low
        );

        // The researcher has no access to the EHR, so no finding exists.
        assert_eq!(
            report.risk_for(&ActorId::new("Researcher"), &FieldId::new("Diagnosis")),
            RiskLevel::Low
        );

        // The LTS now carries annotated risk transitions.
        assert!(lts.stats().risk_transitions > 0);
        assert!(lts.transitions_at_risk(RiskLevel::Medium).count() > 0);
        let medium_findings = report.findings_at_least(RiskLevel::Medium);
        assert_eq!(medium_findings.len(), 1);
        assert!(!medium_findings[0].annotated_transitions().is_empty());
        assert!(medium_findings[0].exposed_states() > 0);
    }

    #[test]
    fn case_study_a_policy_change_reduces_the_risk_to_low() {
        let (catalog, system, policy) = fixture();
        // The designer revokes the Administrator's read access to the EHR.
        let delta = PolicyDelta::new().revoke("Administrator", Permission::Read, "EHR");
        let revised = policy.with_applied(&delta);

        let mut lts =
            generate_lts(&catalog, &system, &revised, &GeneratorConfig::default()).unwrap();
        let analysis = DisclosureAnalysis::new(&catalog, &revised);
        let report = analyse_both(&catalog, &revised, &mut lts, &analysis, &case_a_user());

        assert_eq!(
            report.risk_for(&ActorId::new("Administrator"), &FieldId::new("Diagnosis")),
            RiskLevel::Low
        );
        assert_eq!(report.max_level(), RiskLevel::Low);
        assert!(report.is_empty());
        assert_eq!(lts.stats().risk_transitions, 0);
    }

    #[test]
    fn consenting_to_every_service_removes_all_findings() {
        let (catalog, system, policy) = fixture();
        let mut lts =
            generate_lts(&catalog, &system, &policy, &GeneratorConfig::default()).unwrap();
        let user = case_a_user().consents_to(ServiceId::new("MedicalResearchService"));
        let analysis = DisclosureAnalysis::new(&catalog, &policy);
        let report = analyse_both(&catalog, &policy, &mut lts, &analysis, &user);
        // The administrator is now an allowed actor, so σ(d, a) = 0 and no
        // finding is produced.
        assert!(report.is_empty());
        assert_eq!(report.non_allowed_actors().len(), 0);
    }

    #[test]
    fn higher_likelihood_escalates_the_risk_level() {
        let (catalog, system, policy) = fixture();
        let mut lts =
            generate_lts(&catalog, &system, &policy, &GeneratorConfig::default()).unwrap();
        let mut likelihood = LikelihoodModel::standard();
        likelihood.set_override(
            "Administrator",
            "EHR",
            [crate::likelihood::Scenario::new(
                crate::likelihood::ScenarioKind::NonAgreedService,
                0.5,
            )
            .unwrap()],
        );
        let analysis = DisclosureAnalysis::new(&catalog, &policy).with_likelihood(likelihood);
        let report = analyse_both(&catalog, &policy, &mut lts, &analysis, &case_a_user());
        assert_eq!(
            report.risk_for(&ActorId::new("Administrator"), &FieldId::new("Diagnosis")),
            RiskLevel::High
        );
    }

    #[test]
    fn report_display_lists_findings() {
        let (catalog, system, policy) = fixture();
        let mut lts =
            generate_lts(&catalog, &system, &policy, &GeneratorConfig::default()).unwrap();
        let report = DisclosureAnalysis::new(&catalog, &policy).analyse(&mut lts, &case_a_user());
        let text = report.to_string();
        assert!(text.contains("disclosure risk for patient-1"));
        assert!(text.contains("Administrator"));
        assert!(text.contains("Medium"));
        assert!(!report.is_empty());
    }

    #[test]
    fn assess_matches_assess_scan_and_does_not_mutate() {
        let (catalog, system, policy) = fixture();
        let lts = generate_lts(&catalog, &system, &policy, &GeneratorConfig::default()).unwrap();
        let index = LtsIndex::build(&lts);
        let analysis = DisclosureAnalysis::new(&catalog, &policy);
        let before = lts.clone();
        let assessed = analysis.assess(&index, &case_a_user());
        let scanned = analysis.assess_scan(&lts, &case_a_user());
        assert_eq!(assessed, scanned);
        assert_eq!(lts, before, "read-only assessment must not mutate the LTS");

        // The read-only findings agree with the mutating analysis on every
        // risk dimension (only the annotated-transition lists differ, since
        // no potential reads are added).
        let mut mutated = lts.clone();
        let full = analysis.analyse(&mut mutated, &case_a_user());
        assert_eq!(assessed.len(), full.len());
        for (a, b) in assessed.findings().iter().zip(full.findings()) {
            assert_eq!(
                (a.actor(), a.field(), a.datastore()),
                (b.actor(), b.field(), b.datastore())
            );
            assert_eq!(a.level(), b.level());
            assert_eq!(a.severity(), b.severity());
            assert_eq!(a.likelihood(), b.likelihood());
            assert_eq!(a.exposed_states(), b.exposed_states());
        }
    }

    #[test]
    fn batch_reports_match_per_user_assessments_in_order() {
        let (catalog, system, policy) = fixture();
        let lts = generate_lts(&catalog, &system, &policy, &GeneratorConfig::default()).unwrap();
        let index = LtsIndex::build(&lts);
        let analysis = DisclosureAnalysis::new(&catalog, &policy);
        let users = vec![
            case_a_user(),
            case_a_user().consents_to(ServiceId::new("MedicalResearchService")),
            UserProfile::new("patient-2"),
        ];
        let expected: Vec<DisclosureReport> =
            users.iter().map(|user| analysis.assess(&index, user)).collect();
        for threads in [None, Some(1), Some(2), Some(4)] {
            assert_eq!(analysis.analyse_users_batch(&index, &users, threads), expected);
        }
        assert!(analysis.analyse_users_batch(&index, &[], Some(2)).is_empty());
    }
}
