//! The likelihood dimension of disclosure risk.
//!
//! Section III-A narrows the likelihood question to the `read` action: a
//! non-allowed actor with read access to stored personal data may identify it
//! through a handful of uncorrelated scenarios — accidentally while querying
//! for someone else, while previewing data to be deleted, or by starting a
//! service the user never agreed to. *"The resulting probability will be the
//! sum of the probabilities of these scenarios occurring, as they are
//! intrinsically uncorrelated situations."*

use privacy_model::{ActorId, DatastoreId, ModelError};
use std::collections::BTreeMap;
use std::fmt;

/// The scenario types the paper enumerates, plus an extension point.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum ScenarioKind {
    /// A datastore query returns a small subset of users and the actor
    /// identifies fields while searching for a different user.
    AccidentalAccess,
    /// The system shows data to an actor before deletion.
    DeletePreview,
    /// The actor begins the execution of a service the user did not agree to
    /// use.
    NonAgreedService,
    /// Any other, deployment-specific scenario.
    Custom(String),
}

impl fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioKind::AccidentalAccess => f.write_str("accidental access"),
            ScenarioKind::DeletePreview => f.write_str("delete preview"),
            ScenarioKind::NonAgreedService => f.write_str("non-agreed service execution"),
            ScenarioKind::Custom(name) => f.write_str(name),
        }
    }
}

/// One scenario with its probability of occurring.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    kind: ScenarioKind,
    probability: f64,
}

impl Scenario {
    /// Creates a scenario.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::OutOfRange`] if the probability is not in
    /// `[0, 1]`.
    pub fn new(kind: ScenarioKind, probability: f64) -> Result<Self, ModelError> {
        if probability.is_nan() || !(0.0..=1.0).contains(&probability) {
            return Err(ModelError::OutOfRange {
                what: "scenario probability",
                value: probability,
                min: 0.0,
                max: 1.0,
            });
        }
        Ok(Scenario { kind, probability })
    }

    /// The scenario kind.
    pub fn kind(&self) -> &ScenarioKind {
        &self.kind
    }

    /// The probability of the scenario occurring.
    pub fn probability(&self) -> f64 {
        self.probability
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (p={:.3})", self.kind, self.probability)
    }
}

/// The likelihood model: default scenarios plus per-(actor, datastore)
/// overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct LikelihoodModel {
    default_scenarios: Vec<Scenario>,
    overrides: BTreeMap<(ActorId, DatastoreId), Vec<Scenario>>,
}

impl LikelihoodModel {
    /// An empty model (zero likelihood everywhere).
    pub fn empty() -> Self {
        LikelihoodModel { default_scenarios: Vec::new(), overrides: BTreeMap::new() }
    }

    /// The default model used throughout the case studies: a small
    /// accidental-access probability plus an even smaller delete-preview
    /// probability, which categorises as *Low* likelihood.
    pub fn standard() -> Self {
        LikelihoodModel {
            default_scenarios: vec![
                Scenario::new(ScenarioKind::AccidentalAccess, 0.05).expect("constant"),
                Scenario::new(ScenarioKind::DeletePreview, 0.02).expect("constant"),
            ],
            overrides: BTreeMap::new(),
        }
    }

    /// Creates a model with the given default scenarios.
    pub fn with_defaults(scenarios: impl IntoIterator<Item = Scenario>) -> Self {
        LikelihoodModel {
            default_scenarios: scenarios.into_iter().collect(),
            overrides: BTreeMap::new(),
        }
    }

    /// Adds a default scenario that applies to every (actor, datastore)
    /// without an override.
    pub fn add_default(&mut self, scenario: Scenario) -> &mut Self {
        self.default_scenarios.push(scenario);
        self
    }

    /// Sets the scenarios for a specific actor and datastore, replacing the
    /// defaults for that pair.
    pub fn set_override(
        &mut self,
        actor: impl Into<ActorId>,
        datastore: impl Into<DatastoreId>,
        scenarios: impl IntoIterator<Item = Scenario>,
    ) -> &mut Self {
        self.overrides.insert((actor.into(), datastore.into()), scenarios.into_iter().collect());
        self
    }

    /// The scenarios that apply to an actor reading from a datastore.
    pub fn scenarios_for(&self, actor: &ActorId, datastore: &DatastoreId) -> &[Scenario] {
        self.overrides
            .get(&(actor.clone(), datastore.clone()))
            .map(Vec::as_slice)
            .unwrap_or(&self.default_scenarios)
    }

    /// The total probability that the actor identifies data in the datastore
    /// outside of an agreed service: the sum of the scenario probabilities,
    /// capped at 1.
    pub fn probability(&self, actor: &ActorId, datastore: &DatastoreId) -> f64 {
        self.scenarios_for(actor, datastore).iter().map(Scenario::probability).sum::<f64>().min(1.0)
    }

    /// The default scenarios.
    pub fn default_scenarios(&self) -> &[Scenario] {
        &self.default_scenarios
    }
}

impl Default for LikelihoodModel {
    fn default() -> Self {
        LikelihoodModel::standard()
    }
}

impl fmt::Display for LikelihoodModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "likelihood model: {} default scenarios, {} overrides",
            self.default_scenarios.len(),
            self.overrides.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admin() -> ActorId {
        ActorId::new("Administrator")
    }

    fn ehr() -> DatastoreId {
        DatastoreId::new("EHR")
    }

    #[test]
    fn scenario_probabilities_are_validated() {
        assert!(Scenario::new(ScenarioKind::AccidentalAccess, 0.5).is_ok());
        assert!(Scenario::new(ScenarioKind::AccidentalAccess, -0.1).is_err());
        assert!(Scenario::new(ScenarioKind::AccidentalAccess, 1.1).is_err());
        assert!(Scenario::new(ScenarioKind::AccidentalAccess, f64::NAN).is_err());
    }

    #[test]
    fn standard_model_sums_to_a_low_probability() {
        let model = LikelihoodModel::standard();
        let p = model.probability(&admin(), &ehr());
        assert!((p - 0.07).abs() < 1e-12);
        assert_eq!(model.default_scenarios().len(), 2);
    }

    #[test]
    fn empty_model_gives_zero() {
        assert_eq!(LikelihoodModel::empty().probability(&admin(), &ehr()), 0.0);
    }

    #[test]
    fn overrides_replace_defaults_for_their_pair_only() {
        let mut model = LikelihoodModel::standard();
        model.set_override(
            "Administrator",
            "EHR",
            [
                Scenario::new(ScenarioKind::NonAgreedService, 0.4).unwrap(),
                Scenario::new(ScenarioKind::AccidentalAccess, 0.2).unwrap(),
            ],
        );
        assert!((model.probability(&admin(), &ehr()) - 0.6).abs() < 1e-12);
        // Other pairs keep the defaults.
        assert!((model.probability(&ActorId::new("Researcher"), &ehr()) - 0.07).abs() < 1e-12);
        assert_eq!(model.scenarios_for(&admin(), &ehr()).len(), 2);
    }

    #[test]
    fn probability_is_capped_at_one() {
        let model = LikelihoodModel::with_defaults([
            Scenario::new(ScenarioKind::AccidentalAccess, 0.9).unwrap(),
            Scenario::new(ScenarioKind::NonAgreedService, 0.9).unwrap(),
        ]);
        assert_eq!(model.probability(&admin(), &ehr()), 1.0);
    }

    #[test]
    fn custom_scenarios_and_display() {
        let scenario =
            Scenario::new(ScenarioKind::Custom("backup restore".to_owned()), 0.01).unwrap();
        assert_eq!(scenario.to_string(), "backup restore (p=0.010)");
        assert_eq!(scenario.kind(), &ScenarioKind::Custom("backup restore".to_owned()));
        let mut model = LikelihoodModel::empty();
        model.add_default(scenario);
        assert!(model.to_string().contains("1 default scenarios"));
        assert_eq!(ScenarioKind::DeletePreview.to_string(), "delete preview");
        assert_eq!(ScenarioKind::NonAgreedService.to_string(), "non-agreed service execution");
    }
}
