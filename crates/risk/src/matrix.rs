//! Categorisation of the two risk dimensions and the combining risk table.
//!
//! Section III-A: *"we categorise the impact and likelihood into categories
//! (low, medium and high), and then use a table to determine a risk level.
//! The categorisation of the impact and likelihood, as well as the table to
//! determine the risk level, should be specified according to the type of
//! service."* [`RiskMatrix`] is that table, with a sensible healthcare
//! default that reproduces the paper's Case Study A outcome (High impact ×
//! Low likelihood → Medium risk).

use privacy_model::{Likelihood, ModelError, RiskLevel, Sensitivity, Severity};
use std::fmt;

/// A 3×3 table mapping (impact, likelihood) to a risk level, together with
/// the thresholds used to categorise the raw quantitative values.
#[derive(Debug, Clone, PartialEq)]
pub struct RiskMatrix {
    /// `table[impact][likelihood]`.
    table: [[RiskLevel; 3]; 3],
    /// Impact thresholds: values `>= medium` are Medium, `>= high` are High.
    impact_medium: f64,
    impact_high: f64,
    /// Likelihood thresholds.
    likelihood_medium: f64,
    likelihood_high: f64,
}

impl RiskMatrix {
    /// The default matrix:
    ///
    /// | impact \ likelihood | Low | Medium | High |
    /// |---------------------|-----|--------|------|
    /// | Low                 | Low | Low    | Medium |
    /// | Medium              | Low | Medium | High |
    /// | High                | Medium | High | High |
    ///
    /// with the standard third-based thresholds on both dimensions.
    pub fn standard() -> Self {
        use RiskLevel::{High, Low, Medium};
        RiskMatrix {
            table: [[Low, Low, Medium], [Low, Medium, High], [Medium, High, High]],
            impact_medium: 1.0 / 3.0,
            impact_high: 2.0 / 3.0,
            likelihood_medium: 1.0 / 3.0,
            likelihood_high: 2.0 / 3.0,
        }
    }

    /// Creates a matrix with an explicit table and the standard thresholds.
    pub fn with_table(table: [[RiskLevel; 3]; 3]) -> Self {
        RiskMatrix { table, ..RiskMatrix::standard() }
    }

    /// Overrides the impact thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Invalid`] if the thresholds are not ordered
    /// within `[0, 1]`.
    pub fn with_impact_thresholds(mut self, medium: f64, high: f64) -> Result<Self, ModelError> {
        validate_thresholds(medium, high)?;
        self.impact_medium = medium;
        self.impact_high = high;
        Ok(self)
    }

    /// Overrides the likelihood thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Invalid`] if the thresholds are not ordered
    /// within `[0, 1]`.
    pub fn with_likelihood_thresholds(
        mut self,
        medium: f64,
        high: f64,
    ) -> Result<Self, ModelError> {
        validate_thresholds(medium, high)?;
        self.likelihood_medium = medium;
        self.likelihood_high = high;
        Ok(self)
    }

    /// Categorises a quantitative impact (a sensitivity change).
    pub fn categorise_impact(&self, impact: Sensitivity) -> Severity {
        let value = impact.value();
        if value >= self.impact_high {
            Severity::High
        } else if value >= self.impact_medium {
            Severity::Medium
        } else {
            Severity::Low
        }
    }

    /// Categorises a likelihood probability.
    pub fn categorise_likelihood(&self, probability: f64) -> Likelihood {
        if probability >= self.likelihood_high {
            Likelihood::High
        } else if probability >= self.likelihood_medium {
            Likelihood::Medium
        } else {
            Likelihood::Low
        }
    }

    /// Looks up the risk level for categorical dimensions.
    pub fn level(&self, impact: Severity, likelihood: Likelihood) -> RiskLevel {
        self.table[impact.index()][likelihood.index()]
    }

    /// Convenience: categorise both quantitative dimensions and look up the
    /// combined risk level.
    pub fn combine(&self, impact: Sensitivity, probability: f64) -> RiskLevel {
        self.level(self.categorise_impact(impact), self.categorise_likelihood(probability))
    }
}

impl Default for RiskMatrix {
    fn default() -> Self {
        RiskMatrix::standard()
    }
}

fn validate_thresholds(medium: f64, high: f64) -> Result<(), ModelError> {
    if !(0.0..=1.0).contains(&medium)
        || !(0.0..=1.0).contains(&high)
        || medium.is_nan()
        || high.is_nan()
        || medium > high
    {
        return Err(ModelError::invalid("thresholds must satisfy 0 <= medium <= high <= 1"));
    }
    Ok(())
}

impl fmt::Display for RiskMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "risk matrix (impact x likelihood):")?;
        writeln!(f, "           Low     Medium  High")?;
        for severity in Severity::ALL {
            write!(f, "  {:<8}", severity.to_string())?;
            for likelihood in Likelihood::ALL {
                write!(f, " {:<7}", self.level(severity, likelihood).to_string())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_matrix_reproduces_case_study_a() {
        let matrix = RiskMatrix::standard();
        // High impact (sensitive Diagnosis) x Low likelihood (standard
        // scenario probabilities sum to 0.07) -> Medium, as in the paper.
        assert_eq!(matrix.combine(Sensitivity::clamped(0.83), 0.07), RiskLevel::Medium);
        // After the policy change the exposure disappears; with zero impact
        // the level is Low whatever the likelihood.
        assert_eq!(matrix.combine(Sensitivity::ZERO, 0.07), RiskLevel::Low);
    }

    #[test]
    fn categorisation_thresholds() {
        let matrix = RiskMatrix::standard();
        assert_eq!(matrix.categorise_impact(Sensitivity::clamped(0.1)), Severity::Low);
        assert_eq!(matrix.categorise_impact(Sensitivity::clamped(0.5)), Severity::Medium);
        assert_eq!(matrix.categorise_impact(Sensitivity::clamped(0.9)), Severity::High);
        assert_eq!(matrix.categorise_likelihood(0.1), Likelihood::Low);
        assert_eq!(matrix.categorise_likelihood(0.5), Likelihood::Medium);
        assert_eq!(matrix.categorise_likelihood(0.9), Likelihood::High);
    }

    #[test]
    fn table_lookup_covers_every_cell() {
        let matrix = RiskMatrix::standard();
        assert_eq!(matrix.level(Severity::Low, Likelihood::Low), RiskLevel::Low);
        assert_eq!(matrix.level(Severity::Low, Likelihood::High), RiskLevel::Medium);
        assert_eq!(matrix.level(Severity::Medium, Likelihood::Medium), RiskLevel::Medium);
        assert_eq!(matrix.level(Severity::High, Likelihood::Low), RiskLevel::Medium);
        assert_eq!(matrix.level(Severity::High, Likelihood::High), RiskLevel::High);
    }

    #[test]
    fn custom_table_and_thresholds() {
        use RiskLevel::High;
        let strict = RiskMatrix::with_table([[High; 3]; 3])
            .with_impact_thresholds(0.1, 0.2)
            .unwrap()
            .with_likelihood_thresholds(0.01, 0.02)
            .unwrap();
        assert_eq!(strict.combine(Sensitivity::clamped(0.05), 0.001), High);
        assert_eq!(strict.categorise_impact(Sensitivity::clamped(0.15)), Severity::Medium);
        assert_eq!(strict.categorise_likelihood(0.015), Likelihood::Medium);
    }

    #[test]
    fn invalid_thresholds_are_rejected() {
        assert!(RiskMatrix::standard().with_impact_thresholds(0.8, 0.2).is_err());
        assert!(RiskMatrix::standard().with_impact_thresholds(-0.1, 0.5).is_err());
        assert!(RiskMatrix::standard().with_likelihood_thresholds(0.5, 1.5).is_err());
        assert!(RiskMatrix::standard().with_likelihood_thresholds(f64::NAN, 0.5).is_err());
    }

    #[test]
    fn display_renders_the_full_table() {
        let text = RiskMatrix::standard().to_string();
        assert!(text.contains("risk matrix"));
        assert!(text.lines().count() >= 5);
        assert!(text.contains("High"));
    }
}
