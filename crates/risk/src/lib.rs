//! # privacy-risk
//!
//! The automated privacy-risk analyses of Section III of *"Identifying
//! Privacy Risks in Distributed Data Services"* (Grace et al., ICDCS 2018).
//!
//! Risk analysis is performed per user on the generated LTS:
//!
//! * [`sensitivity`] — the relative sensitivity `σ(d, a)` of a field with
//!   respect to an actor (zero for *allowed* actors — those involved in
//!   services the user consented to — and the user's declared `σ(d)`
//!   otherwise), plus the sensitivity of whole privacy states and the
//!   sensitivity *change* caused by a transition;
//! * [`likelihood`] — the likelihood model: a sum of uncorrelated scenario
//!   probabilities (accidental access, delete-preview exposure, execution of
//!   a non-agreed service) per actor/datastore;
//! * [`matrix`] — categorisation of both dimensions into low / medium / high
//!   and the combining risk table;
//! * [`disclosure`] — the unwanted-disclosure analysis (Case Study A): finds
//!   non-allowed actors that can identify fields the user is sensitive
//!   about, attaches risk labels to the corresponding `read` transitions and
//!   adds potential-read risk transitions to the LTS. Queries resolve
//!   through the columnar [`privacy_lts::LtsIndex`] (with the original scan
//!   strategy retained for differential testing), and
//!   [`DisclosureAnalysis::analyse_users_batch`] assesses whole user
//!   populations over one index build in parallel;
//! * [`pseudonym`] — the pseudonymisation (value) risk analysis (Case Study
//!   B, Table I, Fig. 4): computes per-record value risks for each set of
//!   quasi-identifiers readable by an adversary actor, counts policy
//!   violations and adds dotted risk-transitions to the LTS;
//! * [`reident`] — the re-identification risk dimension the paper names and
//!   defers (prosecutor / marketer attacker models over the same visible
//!   quasi-identifier combinations);
//! * [`report`] — a combined, renderable risk report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disclosure;
pub mod likelihood;
pub mod matrix;
pub mod pseudonym;
pub mod reident;
pub mod report;
pub mod sensitivity;

pub use disclosure::{DisclosureAnalysis, DisclosureFinding, DisclosureReport};
pub use likelihood::{LikelihoodModel, Scenario, ScenarioKind};
pub use matrix::RiskMatrix;
pub use pseudonym::{PseudonymAnalysis, PseudonymFinding, PseudonymReport};
pub use reident::{reident_risk, ReidentFinding, ReidentPolicy, ReidentReport};
pub use report::RiskReport;
pub use sensitivity::SensitivityModel;

/// Convenience re-export of the most commonly used items.
pub mod prelude {
    pub use crate::disclosure::{DisclosureAnalysis, DisclosureFinding, DisclosureReport};
    pub use crate::likelihood::{LikelihoodModel, Scenario, ScenarioKind};
    pub use crate::matrix::RiskMatrix;
    pub use crate::pseudonym::{PseudonymAnalysis, PseudonymFinding, PseudonymReport};
    pub use crate::reident::{reident_risk, ReidentFinding, ReidentPolicy, ReidentReport};
    pub use crate::report::RiskReport;
    pub use crate::sensitivity::SensitivityModel;
}
