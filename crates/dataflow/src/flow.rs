//! Flow arrows: the directed, labelled edges of a data-flow diagram.
//!
//! Each flow arrow is labelled with three objects (Section II-A): the set of
//! data fields which flows between the two nodes, the purpose of the flow,
//! and a numeric value indicating the order in which the data flow is
//! executed.

use crate::node::Node;
use privacy_model::{FieldId, ModelError, Purpose};
use std::collections::BTreeSet;
use std::fmt;

/// The privacy-action classification of a flow, derived from the kinds of its
/// endpoints according to the extraction rules of Section II-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum FlowKind {
    /// User → actor: the actor collects personal data from the data subject.
    Collect,
    /// Actor → actor: the sending actor discloses personal data to the
    /// receiving actor.
    Disclose,
    /// Actor → (regular) datastore: the actor creates data in the datastore.
    Create,
    /// Actor → anonymised datastore: the actor writes pseudonymised data.
    Anonymise,
    /// Datastore → actor: the actor reads data from the datastore.
    Read,
    /// Any flow shape the extraction rules do not recognise (e.g. datastore →
    /// datastore); validation reports these.
    Unclassified,
}

impl fmt::Display for FlowKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FlowKind::Collect => "collect",
            FlowKind::Disclose => "disclose",
            FlowKind::Create => "create",
            FlowKind::Anonymise => "anon",
            FlowKind::Read => "read",
            FlowKind::Unclassified => "unclassified",
        };
        f.write_str(name)
    }
}

/// A directed, labelled data flow between two nodes.
///
/// # Example
///
/// ```
/// use privacy_dataflow::{Flow, Node};
/// use privacy_model::FieldId;
///
/// # fn main() -> Result<(), privacy_model::ModelError> {
/// let flow = Flow::new(
///     Node::User,
///     Node::actor("Receptionist"),
///     [FieldId::new("Name")],
///     "book appointment",
///     1,
/// )?;
/// assert_eq!(flow.order(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flow {
    from: Node,
    to: Node,
    fields: BTreeSet<FieldId>,
    purpose: Purpose,
    order: u32,
}

impl Flow {
    /// Creates a flow arrow.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Empty`] if the field set is empty or the purpose
    /// label is blank, and [`ModelError::Invalid`] if source and destination
    /// are the same node.
    pub fn new(
        from: Node,
        to: Node,
        fields: impl IntoIterator<Item = FieldId>,
        purpose: impl Into<String>,
        order: u32,
    ) -> Result<Self, ModelError> {
        let fields: BTreeSet<FieldId> = fields.into_iter().collect();
        if fields.is_empty() {
            return Err(ModelError::Empty { what: "flow field set" });
        }
        if from == to {
            return Err(ModelError::invalid(format!(
                "flow {order} connects node `{from}` to itself"
            )));
        }
        let purpose = Purpose::new(purpose)?;
        Ok(Flow { from, to, fields, purpose, order })
    }

    /// The source node.
    pub fn from(&self) -> &Node {
        &self.from
    }

    /// The destination node.
    pub fn to(&self) -> &Node {
        &self.to
    }

    /// The set of data fields carried by the flow.
    pub fn fields(&self) -> &BTreeSet<FieldId> {
        &self.fields
    }

    /// The purpose of the flow.
    pub fn purpose(&self) -> &Purpose {
        &self.purpose
    }

    /// The execution order of the flow within its diagram.
    pub fn order(&self) -> u32 {
        self.order
    }

    /// Classifies the flow according to the extraction rules of Section II-B.
    ///
    /// `anonymised_stores` lists the datastores declared as anonymised; a
    /// flow into such a store is an [`FlowKind::Anonymise`] action.
    pub fn kind(&self, anonymised_stores: &BTreeSet<privacy_model::DatastoreId>) -> FlowKind {
        match (&self.from, &self.to) {
            (Node::User, Node::Actor(_)) => FlowKind::Collect,
            (Node::Actor(_), Node::Actor(_)) => FlowKind::Disclose,
            (Node::Actor(_), Node::Datastore(store)) => {
                if anonymised_stores.contains(store) {
                    FlowKind::Anonymise
                } else {
                    FlowKind::Create
                }
            }
            (Node::Datastore(_), Node::Actor(_)) => FlowKind::Read,
            _ => FlowKind::Unclassified,
        }
    }

    /// Classifies the flow assuming no anonymised datastores.
    pub fn kind_simple(&self) -> FlowKind {
        self.kind(&BTreeSet::new())
    }

    /// The actor that performs the action represented by this flow, if any.
    ///
    /// For `collect`, `create`, `anon` the acting actor is the flow's
    /// destination or source actor respectively; for `read` it is the
    /// destination; for `disclose` it is the source (the actor doing the
    /// disclosing).
    pub fn acting_actor(&self) -> Option<&privacy_model::ActorId> {
        match (&self.from, &self.to) {
            (Node::User, Node::Actor(a)) => Some(a),
            (Node::Actor(a), Node::Actor(_)) => Some(a),
            (Node::Actor(a), Node::Datastore(_)) => Some(a),
            (Node::Datastore(_), Node::Actor(a)) => Some(a),
            _ => None,
        }
    }

    /// The actor that receives data as a result of this flow, if any.
    pub fn receiving_actor(&self) -> Option<&privacy_model::ActorId> {
        match (&self.from, &self.to) {
            (_, Node::Actor(a)) => Some(a),
            _ => None,
        }
    }

    /// Returns `true` if the flow involves the given field.
    pub fn carries(&self, field: &FieldId) -> bool {
        self.fields.contains(field)
    }
}

impl fmt::Display for Flow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fields: Vec<&str> = self.fields.iter().map(FieldId::as_str).collect();
        write!(
            f,
            "{}. {} -> {} [{}] for `{}`",
            self.order,
            self.from,
            self.to,
            fields.join(", "),
            self.purpose
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privacy_model::DatastoreId;

    fn fields(names: &[&str]) -> Vec<FieldId> {
        names.iter().map(|n| FieldId::new(*n)).collect()
    }

    #[test]
    fn flow_requires_fields_and_purpose() {
        let err = Flow::new(Node::User, Node::actor("A"), [], "p", 1).unwrap_err();
        assert!(matches!(err, ModelError::Empty { .. }));
        let err = Flow::new(Node::User, Node::actor("A"), fields(&["f"]), "  ", 1).unwrap_err();
        assert!(matches!(err, ModelError::Empty { .. }));
    }

    #[test]
    fn self_loops_are_rejected() {
        let err =
            Flow::new(Node::actor("A"), Node::actor("A"), fields(&["f"]), "p", 1).unwrap_err();
        assert!(matches!(err, ModelError::Invalid { .. }));
    }

    #[test]
    fn extraction_rules_classify_flows() {
        let anon_stores: BTreeSet<DatastoreId> =
            [DatastoreId::new("AnonEHR")].into_iter().collect();

        let collect =
            Flow::new(Node::User, Node::actor("Receptionist"), fields(&["Name"]), "p", 1).unwrap();
        assert_eq!(collect.kind(&anon_stores), FlowKind::Collect);

        let disclose =
            Flow::new(Node::actor("Doctor"), Node::actor("Nurse"), fields(&["Diagnosis"]), "p", 2)
                .unwrap();
        assert_eq!(disclose.kind(&anon_stores), FlowKind::Disclose);

        let create = Flow::new(
            Node::actor("Doctor"),
            Node::datastore("EHR"),
            fields(&["Diagnosis"]),
            "p",
            3,
        )
        .unwrap();
        assert_eq!(create.kind(&anon_stores), FlowKind::Create);

        let anon = Flow::new(
            Node::actor("Administrator"),
            Node::datastore("AnonEHR"),
            fields(&["Diagnosis"]),
            "p",
            4,
        )
        .unwrap();
        assert_eq!(anon.kind(&anon_stores), FlowKind::Anonymise);

        let read = Flow::new(
            Node::datastore("EHR"),
            Node::actor("Doctor"),
            fields(&["Diagnosis"]),
            "p",
            5,
        )
        .unwrap();
        assert_eq!(read.kind(&anon_stores), FlowKind::Read);

        let odd = Flow::new(
            Node::datastore("EHR"),
            Node::datastore("AnonEHR"),
            fields(&["Diagnosis"]),
            "p",
            6,
        )
        .unwrap();
        assert_eq!(odd.kind(&anon_stores), FlowKind::Unclassified);
        assert_eq!(odd.kind_simple(), FlowKind::Unclassified);
    }

    #[test]
    fn acting_and_receiving_actor() {
        let read = Flow::new(
            Node::datastore("EHR"),
            Node::actor("Doctor"),
            fields(&["Diagnosis"]),
            "p",
            1,
        )
        .unwrap();
        assert_eq!(read.acting_actor().unwrap().as_str(), "Doctor");
        assert_eq!(read.receiving_actor().unwrap().as_str(), "Doctor");

        let disclose =
            Flow::new(Node::actor("Doctor"), Node::actor("Nurse"), fields(&["Diagnosis"]), "p", 2)
                .unwrap();
        assert_eq!(disclose.acting_actor().unwrap().as_str(), "Doctor");
        assert_eq!(disclose.receiving_actor().unwrap().as_str(), "Nurse");

        let create = Flow::new(
            Node::actor("Doctor"),
            Node::datastore("EHR"),
            fields(&["Diagnosis"]),
            "p",
            3,
        )
        .unwrap();
        assert_eq!(create.acting_actor().unwrap().as_str(), "Doctor");
        assert!(create.receiving_actor().is_none());
    }

    #[test]
    fn field_membership_and_display() {
        let flow = Flow::new(
            Node::User,
            Node::actor("Receptionist"),
            fields(&["Name", "Date of Birth"]),
            "book appointment",
            1,
        )
        .unwrap();
        assert!(flow.carries(&FieldId::new("Name")));
        assert!(!flow.carries(&FieldId::new("Diagnosis")));
        assert_eq!(
            flow.to_string(),
            "1. User -> Receptionist [Date of Birth, Name] for `book appointment`"
        );
    }

    #[test]
    fn duplicate_fields_are_collapsed() {
        let flow =
            Flow::new(Node::User, Node::actor("A"), fields(&["x", "x", "y"]), "p", 1).unwrap();
        assert_eq!(flow.fields().len(), 2);
    }
}
