//! Graphviz DOT export of data-flow diagrams.
//!
//! The paper visualises its modelling artefacts as data-flow diagrams
//! (Fig. 1). [`diagram_to_dot`] and [`system_to_dot`] render the same
//! information as Graphviz source: actors as ellipses, datastores as boxes,
//! the data subject as a double circle, and flow arrows labelled with
//! `order. {fields} (purpose)`.

use crate::diagram::DataFlowDiagram;
use crate::node::Node;
use crate::system::SystemDataFlows;
use privacy_model::FieldId;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Renders a single diagram as a Graphviz `digraph`.
pub fn diagram_to_dot(diagram: &DataFlowDiagram) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(diagram.service().as_str()));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  label=\"{}\";", escape(diagram.service().as_str()));
    write_nodes(&mut out, &diagram.nodes(), "  ");
    write_edges(&mut out, diagram, "  ");
    let _ = writeln!(out, "}}");
    out
}

/// Renders a whole system as a Graphviz `digraph` with one cluster per
/// service, mirroring the two side-by-side diagrams of Fig. 1.
pub fn system_to_dot(system: &SystemDataFlows) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph system {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  compound=true;");
    for (index, diagram) in system.diagrams().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_{index} {{");
        let _ = writeln!(out, "    label=\"{}\";", escape(diagram.service().as_str()));
        write_nodes_prefixed(&mut out, &diagram.nodes(), "    ", index);
        write_edges_prefixed(&mut out, diagram, "    ", index);
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "}}");
    out
}

fn node_attributes(node: &Node) -> String {
    match node {
        Node::User => "shape=doublecircle, style=filled, fillcolor=lightyellow".to_owned(),
        Node::Actor(_) => "shape=ellipse".to_owned(),
        Node::Datastore(_) => "shape=box, style=filled, fillcolor=lightgrey".to_owned(),
    }
}

fn write_nodes(out: &mut String, nodes: &BTreeSet<Node>, indent: &str) {
    for node in nodes {
        let _ = writeln!(
            out,
            "{indent}{} [label=\"{}\", {}];",
            node.graph_id(),
            escape(&node.to_string()),
            node_attributes(node)
        );
    }
}

fn write_nodes_prefixed(out: &mut String, nodes: &BTreeSet<Node>, indent: &str, prefix: usize) {
    for node in nodes {
        let _ = writeln!(
            out,
            "{indent}c{prefix}_{} [label=\"{}\", {}];",
            node.graph_id(),
            escape(&node.to_string()),
            node_attributes(node)
        );
    }
}

fn edge_label(flow: &crate::flow::Flow) -> String {
    let fields: Vec<&str> = flow.fields().iter().map(FieldId::as_str).collect();
    format!("{}. {{{}}} ({})", flow.order(), fields.join(", "), flow.purpose())
}

fn write_edges(out: &mut String, diagram: &DataFlowDiagram, indent: &str) {
    for flow in diagram.iter() {
        let _ = writeln!(
            out,
            "{indent}{} -> {} [label=\"{}\"];",
            flow.from().graph_id(),
            flow.to().graph_id(),
            escape(&edge_label(flow))
        );
    }
}

fn write_edges_prefixed(out: &mut String, diagram: &DataFlowDiagram, indent: &str, prefix: usize) {
    for flow in diagram.iter() {
        let _ = writeln!(
            out,
            "{indent}c{prefix}_{} -> c{prefix}_{} [label=\"{}\"];",
            flow.from().graph_id(),
            flow.to().graph_id(),
            escape(&edge_label(flow))
        );
    }
}

fn escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagram::DiagramBuilder;

    fn diagram() -> DataFlowDiagram {
        DiagramBuilder::new("MedicalService")
            .collect("Receptionist", ["Name"], "book appointment", 1)
            .unwrap()
            .create("Receptionist", "Appointments", ["Name"], "book appointment", 2)
            .unwrap()
            .read("Doctor", "Appointments", ["Name"], "consultation", 3)
            .unwrap()
            .build()
    }

    #[test]
    fn diagram_dot_contains_every_node_and_edge() {
        let dot = diagram_to_dot(&diagram());
        assert!(dot.starts_with("digraph \"MedicalService\""));
        assert!(dot.contains("user [label=\"User\""));
        assert!(dot.contains("actor_Receptionist"));
        assert!(dot.contains("store_Appointments"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=doublecircle"));
        assert!(dot.contains("user -> actor_Receptionist"));
        assert!(dot.contains("1. {Name} (book appointment)"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn system_dot_uses_one_cluster_per_service() {
        let system = SystemDataFlows::new()
            .with_diagram(diagram())
            .unwrap()
            .with_diagram(
                DiagramBuilder::new("ResearchService")
                    .read("Researcher", "AnonEHR", ["Diagnosis_anon"], "research", 1)
                    .unwrap()
                    .build(),
            )
            .unwrap();
        let dot = system_to_dot(&system);
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("subgraph cluster_1"));
        assert!(dot.contains("label=\"MedicalService\""));
        assert!(dot.contains("label=\"ResearchService\""));
        // Cluster-prefixed node names keep the two services separate.
        assert!(dot.contains("c0_actor_Receptionist"));
        assert!(dot.contains("c1_actor_Researcher"));
    }

    #[test]
    fn labels_are_escaped() {
        let diagram = DiagramBuilder::new("Quote\"Service")
            .collect("A", ["f"], "say \"hi\"", 1)
            .unwrap()
            .build();
        let dot = diagram_to_dot(&diagram);
        assert!(dot.contains("digraph \"Quote\\\"Service\""));
        assert!(dot.contains("say \\\"hi\\\""));
    }
}
