//! Whole-system composition of per-service data-flow diagrams.
//!
//! The healthcare example of Fig. 1 comprises two independent services (a
//! Medical Service and a Medical Research Service) that share actors and
//! datastores. [`SystemDataFlows`] collects the per-service diagrams so the
//! LTS generator and risk analyses can reason about the system as a whole —
//! in particular about actors that are *not* involved in the services a user
//! consented to but can still reach the user's data.

use crate::diagram::DataFlowDiagram;
use crate::flow::{Flow, FlowKind};
use privacy_model::{ActorId, DatastoreId, FieldId, ModelError, ServiceId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A collection of per-service data-flow diagrams forming the system model.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SystemDataFlows {
    diagrams: BTreeMap<ServiceId, DataFlowDiagram>,
}

impl SystemDataFlows {
    /// Creates an empty system model.
    pub fn new() -> Self {
        SystemDataFlows::default()
    }

    /// Adds a per-service diagram.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Duplicate`] if a diagram for the same service
    /// has already been added.
    pub fn add_diagram(&mut self, diagram: DataFlowDiagram) -> Result<&mut Self, ModelError> {
        if self.diagrams.contains_key(diagram.service()) {
            return Err(ModelError::duplicate("diagram", diagram.service().as_str()));
        }
        self.diagrams.insert(diagram.service().clone(), diagram);
        Ok(self)
    }

    /// Builder-style variant of [`SystemDataFlows::add_diagram`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Duplicate`] if a diagram for the same service
    /// has already been added.
    pub fn with_diagram(mut self, diagram: DataFlowDiagram) -> Result<Self, ModelError> {
        self.add_diagram(diagram)?;
        Ok(self)
    }

    /// Looks up the diagram of a service.
    pub fn diagram(&self, service: &ServiceId) -> Option<&DataFlowDiagram> {
        self.diagrams.get(service)
    }

    /// Iterates over the diagrams in service-id order.
    pub fn diagrams(&self) -> impl Iterator<Item = &DataFlowDiagram> {
        self.diagrams.values()
    }

    /// The services modelled by this system.
    pub fn services(&self) -> impl Iterator<Item = &ServiceId> {
        self.diagrams.keys()
    }

    /// Number of diagrams (services).
    pub fn len(&self) -> usize {
        self.diagrams.len()
    }

    /// Returns `true` if no diagrams have been added.
    pub fn is_empty(&self) -> bool {
        self.diagrams.is_empty()
    }

    /// Total number of flows across all diagrams.
    pub fn flow_count(&self) -> usize {
        self.diagrams.values().map(DataFlowDiagram::len).sum()
    }

    /// All distinct actors appearing anywhere in the system.
    pub fn actors(&self) -> BTreeSet<ActorId> {
        self.diagrams.values().flat_map(|d| d.actors()).collect()
    }

    /// All distinct datastores appearing anywhere in the system.
    pub fn datastores(&self) -> BTreeSet<DatastoreId> {
        self.diagrams.values().flat_map(|d| d.datastores()).collect()
    }

    /// All distinct fields flowing anywhere in the system.
    pub fn fields(&self) -> BTreeSet<FieldId> {
        self.diagrams.values().flat_map(|d| d.fields()).collect()
    }

    /// All flows across all services, tagged with their service.
    pub fn flows(&self) -> impl Iterator<Item = (&ServiceId, &Flow)> {
        self.diagrams
            .iter()
            .flat_map(|(service, diagram)| diagram.iter().map(move |f| (service, f)))
    }

    /// Flows of a given kind across the whole system.
    pub fn flows_of_kind(
        &self,
        kind: FlowKind,
        anonymised_stores: &BTreeSet<DatastoreId>,
    ) -> Vec<(&ServiceId, &Flow)> {
        self.flows().filter(|(_, f)| f.kind(anonymised_stores) == kind).collect()
    }

    /// The services in which an actor participates (derived from the flows
    /// rather than from the catalog's service declarations — the two should
    /// agree, and validation compares them).
    pub fn services_involving(&self, actor: &ActorId) -> Vec<&ServiceId> {
        self.diagrams.iter().filter(|(_, d)| d.actors().contains(actor)).map(|(s, _)| s).collect()
    }

    /// The datastores an actor reads from anywhere in the system.
    pub fn datastores_read_by(&self, actor: &ActorId) -> BTreeSet<DatastoreId> {
        let mut stores = BTreeSet::new();
        for (_, flow) in self.flows() {
            if flow.from().is_datastore() && flow.to().as_actor() == Some(actor) {
                if let Some(store) = flow.from().as_datastore() {
                    stores.insert(store.clone());
                }
            }
        }
        stores
    }

    /// The fields an actor is exposed to anywhere in the system (via collect,
    /// disclose-to or read flows).
    pub fn fields_exposed_to(&self, actor: &ActorId) -> BTreeSet<FieldId> {
        let mut fields = BTreeSet::new();
        for (_, flow) in self.flows() {
            if flow.to().as_actor() == Some(actor) {
                fields.extend(flow.fields().iter().cloned());
            }
        }
        fields
    }

    /// The per-service actor sets, useful for building
    /// [`privacy_model::ServiceDecl`] declarations consistent with the
    /// diagrams.
    pub fn actors_per_service(&self) -> BTreeMap<ServiceId, BTreeSet<ActorId>> {
        self.diagrams.iter().map(|(service, diagram)| (service.clone(), diagram.actors())).collect()
    }
}

impl FromIterator<DataFlowDiagram> for SystemDataFlows {
    fn from_iter<T: IntoIterator<Item = DataFlowDiagram>>(iter: T) -> Self {
        let mut system = SystemDataFlows::new();
        for diagram in iter {
            // Last diagram wins on duplicates when collecting silently; the
            // fallible `add_diagram` is the strict path.
            system.diagrams.insert(diagram.service().clone(), diagram);
        }
        system
    }
}

impl fmt::Display for SystemDataFlows {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "system data flows: {} services, {} flows, {} actors, {} datastores, {} fields",
            self.len(),
            self.flow_count(),
            self.actors().len(),
            self.datastores().len(),
            self.fields().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagram::DiagramBuilder;

    fn medical() -> DataFlowDiagram {
        DiagramBuilder::new("MedicalService")
            .collect("Receptionist", ["Name"], "book appointment", 1)
            .unwrap()
            .create("Receptionist", "Appointments", ["Name", "Appointment"], "book", 2)
            .unwrap()
            .read("Doctor", "Appointments", ["Name", "Appointment"], "consult", 3)
            .unwrap()
            .create("Doctor", "EHR", ["Diagnosis"], "treat", 4)
            .unwrap()
            .build()
    }

    fn research() -> DataFlowDiagram {
        DiagramBuilder::new("ResearchService")
            .read("Administrator", "EHR", ["Diagnosis"], "prepare dataset", 1)
            .unwrap()
            .anonymise("Administrator", "AnonEHR", ["Diagnosis_anon"], "anonymise", 2)
            .unwrap()
            .read("Researcher", "AnonEHR", ["Diagnosis_anon"], "research", 3)
            .unwrap()
            .build()
    }

    fn system() -> SystemDataFlows {
        SystemDataFlows::new().with_diagram(medical()).unwrap().with_diagram(research()).unwrap()
    }

    #[test]
    fn duplicate_services_are_rejected() {
        let mut system = system();
        assert!(matches!(system.add_diagram(medical()), Err(ModelError::Duplicate { .. })));
    }

    #[test]
    fn aggregate_queries_span_services() {
        let system = system();
        assert_eq!(system.len(), 2);
        assert_eq!(system.flow_count(), 7);
        assert_eq!(system.actors().len(), 4);
        assert_eq!(system.datastores().len(), 3);
        assert!(system.fields().contains(&FieldId::new("Diagnosis_anon")));
        assert_eq!(system.flows().count(), 7);
    }

    #[test]
    fn per_actor_queries() {
        let system = system();
        let admin = ActorId::new("Administrator");
        let services = system.services_involving(&admin);
        assert_eq!(services.len(), 1);
        assert_eq!(services[0].as_str(), "ResearchService");

        let stores = system.datastores_read_by(&admin);
        assert!(stores.contains(&DatastoreId::new("EHR")));
        assert_eq!(stores.len(), 1);

        let exposed = system.fields_exposed_to(&ActorId::new("Doctor"));
        assert!(exposed.contains(&FieldId::new("Appointment")));
        assert!(!exposed.contains(&FieldId::new("Diagnosis_anon")));
    }

    #[test]
    fn flows_of_kind_uses_anonymised_store_set() {
        let system = system();
        let anon: BTreeSet<DatastoreId> = [DatastoreId::new("AnonEHR")].into_iter().collect();
        assert_eq!(system.flows_of_kind(FlowKind::Anonymise, &anon).len(), 1);
        assert_eq!(system.flows_of_kind(FlowKind::Create, &anon).len(), 2);
        // Without declaring the anonymised store everything is a plain create.
        assert_eq!(system.flows_of_kind(FlowKind::Create, &BTreeSet::new()).len(), 3);
    }

    #[test]
    fn actors_per_service_matches_diagrams() {
        let map = system().actors_per_service();
        assert!(map[&ServiceId::new("MedicalService")].contains(&ActorId::new("Doctor")));
        assert!(map[&ServiceId::new("ResearchService")].contains(&ActorId::new("Researcher")));
    }

    #[test]
    fn from_iterator_collects_diagrams() {
        let system: SystemDataFlows = [medical(), research()].into_iter().collect();
        assert_eq!(system.len(), 2);
        assert!(system.diagram(&ServiceId::new("MedicalService")).is_some());
        assert!(system.diagram(&ServiceId::new("Nope")).is_none());
    }

    #[test]
    fn display_summarises_the_system() {
        let text = system().to_string();
        assert!(text.contains("2 services"));
        assert!(text.contains("7 flows"));
    }

    #[test]
    fn empty_system_reports_empty() {
        let system = SystemDataFlows::new();
        assert!(system.is_empty());
        assert_eq!(system.flow_count(), 0);
    }
}
