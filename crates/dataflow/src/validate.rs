//! Validation of data-flow diagrams against the system catalog.
//!
//! Model-driven engineering lives or dies by early feedback: the framework
//! must tell the developer when their design artefacts are inconsistent
//! *before* a formal model is generated from them. The validator checks a
//! [`SystemDataFlows`] against a [`Catalog`] and produces a
//! [`ValidationReport`] of individual [`ValidationIssue`]s rather than
//! failing on the first problem.

use crate::diagram::DataFlowDiagram;
use crate::flow::FlowKind;
use crate::system::SystemDataFlows;
use privacy_model::{Catalog, DatastoreId, FieldId, ServiceId};
use std::collections::BTreeSet;
use std::fmt;

/// Severity of a validation issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IssueSeverity {
    /// The model can still be processed but the developer should review the
    /// issue.
    Warning,
    /// The model is inconsistent and LTS generation would produce misleading
    /// results.
    Error,
}

impl fmt::Display for IssueSeverity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IssueSeverity::Warning => f.write_str("warning"),
            IssueSeverity::Error => f.write_str("error"),
        }
    }
}

/// One problem found while validating the data-flow model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationIssue {
    severity: IssueSeverity,
    service: Option<ServiceId>,
    message: String,
}

impl ValidationIssue {
    fn error(service: Option<&ServiceId>, message: impl Into<String>) -> Self {
        ValidationIssue {
            severity: IssueSeverity::Error,
            service: service.cloned(),
            message: message.into(),
        }
    }

    fn warning(service: Option<&ServiceId>, message: impl Into<String>) -> Self {
        ValidationIssue {
            severity: IssueSeverity::Warning,
            service: service.cloned(),
            message: message.into(),
        }
    }

    /// The severity of the issue.
    pub fn severity(&self) -> IssueSeverity {
        self.severity
    }

    /// The service the issue concerns, if it is service specific.
    pub fn service(&self) -> Option<&ServiceId> {
        self.service.as_ref()
    }

    /// The human readable description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.service {
            Some(service) => write!(f, "[{}] {}: {}", self.severity, service, self.message),
            None => write!(f, "[{}] {}", self.severity, self.message),
        }
    }
}

/// The result of validating a system model.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ValidationReport {
    issues: Vec<ValidationIssue>,
}

impl ValidationReport {
    /// All issues found, in discovery order.
    pub fn issues(&self) -> &[ValidationIssue] {
        &self.issues
    }

    /// Only the error-severity issues.
    pub fn errors(&self) -> impl Iterator<Item = &ValidationIssue> {
        self.issues.iter().filter(|i| i.severity() == IssueSeverity::Error)
    }

    /// Only the warning-severity issues.
    pub fn warnings(&self) -> impl Iterator<Item = &ValidationIssue> {
        self.issues.iter().filter(|i| i.severity() == IssueSeverity::Warning)
    }

    /// Returns `true` if no errors were found (warnings are allowed).
    pub fn is_ok(&self) -> bool {
        self.errors().next().is_none()
    }

    /// Returns `true` if nothing at all was found.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }

    fn push(&mut self, issue: ValidationIssue) {
        self.issues.push(issue);
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.issues.is_empty() {
            return f.write_str("validation: clean");
        }
        writeln!(
            f,
            "validation: {} error(s), {} warning(s)",
            self.errors().count(),
            self.warnings().count()
        )?;
        for issue in &self.issues {
            writeln!(f, "  {issue}")?;
        }
        Ok(())
    }
}

/// Validates a whole system model against the catalog.
///
/// Checks performed per diagram (see [`validate_diagram`]) plus system-wide
/// checks:
///
/// * every service with a diagram should be declared in the catalog, and the
///   actors used by the diagram should be a subset of the declared service
///   actors (warning otherwise);
/// * every catalog service should have a diagram (warning otherwise).
pub fn validate_system(system: &SystemDataFlows, catalog: &Catalog) -> ValidationReport {
    let mut report = ValidationReport::default();

    for diagram in system.diagrams() {
        validate_diagram_into(diagram, catalog, &mut report);

        match catalog.service(diagram.service()) {
            None => report.push(ValidationIssue::warning(
                Some(diagram.service()),
                "service has a data-flow diagram but is not declared in the catalog",
            )),
            Some(decl) => {
                for actor in diagram.actors() {
                    if !decl.involves(&actor) {
                        report.push(ValidationIssue::warning(
                            Some(diagram.service()),
                            format!(
                                "actor `{actor}` appears in the diagram but is not listed \
                                 as an actor of the declared service"
                            ),
                        ));
                    }
                }
            }
        }
    }

    for service in catalog.services() {
        if system.diagram(service.id()).is_none() {
            report.push(ValidationIssue::warning(
                Some(service.id()),
                "service is declared in the catalog but has no data-flow diagram",
            ));
        }
    }

    report
}

/// Validates one diagram against the catalog.
///
/// Checks:
///
/// * every actor, datastore and field referenced by a flow is declared;
/// * every field flowing into or out of a datastore is part of that
///   datastore's schema;
/// * flows are classifiable by the extraction rules (no datastore→datastore
///   or user-targeted arrows);
/// * execution orders are unique (warning);
/// * data is collected or read before it flows onward from an actor
///   (warning — "the start node has the correct data to flow").
pub fn validate_diagram(diagram: &DataFlowDiagram, catalog: &Catalog) -> ValidationReport {
    let mut report = ValidationReport::default();
    validate_diagram_into(diagram, catalog, &mut report);
    report
}

fn validate_diagram_into(
    diagram: &DataFlowDiagram,
    catalog: &Catalog,
    report: &mut ValidationReport,
) {
    let service = Some(diagram.service());
    let anonymised_stores: BTreeSet<DatastoreId> =
        catalog.datastores().filter(|d| d.is_anonymised()).map(|d| d.id().clone()).collect();

    // Reference checks.
    for actor in diagram.actors() {
        if catalog.actor(&actor).is_none() {
            report.push(ValidationIssue::error(
                service,
                format!("flow references undeclared actor `{actor}`"),
            ));
        }
    }
    for store in diagram.datastores() {
        if catalog.datastore(&store).is_none() {
            report.push(ValidationIssue::error(
                service,
                format!("flow references undeclared datastore `{store}`"),
            ));
        }
    }
    for field in diagram.fields() {
        if catalog.field(&field).is_none() {
            report.push(ValidationIssue::error(
                service,
                format!("flow references undeclared field `{field}`"),
            ));
        }
    }

    // Schema compatibility and classification.
    for flow in diagram.iter() {
        if flow.kind(&anonymised_stores) == FlowKind::Unclassified {
            report.push(ValidationIssue::error(
                service,
                format!(
                    "flow {} ({} -> {}) cannot be classified by the extraction rules",
                    flow.order(),
                    flow.from(),
                    flow.to()
                ),
            ));
        }

        for endpoint in [flow.from(), flow.to()] {
            if let Some(store) = endpoint.as_datastore() {
                if let Some(schema) = catalog.datastore_schema(store) {
                    for field in flow.fields() {
                        if !schema.contains(field) {
                            report.push(ValidationIssue::error(
                                service,
                                format!(
                                    "flow {} moves field `{field}` through datastore `{store}` \
                                     whose schema `{}` does not contain it",
                                    flow.order(),
                                    schema.id()
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }

    // Order uniqueness.
    for (order, count) in diagram.order_multiplicity() {
        if count > 1 {
            report.push(ValidationIssue::warning(
                service,
                format!("execution order {order} is used by {count} flows"),
            ));
        }
    }

    // Data availability: a field leaving an actor must have reached that
    // actor earlier (collected, read or disclosed to them), and a field read
    // from a datastore must have been written to it earlier in this diagram
    // or be assumed pre-existing (warning only).
    let mut actor_has: BTreeSet<(privacy_model::ActorId, FieldId)> = BTreeSet::new();
    let mut store_has: BTreeSet<(DatastoreId, FieldId)> = BTreeSet::new();
    for flow in diagram.iter() {
        match (flow.from(), flow.to()) {
            (crate::node::Node::Actor(actor), _) => {
                for field in flow.fields() {
                    if !actor_has.contains(&(actor.clone(), field.clone())) {
                        report.push(ValidationIssue::warning(
                            service,
                            format!(
                                "flow {}: actor `{actor}` sends field `{field}` before any \
                                 earlier flow provided it to them",
                                flow.order()
                            ),
                        ));
                    }
                }
            }
            (crate::node::Node::Datastore(store), _) => {
                for field in flow.fields() {
                    if !store_has.contains(&(store.clone(), field.clone())) {
                        report.push(ValidationIssue::warning(
                            service,
                            format!(
                                "flow {}: datastore `{store}` is read for field `{field}` \
                                 before any earlier flow wrote it (assumed pre-existing)",
                                flow.order()
                            ),
                        ));
                    }
                }
            }
            _ => {}
        }
        match flow.to() {
            crate::node::Node::Actor(actor) => {
                for field in flow.fields() {
                    actor_has.insert((actor.clone(), field.clone()));
                }
            }
            crate::node::Node::Datastore(store) => {
                for field in flow.fields() {
                    store_has.insert((store.clone(), field.clone()));
                }
            }
            crate::node::Node::User => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagram::DiagramBuilder;
    use crate::node::Node;
    use privacy_model::{Actor, ActorId, DataField, DataSchema, DatastoreDecl, ServiceDecl};

    fn catalog() -> Catalog {
        let mut catalog = Catalog::new();
        catalog.add_actor(Actor::role("Receptionist")).unwrap();
        catalog.add_actor(Actor::role("Doctor")).unwrap();
        catalog.add_field(DataField::identifier("Name")).unwrap();
        catalog.add_field(DataField::sensitive("Diagnosis")).unwrap();
        catalog
            .add_schema(DataSchema::new(
                "EHRSchema",
                [FieldId::new("Name"), FieldId::new("Diagnosis")],
            ))
            .unwrap();
        catalog.add_datastore(DatastoreDecl::new("EHR", "EHRSchema")).unwrap();
        catalog
            .add_service(ServiceDecl::new(
                "MedicalService",
                [ActorId::new("Receptionist"), ActorId::new("Doctor")],
            ))
            .unwrap();
        catalog
    }

    fn valid_diagram() -> DataFlowDiagram {
        DiagramBuilder::new("MedicalService")
            .collect("Receptionist", ["Name"], "book", 1)
            .unwrap()
            .create("Receptionist", "EHR", ["Name"], "book", 2)
            .unwrap()
            .collect("Doctor", ["Diagnosis"], "consult", 3)
            .unwrap()
            .create("Doctor", "EHR", ["Diagnosis"], "treat", 4)
            .unwrap()
            .read("Doctor", "EHR", ["Name"], "review", 5)
            .unwrap()
            .build()
    }

    #[test]
    fn a_consistent_model_validates_cleanly() {
        let system = SystemDataFlows::new().with_diagram(valid_diagram()).unwrap();
        let report = validate_system(&system, &catalog());
        assert!(report.is_ok(), "unexpected issues: {report}");
        assert!(report.is_clean(), "unexpected issues: {report}");
    }

    #[test]
    fn undeclared_elements_are_errors() {
        let diagram = DiagramBuilder::new("MedicalService")
            .collect("Ghost", ["Unknown"], "p", 1)
            .unwrap()
            .create("Ghost", "Nowhere", ["Unknown"], "p", 2)
            .unwrap()
            .build();
        let report = validate_diagram(&diagram, &catalog());
        assert!(!report.is_ok());
        let messages: Vec<_> = report.errors().map(|i| i.message().to_owned()).collect();
        assert!(messages.iter().any(|m| m.contains("undeclared actor `Ghost`")));
        assert!(messages.iter().any(|m| m.contains("undeclared datastore `Nowhere`")));
        assert!(messages.iter().any(|m| m.contains("undeclared field `Unknown`")));
    }

    #[test]
    fn schema_mismatch_is_an_error() {
        let mut catalog = catalog();
        catalog.add_field(DataField::other("Extra")).unwrap();
        let diagram = DiagramBuilder::new("MedicalService")
            .collect("Doctor", ["Extra"], "p", 1)
            .unwrap()
            .create("Doctor", "EHR", ["Extra"], "p", 2)
            .unwrap()
            .build();
        let report = validate_diagram(&diagram, &catalog);
        assert!(!report.is_ok());
        assert!(report
            .errors()
            .any(|i| i.message().contains("schema `EHRSchema` does not contain it")));
    }

    #[test]
    fn unclassifiable_flows_are_errors() {
        let mut catalog = catalog();
        catalog.add_schema(DataSchema::new("S2", [FieldId::new("Name")])).unwrap();
        catalog.add_datastore(DatastoreDecl::new("Backup", "S2")).unwrap();
        let diagram = DataFlowDiagram::new(
            "MedicalService",
            [crate::flow::Flow::new(
                Node::datastore("EHR"),
                Node::datastore("Backup"),
                [FieldId::new("Name")],
                "backup",
                1,
            )
            .unwrap()],
        );
        let report = validate_diagram(&diagram, &catalog);
        assert!(report.errors().any(|i| i.message().contains("cannot be classified")));
    }

    #[test]
    fn duplicate_orders_and_missing_data_are_warnings() {
        let diagram = DiagramBuilder::new("MedicalService")
            .read("Doctor", "EHR", ["Diagnosis"], "review", 1)
            .unwrap()
            .disclose("Doctor", "Receptionist", ["Name"], "handover", 1)
            .unwrap()
            .build();
        let report = validate_diagram(&diagram, &catalog());
        // No hard errors: everything is declared and classifiable.
        assert!(report.is_ok());
        let warnings: Vec<_> = report.warnings().map(|i| i.message().to_owned()).collect();
        assert!(warnings.iter().any(|m| m.contains("order 1 is used by 2 flows")));
        assert!(warnings.iter().any(|m| m.contains("before any earlier flow wrote it")));
        assert!(warnings
            .iter()
            .any(|m| m.contains("sends field `Name` before any earlier flow provided it")));
    }

    #[test]
    fn catalog_and_diagram_service_mismatches_are_warnings() {
        let system = SystemDataFlows::new()
            .with_diagram(
                DiagramBuilder::new("UnknownService")
                    .collect("Doctor", ["Name"], "p", 1)
                    .unwrap()
                    .build(),
            )
            .unwrap();
        let report = validate_system(&system, &catalog());
        assert!(report.is_ok());
        let warnings: Vec<_> = report.warnings().map(|i| i.message().to_owned()).collect();
        assert!(warnings.iter().any(|m| m.contains("not declared in the catalog")));
        assert!(warnings.iter().any(|m| m.contains("has no data-flow diagram")));
    }

    #[test]
    fn diagram_actor_not_in_service_declaration_is_a_warning() {
        let mut catalog = catalog();
        catalog.add_actor(Actor::role("Intruder")).unwrap();
        let system = SystemDataFlows::new()
            .with_diagram(
                DiagramBuilder::new("MedicalService")
                    .collect("Intruder", ["Name"], "p", 1)
                    .unwrap()
                    .build(),
            )
            .unwrap();
        let report = validate_system(&system, &catalog);
        assert!(report
            .warnings()
            .any(|i| i.message().contains("not listed as an actor of the declared service")));
    }

    #[test]
    fn report_display_counts_issues() {
        let report = ValidationReport::default();
        assert_eq!(report.to_string(), "validation: clean");

        let diagram = DiagramBuilder::new("MedicalService")
            .collect("Ghost", ["Name"], "p", 1)
            .unwrap()
            .build();
        let report = validate_diagram(&diagram, &catalog());
        let text = report.to_string();
        assert!(text.contains("error(s)"));
        assert!(text.contains("Ghost"));
    }
}
