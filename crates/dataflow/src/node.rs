//! Nodes of a data-flow diagram.
//!
//! Fig. 1 of the paper draws actors as ovals and datastores as rectangles;
//! the data subject (the user) is the source of `collect` flows. A [`Node`]
//! is one endpoint of a flow arrow.

use privacy_model::{ActorId, DatastoreId};
use std::fmt;

/// One endpoint of a data-flow arrow.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Node {
    /// The data subject (the user the personal data is about).
    User,
    /// An actor (individual or role) of the system.
    Actor(ActorId),
    /// A datastore.
    Datastore(DatastoreId),
}

impl Node {
    /// Creates an actor node.
    pub fn actor(id: impl Into<ActorId>) -> Self {
        Node::Actor(id.into())
    }

    /// Creates a datastore node.
    pub fn datastore(id: impl Into<DatastoreId>) -> Self {
        Node::Datastore(id.into())
    }

    /// Returns `true` if this node is the data subject.
    pub fn is_user(&self) -> bool {
        matches!(self, Node::User)
    }

    /// Returns `true` if this node is an actor.
    pub fn is_actor(&self) -> bool {
        matches!(self, Node::Actor(_))
    }

    /// Returns `true` if this node is a datastore.
    pub fn is_datastore(&self) -> bool {
        matches!(self, Node::Datastore(_))
    }

    /// The actor identifier if this node is an actor.
    pub fn as_actor(&self) -> Option<&ActorId> {
        match self {
            Node::Actor(id) => Some(id),
            _ => None,
        }
    }

    /// The datastore identifier if this node is a datastore.
    pub fn as_datastore(&self) -> Option<&DatastoreId> {
        match self {
            Node::Datastore(id) => Some(id),
            _ => None,
        }
    }

    /// A stable identifier usable as a graph node name (e.g. in DOT output).
    pub fn graph_id(&self) -> String {
        match self {
            Node::User => "user".to_owned(),
            Node::Actor(id) => format!("actor_{}", sanitise(id.as_str())),
            Node::Datastore(id) => format!("store_{}", sanitise(id.as_str())),
        }
    }
}

fn sanitise(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::User => f.write_str("User"),
            Node::Actor(id) => write!(f, "{id}"),
            Node::Datastore(id) => write!(f, "[{id}]"),
        }
    }
}

impl From<ActorId> for Node {
    fn from(id: ActorId) -> Self {
        Node::Actor(id)
    }
}

impl From<DatastoreId> for Node {
    fn from(id: DatastoreId) -> Self {
        Node::Datastore(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_predicates() {
        assert!(Node::User.is_user());
        assert!(Node::actor("Doctor").is_actor());
        assert!(Node::datastore("EHR").is_datastore());
        assert!(!Node::User.is_actor());
        assert!(!Node::actor("Doctor").is_datastore());
    }

    #[test]
    fn accessors_return_inner_ids() {
        assert_eq!(Node::actor("Doctor").as_actor(), Some(&ActorId::new("Doctor")));
        assert_eq!(Node::actor("Doctor").as_datastore(), None);
        assert_eq!(Node::datastore("EHR").as_datastore(), Some(&DatastoreId::new("EHR")));
        assert_eq!(Node::User.as_actor(), None);
    }

    #[test]
    fn graph_ids_are_sanitised_and_unique_per_kind() {
        assert_eq!(Node::User.graph_id(), "user");
        assert_eq!(Node::actor("Dr. Who").graph_id(), "actor_Dr__Who");
        assert_eq!(Node::datastore("EHR-2").graph_id(), "store_EHR_2");
        assert_ne!(Node::actor("X").graph_id(), Node::datastore("X").graph_id());
    }

    #[test]
    fn display_marks_datastores_with_brackets() {
        assert_eq!(Node::User.to_string(), "User");
        assert_eq!(Node::actor("Doctor").to_string(), "Doctor");
        assert_eq!(Node::datastore("EHR").to_string(), "[EHR]");
    }

    #[test]
    fn from_impls_build_the_right_variant() {
        let node: Node = ActorId::new("Nurse").into();
        assert!(node.is_actor());
        let node: Node = DatastoreId::new("EHR").into();
        assert!(node.is_datastore());
    }
}
