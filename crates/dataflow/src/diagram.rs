//! Per-service data-flow diagrams and the builder used to construct them.

use crate::flow::{Flow, FlowKind};
use crate::node::Node;
use privacy_model::{ActorId, DatastoreId, FieldId, ModelError, ServiceId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A purpose-driven data-flow diagram describing one service.
///
/// The flows are kept sorted by execution order. Multiple flows may share an
/// order value only if they are genuinely concurrent; [`crate::validate`]
/// reports duplicated orders as a warning because the paper's examples use a
/// strict sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataFlowDiagram {
    service: ServiceId,
    flows: Vec<Flow>,
}

impl DataFlowDiagram {
    /// Creates a diagram for the given service from an iterator of flows.
    pub fn new(service: impl Into<ServiceId>, flows: impl IntoIterator<Item = Flow>) -> Self {
        let mut flows: Vec<Flow> = flows.into_iter().collect();
        flows.sort_by_key(Flow::order);
        DataFlowDiagram { service: service.into(), flows }
    }

    /// The service this diagram describes.
    pub fn service(&self) -> &ServiceId {
        &self.service
    }

    /// The flows in execution order.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Iterates over the flows in execution order.
    pub fn iter(&self) -> impl Iterator<Item = &Flow> {
        self.flows.iter()
    }

    /// Number of flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Returns `true` if the diagram has no flows.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Appends a flow, keeping the order-sorted invariant.
    pub fn add_flow(&mut self, flow: Flow) {
        let position = self.flows.partition_point(|existing| existing.order() <= flow.order());
        self.flows.insert(position, flow);
    }

    /// The distinct nodes appearing in the diagram.
    pub fn nodes(&self) -> BTreeSet<Node> {
        let mut nodes = BTreeSet::new();
        for flow in &self.flows {
            nodes.insert(flow.from().clone());
            nodes.insert(flow.to().clone());
        }
        nodes
    }

    /// The distinct actors appearing in the diagram.
    pub fn actors(&self) -> BTreeSet<ActorId> {
        self.nodes().into_iter().filter_map(|n| n.as_actor().cloned()).collect()
    }

    /// The distinct datastores appearing in the diagram.
    pub fn datastores(&self) -> BTreeSet<DatastoreId> {
        self.nodes().into_iter().filter_map(|n| n.as_datastore().cloned()).collect()
    }

    /// The distinct fields flowing anywhere in the diagram.
    pub fn fields(&self) -> BTreeSet<FieldId> {
        let mut fields = BTreeSet::new();
        for flow in &self.flows {
            fields.extend(flow.fields().iter().cloned());
        }
        fields
    }

    /// Flows of the given kind (classified with the supplied anonymised
    /// store set).
    pub fn flows_of_kind(
        &self,
        kind: FlowKind,
        anonymised_stores: &BTreeSet<DatastoreId>,
    ) -> Vec<&Flow> {
        self.flows.iter().filter(|f| f.kind(anonymised_stores) == kind).collect()
    }

    /// Flows that involve the given actor (as either endpoint).
    pub fn flows_involving(&self, actor: &ActorId) -> Vec<&Flow> {
        self.flows
            .iter()
            .filter(|f| f.from().as_actor() == Some(actor) || f.to().as_actor() == Some(actor))
            .collect()
    }

    /// Flows that read from or write to the given datastore.
    pub fn flows_touching(&self, datastore: &DatastoreId) -> Vec<&Flow> {
        self.flows
            .iter()
            .filter(|f| {
                f.from().as_datastore() == Some(datastore)
                    || f.to().as_datastore() == Some(datastore)
            })
            .collect()
    }

    /// The set of fields written (created or anonymised) into a datastore by
    /// this diagram.
    pub fn fields_written_to(&self, datastore: &DatastoreId) -> BTreeSet<FieldId> {
        let mut fields = BTreeSet::new();
        for flow in &self.flows {
            if flow.to().as_datastore() == Some(datastore) {
                fields.extend(flow.fields().iter().cloned());
            }
        }
        fields
    }

    /// The orders used by the diagram's flows, with their multiplicity.
    pub fn order_multiplicity(&self) -> BTreeMap<u32, usize> {
        let mut counts = BTreeMap::new();
        for flow in &self.flows {
            *counts.entry(flow.order()).or_insert(0) += 1;
        }
        counts
    }
}

impl fmt::Display for DataFlowDiagram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "data-flow diagram for {}:", self.service)?;
        for flow in &self.flows {
            writeln!(f, "  {flow}")?;
        }
        Ok(())
    }
}

/// Fluent builder for [`DataFlowDiagram`].
///
/// The builder offers one method per extraction-rule shape so that diagrams
/// read like the paper's prose: `collect`, `disclose`, `create`, `anonymise`
/// and `read`. A generic [`DiagramBuilder::flow`] escape hatch is available
/// for unusual shapes.
#[derive(Debug, Clone)]
pub struct DiagramBuilder {
    service: ServiceId,
    flows: Vec<Flow>,
}

impl DiagramBuilder {
    /// Starts a diagram for the given service.
    pub fn new(service: impl Into<ServiceId>) -> Self {
        DiagramBuilder { service: service.into(), flows: Vec::new() }
    }

    /// Adds an arbitrary flow.
    ///
    /// # Errors
    ///
    /// Propagates [`Flow::new`] validation errors.
    pub fn flow(
        mut self,
        from: Node,
        to: Node,
        fields: impl IntoIterator<Item = impl Into<FieldId>>,
        purpose: impl Into<String>,
        order: u32,
    ) -> Result<Self, ModelError> {
        let fields = fields.into_iter().map(Into::into);
        self.flows.push(Flow::new(from, to, fields.collect::<Vec<_>>(), purpose, order)?);
        Ok(self)
    }

    /// Adds a user → actor collection flow.
    ///
    /// # Errors
    ///
    /// Propagates [`Flow::new`] validation errors.
    pub fn collect(
        self,
        actor: impl Into<ActorId>,
        fields: impl IntoIterator<Item = impl Into<FieldId>>,
        purpose: impl Into<String>,
        order: u32,
    ) -> Result<Self, ModelError> {
        self.flow(Node::User, Node::Actor(actor.into()), fields, purpose, order)
    }

    /// Adds an actor → actor disclosure flow.
    ///
    /// # Errors
    ///
    /// Propagates [`Flow::new`] validation errors.
    pub fn disclose(
        self,
        from: impl Into<ActorId>,
        to: impl Into<ActorId>,
        fields: impl IntoIterator<Item = impl Into<FieldId>>,
        purpose: impl Into<String>,
        order: u32,
    ) -> Result<Self, ModelError> {
        self.flow(Node::Actor(from.into()), Node::Actor(to.into()), fields, purpose, order)
    }

    /// Adds an actor → datastore creation flow.
    ///
    /// # Errors
    ///
    /// Propagates [`Flow::new`] validation errors.
    pub fn create(
        self,
        actor: impl Into<ActorId>,
        datastore: impl Into<DatastoreId>,
        fields: impl IntoIterator<Item = impl Into<FieldId>>,
        purpose: impl Into<String>,
        order: u32,
    ) -> Result<Self, ModelError> {
        self.flow(
            Node::Actor(actor.into()),
            Node::Datastore(datastore.into()),
            fields,
            purpose,
            order,
        )
    }

    /// Adds an actor → anonymised-datastore flow. Structurally identical to
    /// [`DiagramBuilder::create`]; the `anon` classification comes from the
    /// datastore being declared anonymised in the catalog.
    ///
    /// # Errors
    ///
    /// Propagates [`Flow::new`] validation errors.
    pub fn anonymise(
        self,
        actor: impl Into<ActorId>,
        datastore: impl Into<DatastoreId>,
        fields: impl IntoIterator<Item = impl Into<FieldId>>,
        purpose: impl Into<String>,
        order: u32,
    ) -> Result<Self, ModelError> {
        self.create(actor, datastore, fields, purpose, order)
    }

    /// Adds a datastore → actor read flow.
    ///
    /// # Errors
    ///
    /// Propagates [`Flow::new`] validation errors.
    pub fn read(
        self,
        actor: impl Into<ActorId>,
        datastore: impl Into<DatastoreId>,
        fields: impl IntoIterator<Item = impl Into<FieldId>>,
        purpose: impl Into<String>,
        order: u32,
    ) -> Result<Self, ModelError> {
        self.flow(
            Node::Datastore(datastore.into()),
            Node::Actor(actor.into()),
            fields,
            purpose,
            order,
        )
    }

    /// Number of flows added so far.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Returns `true` if no flows have been added.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Finishes the diagram.
    pub fn build(self) -> DataFlowDiagram {
        DataFlowDiagram::new(self.service, self.flows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn medical_service() -> DataFlowDiagram {
        DiagramBuilder::new("MedicalService")
            .collect("Receptionist", ["Name", "DOB"], "book appointment", 1)
            .unwrap()
            .create(
                "Receptionist",
                "Appointments",
                ["Name", "DOB", "Appointment"],
                "book appointment",
                2,
            )
            .unwrap()
            .read("Doctor", "Appointments", ["Name", "Appointment"], "consultation", 3)
            .unwrap()
            .collect("Doctor", ["Medical Issues"], "consultation", 4)
            .unwrap()
            .create("Doctor", "EHR", ["Medical Issues", "Diagnosis", "Treatment"], "treatment", 5)
            .unwrap()
            .read("Nurse", "EHR", ["Treatment"], "administer treatment", 6)
            .unwrap()
            .build()
    }

    #[test]
    fn builder_produces_flows_in_execution_order() {
        let diagram = medical_service();
        assert_eq!(diagram.service().as_str(), "MedicalService");
        assert_eq!(diagram.len(), 6);
        let orders: Vec<u32> = diagram.iter().map(Flow::order).collect();
        assert_eq!(orders, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn flows_are_sorted_even_when_added_out_of_order() {
        let diagram = DiagramBuilder::new("S")
            .read("Doctor", "EHR", ["Diagnosis"], "p", 5)
            .unwrap()
            .collect("Doctor", ["Diagnosis"], "p", 1)
            .unwrap()
            .build();
        let orders: Vec<u32> = diagram.iter().map(Flow::order).collect();
        assert_eq!(orders, vec![1, 5]);
    }

    #[test]
    fn add_flow_keeps_sort_order() {
        let mut diagram = medical_service();
        let extra = Flow::new(
            Node::datastore("EHR"),
            Node::actor("Administrator"),
            [FieldId::new("Name")],
            "maintenance",
            4,
        )
        .unwrap();
        diagram.add_flow(extra);
        let orders: Vec<u32> = diagram.iter().map(Flow::order).collect();
        assert_eq!(orders, vec![1, 2, 3, 4, 4, 5, 6]);
    }

    #[test]
    fn node_field_and_actor_extraction() {
        let diagram = medical_service();
        let actors: Vec<_> = diagram.actors().iter().map(|a| a.as_str().to_owned()).collect();
        assert_eq!(actors, vec!["Doctor", "Nurse", "Receptionist"]);
        let stores: Vec<_> = diagram.datastores().iter().map(|d| d.as_str().to_owned()).collect();
        assert_eq!(stores, vec!["Appointments", "EHR"]);
        assert!(diagram.fields().contains(&FieldId::new("Diagnosis")));
        assert_eq!(diagram.nodes().len(), 6);
    }

    #[test]
    fn query_helpers_filter_flows() {
        let diagram = medical_service();
        let anon = BTreeSet::new();
        assert_eq!(diagram.flows_of_kind(FlowKind::Collect, &anon).len(), 2);
        assert_eq!(diagram.flows_of_kind(FlowKind::Read, &anon).len(), 2);
        assert_eq!(diagram.flows_of_kind(FlowKind::Create, &anon).len(), 2);
        assert_eq!(diagram.flows_involving(&ActorId::new("Doctor")).len(), 3);
        assert_eq!(diagram.flows_touching(&DatastoreId::new("EHR")).len(), 2);
        let written = diagram.fields_written_to(&DatastoreId::new("EHR"));
        assert!(written.contains(&FieldId::new("Diagnosis")));
        assert_eq!(written.len(), 3);
    }

    #[test]
    fn order_multiplicity_counts_duplicates() {
        let mut diagram = medical_service();
        diagram.add_flow(
            Flow::new(
                Node::datastore("EHR"),
                Node::actor("Doctor"),
                [FieldId::new("Diagnosis")],
                "review",
                6,
            )
            .unwrap(),
        );
        let counts = diagram.order_multiplicity();
        assert_eq!(counts[&6], 2);
        assert_eq!(counts[&1], 1);
    }

    #[test]
    fn display_lists_service_and_flows() {
        let text = medical_service().to_string();
        assert!(text.contains("MedicalService"));
        assert!(text.contains("book appointment"));
        assert!(text.lines().count() >= 7);
    }

    #[test]
    fn empty_builder_builds_empty_diagram() {
        let builder = DiagramBuilder::new("S");
        assert!(builder.is_empty());
        assert_eq!(builder.len(), 0);
        let diagram = builder.build();
        assert!(diagram.is_empty());
    }
}
