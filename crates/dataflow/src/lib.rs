//! # privacy-dataflow
//!
//! The data-flow modelling framework of Section II-A of *"Identifying
//! Privacy Risks in Distributed Data Services"* (Grace et al., ICDCS 2018).
//!
//! Developers describe each service of their system as a **purpose-driven
//! data-flow diagram**: a set of nodes (the data subject, actors and
//! datastores) connected by directed **flow arrows**, each labelled with the
//! set of data fields that flows, the purpose of the flow and a numeric
//! execution order.
//!
//! The crate provides:
//!
//! * the diagram metamodel ([`node`], [`flow`], [`diagram`]);
//! * a builder for constructing diagrams fluently ([`diagram::DiagramBuilder`]);
//! * composition of several per-service diagrams into a whole-system view
//!   ([`system::SystemDataFlows`]);
//! * validation against the shared [`privacy_model::Catalog`]
//!   ([`validate`]); and
//! * Graphviz DOT export for visualisation ([`dot`]), mirroring Fig. 1 of
//!   the paper.
//!
//! # Example
//!
//! ```
//! use privacy_dataflow::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let diagram = DiagramBuilder::new("MedicalService")
//!     .collect("Receptionist", ["Name", "Date of Birth"], "book appointment", 1)?
//!     .create("Receptionist", "Appointments", ["Name", "Date of Birth", "Appointment"],
//!             "book appointment", 2)?
//!     .read("Doctor", "Appointments", ["Name", "Appointment"], "consultation", 3)?
//!     .build();
//! assert_eq!(diagram.flows().len(), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diagram;
pub mod dot;
pub mod flow;
pub mod node;
pub mod system;
pub mod validate;

pub use diagram::{DataFlowDiagram, DiagramBuilder};
pub use flow::{Flow, FlowKind};
pub use node::Node;
pub use system::SystemDataFlows;
pub use validate::{ValidationIssue, ValidationReport};

/// Convenience re-export of the most commonly used items.
pub mod prelude {
    pub use crate::diagram::{DataFlowDiagram, DiagramBuilder};
    pub use crate::flow::{Flow, FlowKind};
    pub use crate::node::Node;
    pub use crate::system::SystemDataFlows;
    pub use crate::validate::{ValidationIssue, ValidationReport};
}
