//! # privacy-runtime
//!
//! A distributed data-service simulator and runtime privacy monitor.
//!
//! The paper argues that the generated privacy model is useful not only at
//! design time but also *"to monitor the privacy risks during the lifetime of
//! the service (as the users, data, and behaviour may change)"*. The authors'
//! OPERANDO deployment is not available, so this crate provides the closest
//! substitute: an in-process service runtime that executes the modelled
//! data flows as discrete events against in-memory datastores (with access
//! control enforced), an append-only event log, a runtime monitor that walks
//! each user's privacy state as the events arrive, and a multi-threaded
//! driver that replays synthetic workloads concurrently.
//!
//! * [`event`] — privacy events and the event log;
//! * [`store`] — in-memory, access-controlled datastores;
//! * [`engine`] — the service engine executing data-flow diagrams;
//! * [`monitor`] — the scan-path runtime privacy monitor raising alerts;
//! * [`indexed`] — the index-backed streaming monitor: events resolve once
//!   through the shared [`privacy_lts::LtsIndex`] interners and per-user
//!   state is sharded by `UserId` hash over worker threads, with an alert
//!   stream pinned identical to the scan monitor;
//! * [`log_index`] — the columnar [`EventLogIndex`] the operation-time
//!   compliance checker probes instead of re-scanning the log per statement,
//!   append-aware so periodic audits over the (append-only) log pay only for
//!   the new suffix;
//! * [`snapshot`] — versioned, checksummed [`MonitorSnapshot`]s so a monitor
//!   can restart mid-stream and resume exactly where it left off;
//! * [`concurrent`] — a crossbeam-based concurrent workload driver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concurrent;
pub mod engine;
pub mod event;
pub mod indexed;
pub mod log_index;
pub mod monitor;
pub mod snapshot;
pub mod store;

pub use concurrent::{run_concurrent_workload, ConcurrentConfig};
pub use engine::{ExecutionOutcome, ServiceEngine, ServiceRequest};
pub use event::{Event, EventLog};
pub use indexed::{shard_of_user, IndexedMonitor, SHARD_COUNT};
pub use log_index::{ErasureTimeline, EventLogIndex};
pub use monitor::{Alert, RuntimeMonitor};
pub use snapshot::{MonitorSnapshot, ShardSnapshot, SnapshotError};
pub use store::DatastoreState;

/// Convenience re-export of the most commonly used items.
pub mod prelude {
    pub use crate::concurrent::{run_concurrent_workload, ConcurrentConfig};
    pub use crate::engine::{ExecutionOutcome, ServiceEngine, ServiceRequest};
    pub use crate::event::{Event, EventLog};
    pub use crate::indexed::{shard_of_user, IndexedMonitor, SHARD_COUNT};
    pub use crate::log_index::{ErasureTimeline, EventLogIndex};
    pub use crate::monitor::{Alert, RuntimeMonitor};
    pub use crate::snapshot::{MonitorSnapshot, ShardSnapshot, SnapshotError};
    pub use crate::store::DatastoreState;
}
