//! Concurrent workload execution.
//!
//! Distributed data services handle many users at once. This driver replays a
//! workload of service requests across a pool of worker threads sharing the
//! engine (protected by a `parking_lot` mutex) and streams the produced
//! events over a crossbeam channel to the runtime monitor, demonstrating that
//! the monitoring path keeps up with concurrent executions and that the final
//! result is independent of interleaving (every request is logged exactly
//! once).

use crate::engine::{ServiceEngine, ServiceRequest};
use crate::event::Event;
use crate::monitor::{Alert, RuntimeMonitor};
use crossbeam::channel;
use parking_lot::Mutex;
use privacy_model::{Record, UserId};
use std::sync::Arc;
use std::thread;

/// Configuration of the concurrent driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConcurrentConfig {
    /// Number of worker threads.
    pub workers: usize,
}

impl Default for ConcurrentConfig {
    fn default() -> Self {
        ConcurrentConfig { workers: 4 }
    }
}

/// The result of a concurrent workload run.
#[derive(Debug)]
pub struct ConcurrentOutcome {
    /// The engine after every request has executed (owns the event log and
    /// datastore contents).
    pub engine: ServiceEngine,
    /// The monitor after observing every event.
    pub monitor: RuntimeMonitor,
    /// The alerts raised, in observation order.
    pub alerts: Vec<Alert>,
    /// Number of requests that failed (unknown service).
    pub failed_requests: usize,
}

/// Executes a workload of service requests concurrently and feeds every event
/// through the runtime monitor.
///
/// The user-supplied `user_data` closure provides the data-subject input for
/// each request (e.g. a synthetic health record for that user).
pub fn run_concurrent_workload(
    engine: ServiceEngine,
    monitor: RuntimeMonitor,
    workload: &[ServiceRequest],
    config: ConcurrentConfig,
    user_data: impl Fn(&UserId) -> Record + Send + Sync,
) -> ConcurrentOutcome {
    let engine = Arc::new(Mutex::new(engine));
    let failed = Arc::new(Mutex::new(0usize));
    let (event_tx, event_rx) = channel::unbounded::<Event>();
    let (work_tx, work_rx) = channel::unbounded::<ServiceRequest>();

    for request in workload {
        work_tx.send(request.clone()).expect("channel open");
    }
    drop(work_tx);

    let workers = config.workers.max(1);
    thread::scope(|scope| {
        for _ in 0..workers {
            let work_rx = work_rx.clone();
            let event_tx = event_tx.clone();
            let engine = Arc::clone(&engine);
            let failed = Arc::clone(&failed);
            let user_data = &user_data;
            scope.spawn(move || {
                while let Ok(request) = work_rx.recv() {
                    let data = user_data(request.user());
                    let mut engine = engine.lock();
                    match engine.execute(request.user(), request.service(), &data) {
                        Ok(outcome) => {
                            for event in outcome.events() {
                                let _ = event_tx.send(event.clone());
                            }
                        }
                        Err(_) => {
                            *failed.lock() += 1;
                        }
                    }
                }
            });
        }
        drop(event_tx);

        // The monitor consumes events on the calling thread while workers run.
        let mut monitor = monitor;
        let mut alerts = Vec::new();
        while let Ok(event) = event_rx.recv() {
            alerts.extend(monitor.observe(&event));
        }
        let engine =
            Arc::try_unwrap(engine).map(Mutex::into_inner).unwrap_or_else(|arc| arc.lock().clone());
        let failed_requests = *failed.lock();
        ConcurrentOutcome { engine, monitor, alerts, failed_requests }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use privacy_access::{AccessControlList, AccessPolicy, Grant};
    use privacy_dataflow::{DiagramBuilder, SystemDataFlows};
    use privacy_model::{
        Actor, ActorId, Catalog, DataField, DataSchema, DatastoreDecl, FieldId,
        SensitivityCategory, ServiceDecl, ServiceId, UserProfile,
    };

    fn fixture() -> (Catalog, SystemDataFlows, AccessPolicy) {
        let mut catalog = Catalog::new();
        catalog.add_actor(Actor::role("Doctor")).unwrap();
        catalog.add_actor(Actor::role("Administrator")).unwrap();
        catalog.add_field(DataField::identifier("Name")).unwrap();
        catalog.add_field(DataField::sensitive("Diagnosis")).unwrap();
        catalog
            .add_schema(DataSchema::new(
                "EHRSchema",
                [FieldId::new("Name"), FieldId::new("Diagnosis")],
            ))
            .unwrap();
        catalog.add_datastore(DatastoreDecl::new("EHR", "EHRSchema")).unwrap();
        catalog.add_service(ServiceDecl::new("MedicalService", [ActorId::new("Doctor")])).unwrap();

        let medical = DiagramBuilder::new("MedicalService")
            .collect("Doctor", ["Name", "Diagnosis"], "consultation", 1)
            .unwrap()
            .create("Doctor", "EHR", ["Name", "Diagnosis"], "record", 2)
            .unwrap()
            .build();
        let system = SystemDataFlows::new().with_diagram(medical).unwrap();
        let acl = AccessControlList::new()
            .with_grant(Grant::read_write_all("Doctor", "EHR"))
            .with_grant(Grant::read_all("Administrator", "EHR"));
        (catalog, system, AccessPolicy::from_parts(acl, Default::default()))
    }

    #[test]
    fn concurrent_workload_processes_every_request_exactly_once() {
        let (catalog, system, policy) = fixture();
        let engine = ServiceEngine::new(catalog.clone(), system, policy.clone());
        let mut monitor = RuntimeMonitor::new(catalog, policy);

        let users: Vec<UserId> = (0..8).map(|i| UserId::new(format!("u{i}"))).collect();
        for user in &users {
            monitor.register_user(
                &UserProfile::new(user.as_str())
                    .consents_to(ServiceId::new("MedicalService"))
                    .with_category_sensitivity(
                        FieldId::new("Diagnosis"),
                        SensitivityCategory::High,
                    ),
            );
        }
        let workload: Vec<ServiceRequest> =
            users.iter().map(|u| ServiceRequest::new(u.as_str(), "MedicalService")).collect();

        let outcome = run_concurrent_workload(
            engine,
            monitor,
            &workload,
            ConcurrentConfig { workers: 4 },
            |_user| Record::new().with("Name", "X").with("Diagnosis", "flu"),
        );

        // Two flows per execution, eight executions.
        assert_eq!(outcome.engine.log().len(), 16);
        assert_eq!(outcome.failed_requests, 0);
        // Every user triggers exactly one Medium alert (the administrator can
        // read their diagnosis once it is stored).
        assert_eq!(outcome.alerts.len(), 8);
        assert_eq!(outcome.monitor.alerts().len(), 8);
        // Every user's record landed in the EHR.
        assert_eq!(
            outcome.engine.stores().record_count(&privacy_model::DatastoreId::new("EHR")),
            8
        );
    }

    #[test]
    fn unknown_services_count_as_failed_requests() {
        let (catalog, system, policy) = fixture();
        let engine = ServiceEngine::new(catalog.clone(), system, policy.clone());
        let monitor = RuntimeMonitor::new(catalog, policy);
        let workload = vec![
            ServiceRequest::new("u0", "NoSuchService"),
            ServiceRequest::new("u1", "MedicalService"),
        ];
        let outcome = run_concurrent_workload(
            engine,
            monitor,
            &workload,
            ConcurrentConfig::default(),
            |_| Record::new(),
        );
        assert_eq!(outcome.failed_requests, 1);
        assert_eq!(outcome.engine.log().len(), 2);
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let (catalog, system, policy) = fixture();
        let engine = ServiceEngine::new(catalog.clone(), system, policy.clone());
        let monitor = RuntimeMonitor::new(catalog, policy);
        let workload = vec![ServiceRequest::new("u0", "MedicalService")];
        let outcome = run_concurrent_workload(
            engine,
            monitor,
            &workload,
            ConcurrentConfig { workers: 0 },
            |_| Record::new(),
        );
        assert_eq!(outcome.engine.log().len(), 2);
    }
}
