//! The runtime privacy monitor.
//!
//! The monitor consumes the engine's events and maintains, per user, the
//! current privacy state of the generated LTS (the same `has` / `could`
//! semantics the design-time generator uses). Whenever an event causes a
//! non-allowed actor to identify — or become able to identify — a field the
//! user is sensitive about, an [`Alert`] is raised with the risk level from
//! the risk matrix. This is the "monitor the privacy risks during the
//! lifetime of the service" path of the paper.

use crate::event::Event;
use privacy_access::{AccessPolicy, Permission};
use privacy_lts::{ActionKind, PrivacyState, VarSpace};
use privacy_model::{Catalog, RiskLevel, UserId, UserProfile};
use privacy_risk::{LikelihoodModel, RiskMatrix, SensitivityModel};
use std::collections::BTreeMap;
use std::fmt;

/// An alert raised by the monitor.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    sequence: u64,
    user: UserId,
    level: RiskLevel,
    message: String,
}

impl Alert {
    /// Raises an alert (shared by the scan-path [`RuntimeMonitor`] and the
    /// index-backed [`crate::indexed::IndexedMonitor`], whose alert streams
    /// are pinned identical by the differential property tests).
    pub(crate) fn raise(sequence: u64, user: UserId, level: RiskLevel, message: String) -> Alert {
        Alert { sequence, user, level, message }
    }

    /// Reconstructs an alert from its parts — the persistence/transport
    /// path: snapshot decoding and the distributed supervisor's ack frames
    /// rebuild alerts a monitor raised in another life (or another
    /// process). Monitors themselves only raise alerts internally.
    pub fn from_parts(sequence: u64, user: UserId, level: RiskLevel, message: String) -> Alert {
        Alert { sequence, user, level, message }
    }

    /// The sequence number of the event that triggered the alert.
    pub fn sequence(&self) -> u64 {
        self.sequence
    }

    /// The affected user.
    pub fn user(&self) -> &UserId {
        &self.user
    }

    /// The risk level of the alert.
    pub fn level(&self) -> RiskLevel {
        self.level
    }

    /// A human readable description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for Alert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] event #{} user {}: {}", self.level, self.sequence, self.user, self.message)
    }
}

/// The runtime privacy monitor for a set of registered users.
#[derive(Debug, Clone)]
pub struct RuntimeMonitor {
    catalog: Catalog,
    policy: AccessPolicy,
    space: VarSpace,
    matrix: RiskMatrix,
    likelihood: LikelihoodModel,
    alert_threshold: RiskLevel,
    users: BTreeMap<UserId, (SensitivityModel, PrivacyState)>,
    alerts: Vec<Alert>,
}

impl RuntimeMonitor {
    /// Creates a monitor with the standard risk matrix and likelihood model.
    pub fn new(catalog: Catalog, policy: AccessPolicy) -> Self {
        let space = VarSpace::from_catalog(&catalog);
        RuntimeMonitor {
            catalog,
            policy,
            space,
            matrix: RiskMatrix::standard(),
            likelihood: LikelihoodModel::standard(),
            alert_threshold: RiskLevel::Medium,
            users: BTreeMap::new(),
            alerts: Vec::new(),
        }
    }

    /// Builder-style: only raise alerts at or above this level (default
    /// Medium).
    pub fn with_alert_threshold(mut self, threshold: RiskLevel) -> Self {
        self.alert_threshold = threshold;
        self
    }

    /// Builder-style: overrides the risk matrix.
    pub fn with_matrix(mut self, matrix: RiskMatrix) -> Self {
        self.matrix = matrix;
        self
    }

    /// Builder-style: overrides the likelihood model.
    pub fn with_likelihood(mut self, likelihood: LikelihoodModel) -> Self {
        self.likelihood = likelihood;
        self
    }

    /// Registers a user so their privacy state is tracked.
    pub fn register_user(&mut self, profile: &UserProfile) {
        let sensitivity = SensitivityModel::new(&self.catalog, profile);
        let state = PrivacyState::absolute(&self.space);
        self.users.insert(profile.id().clone(), (sensitivity, state));
    }

    /// The current privacy state of a registered user.
    pub fn state_of(&self, user: &UserId) -> Option<&PrivacyState> {
        self.users.get(user).map(|(_, state)| state)
    }

    /// The alerts raised so far.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// The alerts concerning one user.
    pub fn alerts_for(&self, user: &UserId) -> Vec<&Alert> {
        self.alerts.iter().filter(|a| a.user() == user).collect()
    }

    /// Number of registered users.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Consumes one event, updating the affected user's privacy state and
    /// possibly raising alerts. Events for unregistered users and denied
    /// events are ignored (denied events never changed any data exposure).
    pub fn observe(&mut self, event: &Event) -> Vec<Alert> {
        if !event.permitted() {
            return Vec::new();
        }
        let Some((sensitivity, state)) = self.users.get_mut(&event.user().clone()) else {
            return Vec::new();
        };

        let before = state.clone();
        match event.action() {
            ActionKind::Collect | ActionKind::Disclose | ActionKind::Read => {
                for field in event.fields() {
                    state.set_has(&self.space, event.actor(), field, true);
                }
            }
            ActionKind::Create | ActionKind::Anon => {
                if let Some(store) = event.datastore() {
                    for field in event.fields() {
                        for reader in self.policy.actors_with(Permission::Read, store, field) {
                            state.set_could(&self.space, &reader, field, true);
                        }
                    }
                }
            }
            ActionKind::Delete => {
                if let Some(store) = event.datastore() {
                    for field in event.fields() {
                        for reader in self.policy.actors_with(Permission::Read, store, field) {
                            state.set_could(&self.space, &reader, field, false);
                        }
                    }
                }
            }
            // Future action kinds added to the (non-exhaustive) enum do not
            // change the tracked privacy state until modelled explicitly.
            _ => {}
        }

        // Raise alerts for newly exposed (actor, field) pairs involving
        // non-allowed actors.
        let mut raised = Vec::new();
        for (actor, field) in state.exposed_pairs(&self.space) {
            if before.has_or_could(&self.space, actor, field) {
                continue;
            }
            if sensitivity.is_allowed(actor) {
                continue;
            }
            let impact = sensitivity.relative_sensitivity(field, actor);
            let probability = match event.datastore() {
                Some(store) => self.likelihood.probability(actor, store),
                // Direct identification (collect/disclose/read event by the
                // actor itself) has certainty rather than scenario-based
                // likelihood.
                None => 1.0,
            };
            let probability = if state.has(&self.space, actor, field) { 1.0 } else { probability };
            let level = self.matrix.combine(impact, probability);
            if level.at_least(self.alert_threshold) {
                raised.push(Alert {
                    sequence: event.sequence(),
                    user: event.user().clone(),
                    level,
                    message: format!(
                        "non-allowed actor {actor} can now identify `{field}` \
                         (action {}, impact {:.2}, likelihood {:.2})",
                        event.action(),
                        impact.value(),
                        probability
                    ),
                });
            }
        }
        self.alerts.extend(raised.clone());
        raised
    }

    /// Convenience: observes a whole slice of events.
    pub fn observe_all(&mut self, events: &[Event]) -> Vec<Alert> {
        events.iter().flat_map(|e| self.observe(e)).collect()
    }
}

impl fmt::Display for RuntimeMonitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "runtime monitor: {} users tracked, {} alerts raised",
            self.users.len(),
            self.alerts.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServiceEngine;
    use privacy_access::{AccessControlList, Grant, PolicyDelta};
    use privacy_dataflow::{DiagramBuilder, SystemDataFlows};
    use privacy_model::{
        Actor, ActorId, DataField, DataSchema, DatastoreDecl, FieldId, Record, SensitivityCategory,
        ServiceDecl, ServiceId,
    };

    fn fixture() -> (Catalog, SystemDataFlows, AccessPolicy) {
        let mut catalog = Catalog::new();
        catalog.add_actor(Actor::role("Doctor")).unwrap();
        catalog.add_actor(Actor::role("Administrator")).unwrap();
        catalog.add_field(DataField::identifier("Name")).unwrap();
        catalog.add_field(DataField::sensitive("Diagnosis")).unwrap();
        catalog
            .add_schema(DataSchema::new(
                "EHRSchema",
                [FieldId::new("Name"), FieldId::new("Diagnosis")],
            ))
            .unwrap();
        catalog.add_datastore(DatastoreDecl::new("EHR", "EHRSchema")).unwrap();
        catalog.add_service(ServiceDecl::new("MedicalService", [ActorId::new("Doctor")])).unwrap();

        let medical = DiagramBuilder::new("MedicalService")
            .collect("Doctor", ["Name", "Diagnosis"], "consultation", 1)
            .unwrap()
            .create("Doctor", "EHR", ["Name", "Diagnosis"], "record", 2)
            .unwrap()
            .build();
        let system = SystemDataFlows::new().with_diagram(medical).unwrap();

        let acl = AccessControlList::new()
            .with_grant(Grant::read_write_all("Doctor", "EHR"))
            .with_grant(Grant::read_all("Administrator", "EHR"));
        (catalog, system, AccessPolicy::from_parts(acl, Default::default()))
    }

    fn alice_profile() -> UserProfile {
        UserProfile::new("alice")
            .consents_to(ServiceId::new("MedicalService"))
            .with_category_sensitivity(FieldId::new("Diagnosis"), SensitivityCategory::High)
    }

    #[test]
    fn monitor_raises_a_medium_alert_when_the_admin_gains_access() {
        let (catalog, system, policy) = fixture();
        let mut engine = ServiceEngine::new(catalog.clone(), system, policy.clone());
        let mut monitor = RuntimeMonitor::new(catalog, policy);
        monitor.register_user(&alice_profile());
        assert_eq!(monitor.user_count(), 1);

        let outcome = engine
            .execute(
                &UserId::new("alice"),
                &ServiceId::new("MedicalService"),
                &Record::new().with("Name", "Alice").with("Diagnosis", "flu"),
            )
            .unwrap();
        let alerts = monitor.observe_all(outcome.events());

        // The create flow makes the administrator able to read the sensitive
        // diagnosis: one Medium alert, matching the design-time analysis.
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].level(), RiskLevel::Medium);
        assert!(alerts[0].message().contains("Administrator"));
        assert!(alerts[0].message().contains("Diagnosis"));
        assert_eq!(monitor.alerts_for(&UserId::new("alice")).len(), 1);

        // The tracked state reflects both the doctor's identification and the
        // administrator's potential access.
        let state = monitor.state_of(&UserId::new("alice")).unwrap();
        let space = VarSpace::from_catalog(monitor_catalog());
        assert!(state.has(&space, &ActorId::new("Doctor"), &FieldId::new("Diagnosis")));
        assert!(state.could(&space, &ActorId::new("Administrator"), &FieldId::new("Diagnosis")));
        assert!(monitor.to_string().contains("1 users"));
    }

    fn monitor_catalog() -> &'static Catalog {
        use std::sync::OnceLock;
        static CATALOG: OnceLock<Catalog> = OnceLock::new();
        CATALOG.get_or_init(|| fixture().0)
    }

    #[test]
    fn revised_policy_raises_no_alert() {
        let (catalog, system, policy) = fixture();
        let revised = policy.with_applied(&PolicyDelta::new().revoke(
            "Administrator",
            Permission::Read,
            "EHR",
        ));
        let mut engine = ServiceEngine::new(catalog.clone(), system, revised.clone());
        let mut monitor = RuntimeMonitor::new(catalog, revised);
        monitor.register_user(&alice_profile());

        let outcome = engine
            .execute(
                &UserId::new("alice"),
                &ServiceId::new("MedicalService"),
                &Record::new().with("Name", "Alice").with("Diagnosis", "flu"),
            )
            .unwrap();
        let alerts = monitor.observe_all(outcome.events());
        assert!(alerts.is_empty());
        assert!(monitor.alerts().is_empty());
    }

    #[test]
    fn unregistered_users_and_denied_events_are_ignored() {
        let (catalog, system, policy) = fixture();
        let mut engine = ServiceEngine::new(catalog.clone(), system, policy.clone());
        let mut monitor = RuntimeMonitor::new(catalog, policy);
        // No registration for bob.
        let outcome = engine
            .execute(
                &UserId::new("bob"),
                &ServiceId::new("MedicalService"),
                &Record::new().with("Diagnosis", "flu"),
            )
            .unwrap();
        assert!(monitor.observe_all(outcome.events()).is_empty());
        assert!(monitor.state_of(&UserId::new("bob")).is_none());
    }

    #[test]
    fn delete_events_clear_potential_access() {
        let (catalog, system, policy) = fixture();
        let mut engine = ServiceEngine::new(catalog.clone(), system, policy.clone());
        let mut monitor = RuntimeMonitor::new(catalog.clone(), policy);
        monitor.register_user(&alice_profile());
        let outcome = engine
            .execute(
                &UserId::new("alice"),
                &ServiceId::new("MedicalService"),
                &Record::new().with("Diagnosis", "flu"),
            )
            .unwrap();
        monitor.observe_all(outcome.events());

        let delete = Event::new(
            99,
            "alice",
            "MedicalService",
            "Doctor",
            ActionKind::Delete,
            [FieldId::new("Diagnosis")],
            Some(privacy_model::DatastoreId::new("EHR")),
            true,
        );
        monitor.observe(&delete);
        let state = monitor.state_of(&UserId::new("alice")).unwrap();
        let space = VarSpace::from_catalog(&catalog);
        assert!(!state.could(&space, &ActorId::new("Administrator"), &FieldId::new("Diagnosis")));
    }

    #[test]
    fn alert_threshold_filters_low_findings() {
        let (catalog, system, policy) = fixture();
        let mut engine = ServiceEngine::new(catalog.clone(), system, policy.clone());
        let mut monitor =
            RuntimeMonitor::new(catalog, policy).with_alert_threshold(RiskLevel::High);
        monitor.register_user(&alice_profile());
        let outcome = engine
            .execute(
                &UserId::new("alice"),
                &ServiceId::new("MedicalService"),
                &Record::new().with("Diagnosis", "flu"),
            )
            .unwrap();
        // The exposure is Medium, which the High threshold suppresses.
        assert!(monitor.observe_all(outcome.events()).is_empty());
    }
}
