//! The service engine: executes data-flow diagrams as runtime events.
//!
//! One execution of a service replays the service's flow arrows in their
//! declared order against the in-memory datastores, enforcing the
//! access-control policy on every datastore read and write. The engine emits
//! one [`Event`] per flow (permitted or denied), which is exactly the input
//! the runtime privacy monitor consumes.

use crate::event::{Event, EventLog};
use crate::store::DatastoreState;
use privacy_access::{AccessPolicy, Permission};
use privacy_dataflow::{FlowKind, SystemDataFlows};
use privacy_lts::ActionKind;
use privacy_model::{Catalog, DatastoreId, ModelError, Record, ServiceId, UserId, Value};
use std::collections::BTreeSet;
use std::fmt;

/// One request: a user asks for one execution of a service.
///
/// Requests are what workload drivers (the synthetic generator in
/// `privacy-synth`, the [`crate::concurrent`] driver) hand to the engine;
/// the type lives here so producers and consumers of workloads agree on it
/// without the generator crate having to sit below the runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceRequest {
    user: UserId,
    service: ServiceId,
}

impl ServiceRequest {
    /// Creates a request.
    pub fn new(user: impl Into<UserId>, service: impl Into<ServiceId>) -> Self {
        ServiceRequest { user: user.into(), service: service.into() }
    }

    /// The requesting user.
    pub fn user(&self) -> &UserId {
        &self.user
    }

    /// The requested service.
    pub fn service(&self) -> &ServiceId {
        &self.service
    }
}

impl fmt::Display for ServiceRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.user, self.service)
    }
}

/// The outcome of one service execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionOutcome {
    service: ServiceId,
    user: UserId,
    events: Vec<Event>,
    denied: usize,
}

impl ExecutionOutcome {
    /// The executed service.
    pub fn service(&self) -> &ServiceId {
        &self.service
    }

    /// The data subject.
    pub fn user(&self) -> &UserId {
        &self.user
    }

    /// The events produced, in execution order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of denied (policy-blocked) flows.
    pub fn denied(&self) -> usize {
        self.denied
    }

    /// Returns `true` if every flow was permitted.
    pub fn fully_permitted(&self) -> bool {
        self.denied == 0
    }
}

impl fmt::Display for ExecutionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "execution of {} for {}: {} events, {} denied",
            self.service,
            self.user,
            self.events.len(),
            self.denied
        )
    }
}

/// The service engine.
#[derive(Debug, Clone)]
pub struct ServiceEngine {
    catalog: Catalog,
    system: SystemDataFlows,
    policy: AccessPolicy,
    stores: DatastoreState,
    log: EventLog,
}

impl ServiceEngine {
    /// Creates an engine over a system model.
    pub fn new(catalog: Catalog, system: SystemDataFlows, policy: AccessPolicy) -> Self {
        ServiceEngine {
            catalog,
            system,
            policy,
            stores: DatastoreState::new(),
            log: EventLog::new(),
        }
    }

    /// The catalog the engine serves.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The current datastore contents.
    pub fn stores(&self) -> &DatastoreState {
        &self.stores
    }

    /// The global event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Replaces the access policy (e.g. after the designer applies a
    /// [`privacy_access::PolicyDelta`]).
    pub fn set_policy(&mut self, policy: AccessPolicy) {
        self.policy = policy;
    }

    /// Executes one service for one user.
    ///
    /// `user_data` supplies the values the data subject provides to `collect`
    /// flows (missing fields are filled with [`Value::Null`]).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unknown`] if the service has no data-flow
    /// diagram.
    pub fn execute(
        &mut self,
        user: &UserId,
        service: &ServiceId,
        user_data: &Record,
    ) -> Result<ExecutionOutcome, ModelError> {
        let diagram = self
            .system
            .diagram(service)
            .ok_or_else(|| ModelError::unknown("service diagram", service.as_str()))?
            .clone();
        let anonymised_stores: BTreeSet<DatastoreId> = self
            .catalog
            .datastores()
            .filter(|d| d.is_anonymised())
            .map(|d| d.id().clone())
            .collect();

        let mut events = Vec::new();
        let mut denied = 0;

        for flow in diagram.iter() {
            let kind = flow.kind(&anonymised_stores);
            let actor = flow
                .acting_actor()
                .cloned()
                .unwrap_or_else(|| privacy_model::ActorId::new("<unknown>"));
            let sequence = self.log.next_sequence();

            let (action, datastore, permitted) = match kind {
                FlowKind::Collect | FlowKind::Disclose => {
                    // Person-to-person flows are not mediated by a datastore,
                    // so the access policy does not constrain them here.
                    let action = if kind == FlowKind::Collect {
                        ActionKind::Collect
                    } else {
                        ActionKind::Disclose
                    };
                    (action, None, true)
                }
                FlowKind::Create | FlowKind::Anonymise => {
                    let store = flow.to().as_datastore().cloned().expect("create targets a store");
                    let permitted = flow
                        .fields()
                        .iter()
                        .all(|field| self.policy.can(&actor, Permission::Create, &store, field));
                    if permitted {
                        let values = flow.fields().iter().map(|field| {
                            let value = user_data.get(field).cloned().unwrap_or(Value::Null);
                            (field.clone(), value)
                        });
                        self.stores.write(&store, user, values);
                    }
                    let action = if kind == FlowKind::Anonymise {
                        ActionKind::Anon
                    } else {
                        ActionKind::Create
                    };
                    (action, Some(store), permitted)
                }
                FlowKind::Read => {
                    let store = flow.from().as_datastore().cloned().expect("read sources a store");
                    let permitted = flow
                        .fields()
                        .iter()
                        .all(|field| self.policy.can(&actor, Permission::Read, &store, field));
                    (ActionKind::Read, Some(store), permitted)
                }
                _ => (ActionKind::Disclose, None, false),
            };

            if !permitted {
                denied += 1;
            }
            let event = Event::new(
                sequence,
                user.clone(),
                service.clone(),
                actor,
                action,
                flow.fields().iter().cloned(),
                datastore,
                permitted,
            );
            self.log.append(event.clone());
            events.push(event);
        }

        Ok(ExecutionOutcome { service: service.clone(), user: user.clone(), events, denied })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privacy_access::{AccessControlList, Grant, PolicyDelta};
    use privacy_dataflow::DiagramBuilder;
    use privacy_model::{
        Actor, ActorId, DataField, DataSchema, DatastoreDecl, FieldId, ServiceDecl,
    };

    fn fixture() -> (Catalog, SystemDataFlows, AccessPolicy) {
        let mut catalog = Catalog::new();
        catalog.add_actor(Actor::role("Doctor")).unwrap();
        catalog.add_actor(Actor::role("Administrator")).unwrap();
        catalog.add_field(DataField::identifier("Name")).unwrap();
        catalog.add_field(DataField::sensitive("Diagnosis")).unwrap();
        catalog
            .add_schema(DataSchema::new(
                "EHRSchema",
                [FieldId::new("Name"), FieldId::new("Diagnosis")],
            ))
            .unwrap();
        catalog.add_datastore(DatastoreDecl::new("EHR", "EHRSchema")).unwrap();
        catalog.add_service(ServiceDecl::new("MedicalService", [ActorId::new("Doctor")])).unwrap();
        catalog
            .add_service(ServiceDecl::new("AuditService", [ActorId::new("Administrator")]))
            .unwrap();

        let medical = DiagramBuilder::new("MedicalService")
            .collect("Doctor", ["Name", "Diagnosis"], "consultation", 1)
            .unwrap()
            .create("Doctor", "EHR", ["Name", "Diagnosis"], "record", 2)
            .unwrap()
            .read("Doctor", "EHR", ["Diagnosis"], "review", 3)
            .unwrap()
            .build();
        let audit = DiagramBuilder::new("AuditService")
            .read("Administrator", "EHR", ["Diagnosis"], "audit", 1)
            .unwrap()
            .build();
        let system =
            SystemDataFlows::new().with_diagram(medical).unwrap().with_diagram(audit).unwrap();

        let acl = AccessControlList::new()
            .with_grant(Grant::read_write_all("Doctor", "EHR"))
            .with_grant(Grant::read_all("Administrator", "EHR"));
        (catalog, system, AccessPolicy::from_parts(acl, Default::default()))
    }

    fn patient_data() -> Record {
        Record::new().with("Name", "Alice").with("Diagnosis", "flu")
    }

    #[test]
    fn executing_a_service_writes_stores_and_logs_events() {
        let (catalog, system, policy) = fixture();
        let mut engine = ServiceEngine::new(catalog, system, policy);
        let outcome = engine
            .execute(&UserId::new("alice"), &ServiceId::new("MedicalService"), &patient_data())
            .unwrap();

        assert_eq!(outcome.events().len(), 3);
        assert!(outcome.fully_permitted());
        assert_eq!(outcome.denied(), 0);
        assert_eq!(engine.log().len(), 3);

        // The EHR now holds Alice's record.
        assert_eq!(
            engine.stores().read(
                &DatastoreId::new("EHR"),
                &UserId::new("alice"),
                &FieldId::new("Diagnosis")
            ),
            Some(Value::from("flu"))
        );
        // Event sequence numbers are monotonic and actions follow the flows.
        let actions: Vec<ActionKind> = outcome.events().iter().map(Event::action).collect();
        assert_eq!(actions, vec![ActionKind::Collect, ActionKind::Create, ActionKind::Read]);
        assert!(outcome.to_string().contains("3 events"));
    }

    #[test]
    fn denied_flows_are_logged_but_have_no_effect() {
        let (catalog, system, policy) = fixture();
        // Revoke the administrator's read access before running the audit.
        let revised = policy.with_applied(&PolicyDelta::new().revoke(
            "Administrator",
            Permission::Read,
            "EHR",
        ));
        let mut engine = ServiceEngine::new(catalog, system, revised);

        engine
            .execute(&UserId::new("alice"), &ServiceId::new("MedicalService"), &patient_data())
            .unwrap();
        let outcome = engine
            .execute(&UserId::new("alice"), &ServiceId::new("AuditService"), &Record::new())
            .unwrap();

        assert_eq!(outcome.denied(), 1);
        assert!(!outcome.fully_permitted());
        assert_eq!(engine.log().denied().len(), 1);
    }

    #[test]
    fn missing_user_data_is_stored_as_null() {
        let (catalog, system, policy) = fixture();
        let mut engine = ServiceEngine::new(catalog, system, policy);
        engine
            .execute(
                &UserId::new("bob"),
                &ServiceId::new("MedicalService"),
                &Record::new().with("Name", "Bob"),
            )
            .unwrap();
        assert_eq!(
            engine.stores().read(
                &DatastoreId::new("EHR"),
                &UserId::new("bob"),
                &FieldId::new("Diagnosis")
            ),
            Some(Value::Null)
        );
    }

    #[test]
    fn unknown_service_is_an_error() {
        let (catalog, system, policy) = fixture();
        let mut engine = ServiceEngine::new(catalog, system, policy);
        let result = engine.execute(&UserId::new("alice"), &ServiceId::new("Nope"), &Record::new());
        assert!(matches!(result, Err(ModelError::Unknown { .. })));
    }

    #[test]
    fn set_policy_changes_future_enforcement() {
        let (catalog, system, policy) = fixture();
        let mut engine = ServiceEngine::new(catalog, system, policy.clone());
        engine
            .execute(&UserId::new("alice"), &ServiceId::new("MedicalService"), &patient_data())
            .unwrap();
        let ok = engine
            .execute(&UserId::new("alice"), &ServiceId::new("AuditService"), &Record::new())
            .unwrap();
        assert!(ok.fully_permitted());

        engine.set_policy(policy.with_applied(&PolicyDelta::new().revoke(
            "Administrator",
            Permission::Read,
            "EHR",
        )));
        let denied = engine
            .execute(&UserId::new("alice"), &ServiceId::new("AuditService"), &Record::new())
            .unwrap();
        assert_eq!(denied.denied(), 1);
    }
}
