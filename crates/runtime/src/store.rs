//! In-memory, per-user datastore state.
//!
//! Each modelled datastore holds one record per data subject (the paper's
//! datastores are queried per field and per user). Reads and writes are
//! checked against the access-control policy by the engine; the store itself
//! only tracks contents.

use privacy_model::{DatastoreId, FieldId, Record, UserId, Value};
use std::collections::BTreeMap;
use std::fmt;

/// The contents of every datastore, per user.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DatastoreState {
    contents: BTreeMap<DatastoreId, BTreeMap<UserId, Record>>,
}

impl DatastoreState {
    /// Creates an empty state.
    pub fn new() -> Self {
        DatastoreState::default()
    }

    /// Writes field values for a user into a datastore (merging with any
    /// existing record).
    pub fn write(
        &mut self,
        datastore: &DatastoreId,
        user: &UserId,
        values: impl IntoIterator<Item = (FieldId, Value)>,
    ) {
        let record =
            self.contents.entry(datastore.clone()).or_default().entry(user.clone()).or_default();
        for (field, value) in values {
            record.set(field, value);
        }
    }

    /// Reads one field of a user's record from a datastore.
    pub fn read(&self, datastore: &DatastoreId, user: &UserId, field: &FieldId) -> Option<Value> {
        self.contents
            .get(datastore)
            .and_then(|records| records.get(user))
            .and_then(|record| record.get(field).cloned())
    }

    /// The whole record of a user in a datastore, if any.
    pub fn record(&self, datastore: &DatastoreId, user: &UserId) -> Option<&Record> {
        self.contents.get(datastore).and_then(|records| records.get(user))
    }

    /// Deletes a user's record from a datastore. Returns `true` if a record
    /// existed.
    pub fn delete(&mut self, datastore: &DatastoreId, user: &UserId) -> bool {
        self.contents
            .get_mut(datastore)
            .map(|records| records.remove(user).is_some())
            .unwrap_or(false)
    }

    /// The fields currently stored for a user in a datastore.
    pub fn stored_fields(&self, datastore: &DatastoreId, user: &UserId) -> Vec<FieldId> {
        self.record(datastore, user)
            .map(|record| record.fields().cloned().collect())
            .unwrap_or_default()
    }

    /// Number of user records held in a datastore.
    pub fn record_count(&self, datastore: &DatastoreId) -> usize {
        self.contents.get(datastore).map(BTreeMap::len).unwrap_or(0)
    }

    /// Total number of user records across all datastores.
    pub fn total_records(&self) -> usize {
        self.contents.values().map(BTreeMap::len).sum()
    }
}

impl fmt::Display for DatastoreState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "datastore state: {} stores, {} records",
            self.contents.len(),
            self.total_records()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ehr() -> DatastoreId {
        DatastoreId::new("EHR")
    }

    fn alice() -> UserId {
        UserId::new("alice")
    }

    #[test]
    fn write_read_and_merge() {
        let mut state = DatastoreState::new();
        state.write(&ehr(), &alice(), [(FieldId::new("Name"), Value::from("Alice"))]);
        state.write(&ehr(), &alice(), [(FieldId::new("Diagnosis"), Value::from("flu"))]);

        assert_eq!(state.read(&ehr(), &alice(), &FieldId::new("Name")), Some(Value::from("Alice")));
        assert_eq!(
            state.read(&ehr(), &alice(), &FieldId::new("Diagnosis")),
            Some(Value::from("flu"))
        );
        assert_eq!(state.read(&ehr(), &alice(), &FieldId::new("Missing")), None);
        assert_eq!(state.stored_fields(&ehr(), &alice()).len(), 2);
        assert_eq!(state.record_count(&ehr()), 1);
        assert_eq!(state.total_records(), 1);
        assert!(state.record(&ehr(), &alice()).is_some());
    }

    #[test]
    fn different_users_and_stores_are_isolated() {
        let mut state = DatastoreState::new();
        state.write(&ehr(), &alice(), [(FieldId::new("Name"), Value::from("Alice"))]);
        state.write(
            &DatastoreId::new("Appointments"),
            &UserId::new("bob"),
            [(FieldId::new("Name"), Value::from("Bob"))],
        );

        assert_eq!(state.read(&ehr(), &UserId::new("bob"), &FieldId::new("Name")), None);
        assert_eq!(state.record_count(&ehr()), 1);
        assert_eq!(state.total_records(), 2);
        assert!(state.to_string().contains("2 stores"));
    }

    #[test]
    fn delete_removes_the_record() {
        let mut state = DatastoreState::new();
        state.write(&ehr(), &alice(), [(FieldId::new("Name"), Value::from("Alice"))]);
        assert!(state.delete(&ehr(), &alice()));
        assert!(!state.delete(&ehr(), &alice()));
        assert!(state.record(&ehr(), &alice()).is_none());
        assert!(state.stored_fields(&ehr(), &alice()).is_empty());
        assert!(!state.delete(&DatastoreId::new("Nowhere"), &alice()));
    }
}
