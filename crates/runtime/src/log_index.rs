//! The columnar event-log index.
//!
//! The operation-time compliance checker originally re-walked the whole
//! [`EventLog`] once **per policy statement**, re-evaluating string-keyed
//! matchers against every event each time. [`EventLogIndex::build`] is the
//! runtime sibling of the LTS analysis index
//! ([`privacy_lts::LtsIndex`]): one pass over the log materialises
//!
//! * **Columns** — per event: the action's dense table index
//!   ([`ActionKind::table_index`]), the interned actor and service, and a
//!   packed `u64` bitset of the interned fields the event carries;
//! * **Posting lists** — ascending event ids of the *permitted* events, per
//!   action kind and per field (denied events never constitute behaviour,
//!   so no statement ever consults them);
//! * **Erasure timelines** — per `(user, field)`: when the field was first
//!   stored (`collect`/`create`/`anon`) and last deleted, the aggregation
//!   every right-to-erasure statement needs, built once instead of once per
//!   statement;
//! * **Observer sets** — per field: the bitset of actors that observed it
//!   (`read`/`collect`/`disclose`), answering exposure bounds by popcount.
//!
//! Matchers are then evaluated once per **distinct** interned actor/service
//! instead of once per event, and each statement touches only its posting
//! lists. `privacy_compliance::check_log` probes this index;
//! `check_log_scan` retains the original full-scan semantics and the
//! differential property tests pin the two identical.
//!
//! The index is **append-aware**: the event log is append-only, so
//! [`EventLogIndex::append`] extends the columns, posting lists, erasure
//! timelines and observer bitsets in place — re-laying out the packed
//! bitsets only when the interned vocabulary outgrows its word stride — and
//! is pinned identical to a from-scratch [`EventLogIndex::build`] over the
//! whole log, for every split of the log into appended segments
//! (`PartialEq` covers every column and posting, and the
//! `appended_index_equals_from_scratch_build` property tests exercise random
//! cut points). Periodic audits exploit this through
//! `privacy_compliance::check_log_checkpointed`, which pays only for the
//! appended suffix.

use crate::event::{Event, EventLog};
use privacy_lts::ActionKind;
use privacy_model::{ActorId, FieldId, Interner, ServiceId, UserId};
use std::collections::BTreeMap;

/// Number of distinct [`ActionKind`]s (the width of the per-action tables).
const ACTIONS: usize = ActionKind::ALL.len();

/// An empty posting list, returned for identifiers the index never saw.
const EMPTY_EVENTS: &[u32] = &[];

/// When a `(user, field)` pair was first stored and last deleted in the
/// observed execution — the inputs of the right-to-erasure check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErasureTimeline {
    first_stored: u64,
    last_deleted: Option<u64>,
}

impl ErasureTimeline {
    /// The sequence number of the first storing event.
    pub fn first_stored(&self) -> u64 {
        self.first_stored
    }

    /// The sequence number of the last delete covering the pair, if any.
    pub fn last_deleted(&self) -> Option<u64> {
        self.last_deleted
    }

    /// Returns `true` if the pair was stored but never deleted afterwards —
    /// a right-to-erasure violation. Pairs that were only ever deleted
    /// (`first_stored == u64::MAX`) never violate.
    pub fn violates_erasure(&self) -> bool {
        self.first_stored != u64::MAX
            && self.last_deleted.is_none_or(|deleted| deleted < self.first_stored)
    }
}

/// The columnar index over one [`EventLog`] snapshot.
///
/// # Examples
///
/// ```
/// use privacy_lts::ActionKind;
/// use privacy_model::{DatastoreId, FieldId};
/// use privacy_runtime::{Event, EventLog, EventLogIndex};
///
/// let mut log = EventLog::new();
/// log.append(Event::new(
///     0, "alice", "MedicalService", "Doctor", ActionKind::Read,
///     [FieldId::new("Diagnosis")], Some(DatastoreId::new("EHR")), true,
/// ));
/// let index = EventLogIndex::build(&log);
/// assert_eq!(index.of_action(ActionKind::Read), &[0]);
/// assert_eq!(index.observing_actors(&FieldId::new("Diagnosis")).len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EventLogIndex {
    event_count: usize,
    actors: Interner<ActorId>,
    services: Interner<ServiceId>,
    fields: Interner<FieldId>,
    /// Per event: [`ActionKind::table_index`] of its action.
    action_col: Vec<u8>,
    /// Per event: interned actor index.
    actor_col: Vec<u32>,
    /// Per event: interned service index.
    service_col: Vec<u32>,
    /// `u64` words per event in [`EventLogIndex::field_words`].
    words_per_event: usize,
    /// Packed field bitsets, `words_per_event` words per event.
    field_words: Vec<u64>,
    /// Ascending ids of the permitted events.
    permitted: Vec<u32>,
    /// Ascending permitted event ids per action kind.
    by_action: Vec<Vec<u32>>,
    /// Ascending permitted event ids per interned field.
    by_field: Vec<Vec<u32>>,
    /// Per interned field: bitset over interned actors that observed it.
    observers: Vec<u64>,
    words_per_observer_set: usize,
    /// Erasure aggregation over every `(user, field)` pair a permitted
    /// storing or deleting event touched, in `(user, field)` order.
    erasure: BTreeMap<(UserId, FieldId), ErasureTimeline>,
}

impl EventLogIndex {
    /// Builds the index from one pass over the log (plus one packing pass
    /// once the field vocabulary is complete).
    pub fn build(log: &EventLog) -> EventLogIndex {
        let event_count = log.len();
        let mut actors = Interner::new();
        let mut services = Interner::new();
        let mut fields = Interner::new();

        let mut action_col = Vec::with_capacity(event_count);
        let mut actor_col = Vec::with_capacity(event_count);
        let mut service_col = Vec::with_capacity(event_count);
        let mut permitted = Vec::new();
        let mut by_action: Vec<Vec<u32>> = vec![Vec::new(); ACTIONS];
        let mut by_field: Vec<Vec<u32>> = Vec::new();
        // (event, field) pairs, packed once the field interner is complete;
        // observer (field, actor) pairs likewise.
        let mut field_refs: Vec<(u32, u32)> = Vec::new();
        let mut observer_refs: Vec<(u32, u32)> = Vec::new();
        let mut erasure: BTreeMap<(UserId, FieldId), ErasureTimeline> = BTreeMap::new();

        for (id, event) in log.iter().enumerate() {
            let id = id as u32;
            let action = event.action().table_index() as u8;
            let actor = actors.intern(event.actor().clone());
            action_col.push(action);
            actor_col.push(actor);
            service_col.push(services.intern(event.service().clone()));
            let field_ids: Vec<u32> =
                event.fields().iter().map(|field| fields.intern(field.clone())).collect();
            by_field.resize_with(fields.len(), Vec::new);
            for &field in &field_ids {
                field_refs.push((id, field));
            }
            if !event.permitted() {
                continue;
            }
            permitted.push(id);
            by_action[action as usize].push(id);
            for &field in &field_ids {
                by_field[field as usize].push(id);
            }
            match event.action() {
                ActionKind::Read | ActionKind::Collect | ActionKind::Disclose => {
                    for &field in &field_ids {
                        observer_refs.push((field, actor));
                    }
                }
                _ => {}
            }
            match event.action() {
                ActionKind::Collect | ActionKind::Create | ActionKind::Anon => {
                    for field in event.fields() {
                        // The first storing event *in log order* wins, the
                        // exact semantics of the scan checker's
                        // `stored.entry(key).or_insert(sequence)`.
                        erasure
                            .entry((event.user().clone(), field.clone()))
                            .and_modify(|timeline| {
                                if timeline.first_stored == u64::MAX {
                                    timeline.first_stored = event.sequence();
                                }
                            })
                            .or_insert(ErasureTimeline {
                                first_stored: event.sequence(),
                                last_deleted: None,
                            });
                    }
                }
                ActionKind::Delete => {
                    for field in event.fields() {
                        erasure
                            .entry((event.user().clone(), field.clone()))
                            .and_modify(|timeline| {
                                timeline.last_deleted = Some(
                                    timeline.last_deleted.map_or(event.sequence(), |latest| {
                                        latest.max(event.sequence())
                                    }),
                                );
                            })
                            .or_insert(ErasureTimeline {
                                first_stored: u64::MAX,
                                last_deleted: Some(event.sequence()),
                            });
                    }
                }
                _ => {}
            }
        }

        // Pack the per-event field bitsets and the per-field observer sets.
        let words_per_event = fields.len().div_ceil(64).max(1);
        let mut field_words = vec![0u64; event_count * words_per_event];
        for (id, field) in field_refs {
            field_words[id as usize * words_per_event + field as usize / 64] |=
                1u64 << (field % 64);
        }
        let words_per_observer_set = actors.len().div_ceil(64).max(1);
        let mut observers = vec![0u64; fields.len() * words_per_observer_set];
        for (field, actor) in observer_refs {
            observers[field as usize * words_per_observer_set + actor as usize / 64] |=
                1u64 << (actor % 64);
        }

        EventLogIndex {
            event_count,
            actors,
            services,
            fields,
            action_col,
            actor_col,
            service_col,
            words_per_event,
            field_words,
            permitted,
            by_action,
            by_field,
            observers,
            words_per_observer_set,
            erasure,
        }
    }

    /// Extends the index in place with events appended to the log since it
    /// was built (or last appended to) — the log is append-only, so this is
    /// the maintenance operation a periodic audit needs: O(suffix) instead
    /// of an O(log) rebuild. The events must be exactly
    /// `log[self.event_count()..]` of the log the index describes; after the
    /// call the index equals a from-scratch [`EventLogIndex::build`] over
    /// the whole log (pinned by `PartialEq` in the
    /// `appended_index_equals_from_scratch_build` property tests).
    ///
    /// Interners only ever grow, and in the same first-occurrence order the
    /// from-scratch build assigns; when new fields or actors widen a packed
    /// bitset's word stride, the existing rows are re-laid out once.
    pub fn append(&mut self, events: &[Event]) {
        if events.is_empty() {
            return;
        }
        // Pass 1: extend the interners in build()'s order — per event, the
        // actor, the service, then the label fields — so dense indices keep
        // matching the from-scratch assignment. The resolved ids are kept so
        // pass 2 never re-hashes an identifier string.
        let resolved: Vec<(u32, u32, Vec<u32>)> = events
            .iter()
            .map(|event| {
                let actor = self.actors.intern(event.actor().clone());
                let service = self.services.intern(event.service().clone());
                let fields =
                    event.fields().iter().map(|field| self.fields.intern(field.clone())).collect();
                (actor, service, fields)
            })
            .collect();

        // Re-layout the per-event field bitsets if the field vocabulary
        // outgrew the word stride.
        let words_per_event = self.fields.len().div_ceil(64).max(1);
        if words_per_event > self.words_per_event {
            let mut grown = vec![0u64; self.event_count * words_per_event];
            for event in 0..self.event_count {
                grown[event * words_per_event..event * words_per_event + self.words_per_event]
                    .copy_from_slice(
                        &self.field_words
                            [event * self.words_per_event..(event + 1) * self.words_per_event],
                    );
            }
            self.field_words = grown;
            self.words_per_event = words_per_event;
        }

        // Re-layout the per-field observer bitsets if the actor vocabulary
        // outgrew the stride, and extend them for newly interned fields.
        let words_per_observer_set = self.actors.len().div_ceil(64).max(1);
        if words_per_observer_set > self.words_per_observer_set {
            let old_fields = self.observers.len() / self.words_per_observer_set;
            let mut grown = vec![0u64; self.fields.len() * words_per_observer_set];
            for field in 0..old_fields {
                grown[field * words_per_observer_set
                    ..field * words_per_observer_set + self.words_per_observer_set]
                    .copy_from_slice(
                        &self.observers[field * self.words_per_observer_set
                            ..(field + 1) * self.words_per_observer_set],
                    );
            }
            self.observers = grown;
            self.words_per_observer_set = words_per_observer_set;
        } else {
            self.observers.resize(self.fields.len() * self.words_per_observer_set, 0);
        }
        self.by_field.resize_with(self.fields.len(), Vec::new);

        // Pass 2: columns, postings, observer bits and erasure timelines,
        // exactly the from-scratch build's per-event logic.
        for (event, (actor, service, field_ids)) in events.iter().zip(&resolved) {
            let id = self.event_count as u32;
            self.event_count += 1;
            let action = event.action().table_index() as u8;
            let actor = *actor;
            self.action_col.push(action);
            self.actor_col.push(actor);
            self.service_col.push(*service);
            let row = self.field_words.len();
            self.field_words.resize(row + self.words_per_event, 0);
            for &field in field_ids {
                self.field_words[row + field as usize / 64] |= 1u64 << (field % 64);
            }
            if !event.permitted() {
                continue;
            }
            self.permitted.push(id);
            self.by_action[action as usize].push(id);
            for &field in field_ids {
                self.by_field[field as usize].push(id);
            }
            match event.action() {
                ActionKind::Read | ActionKind::Collect | ActionKind::Disclose => {
                    for &field in field_ids {
                        self.observers
                            [field as usize * self.words_per_observer_set + actor as usize / 64] |=
                            1u64 << (actor % 64);
                    }
                }
                _ => {}
            }
            match event.action() {
                ActionKind::Collect | ActionKind::Create | ActionKind::Anon => {
                    for field in event.fields() {
                        self.erasure
                            .entry((event.user().clone(), field.clone()))
                            .and_modify(|timeline| {
                                if timeline.first_stored == u64::MAX {
                                    timeline.first_stored = event.sequence();
                                }
                            })
                            .or_insert(ErasureTimeline {
                                first_stored: event.sequence(),
                                last_deleted: None,
                            });
                    }
                }
                ActionKind::Delete => {
                    for field in event.fields() {
                        self.erasure
                            .entry((event.user().clone(), field.clone()))
                            .and_modify(|timeline| {
                                timeline.last_deleted = Some(
                                    timeline.last_deleted.map_or(event.sequence(), |latest| {
                                        latest.max(event.sequence())
                                    }),
                                );
                            })
                            .or_insert(ErasureTimeline {
                                first_stored: u64::MAX,
                                last_deleted: Some(event.sequence()),
                            });
                    }
                }
                _ => {}
            }
        }
    }

    /// Number of events the index covers (the log's length at build time).
    pub fn event_count(&self) -> usize {
        self.event_count
    }

    /// The interned actors, in index order.
    pub fn actors(&self) -> &[ActorId] {
        self.actors.items()
    }

    /// The interned services, in index order.
    pub fn services(&self) -> &[ServiceId] {
        self.services.items()
    }

    /// The interned fields, in index order.
    pub fn fields(&self) -> &[FieldId] {
        self.fields.items()
    }

    /// The action kind of an event.
    pub fn action_of(&self, event: u32) -> ActionKind {
        ActionKind::ALL[self.action_col[event as usize] as usize]
    }

    /// The interned actor index of an event.
    pub fn actor_index_of(&self, event: u32) -> u32 {
        self.actor_col[event as usize]
    }

    /// The interned service index of an event.
    pub fn service_index_of(&self, event: u32) -> u32 {
        self.service_col[event as usize]
    }

    /// Ascending ids of all permitted events.
    pub fn permitted(&self) -> &[u32] {
        &self.permitted
    }

    /// Ascending permitted event ids of the given action kind.
    pub fn of_action(&self, action: ActionKind) -> &[u32] {
        &self.by_action[action.table_index()]
    }

    /// Ascending permitted event ids whose field set involves `field`.
    pub fn involving_field(&self, field: &FieldId) -> &[u32] {
        match self.fields.get(field) {
            Some(field) => &self.by_field[field as usize],
            None => EMPTY_EVENTS,
        }
    }

    /// Ascending permitted event ids involving **any** of the given fields
    /// (the union of their posting lists).
    pub fn involving_any_field<'a>(
        &self,
        fields: impl IntoIterator<Item = &'a FieldId>,
    ) -> Vec<u32> {
        self.involving_any_field_from(fields, 0)
    }

    /// [`EventLogIndex::involving_any_field`] restricted to event ids
    /// ≥ `from`: each posting list contributes only its suffix (one
    /// partition-point probe — the lists are ascending), so a checkpointed
    /// audit never re-walks the already-covered prefix of a busy field.
    pub fn involving_any_field_from<'a>(
        &self,
        fields: impl IntoIterator<Item = &'a FieldId>,
        from: u32,
    ) -> Vec<u32> {
        let mut union: Vec<u32> = fields
            .into_iter()
            .flat_map(|field| {
                let list = self.involving_field(field);
                list[list.partition_point(|&id| id < from)..].iter().copied()
            })
            .collect();
        union.sort_unstable();
        union.dedup();
        union
    }

    /// Returns `true` if the event's field set is non-empty.
    pub fn has_fields(&self, event: u32) -> bool {
        let start = event as usize * self.words_per_event;
        self.field_words[start..start + self.words_per_event].iter().any(|w| *w != 0)
    }

    /// Packs a set of fields into a bitset aligned with the per-event field
    /// columns. Fields the log never mentions are ignored.
    pub fn field_mask<'a>(&self, fields: impl IntoIterator<Item = &'a FieldId>) -> Vec<u64> {
        let mut mask = vec![0u64; self.words_per_event];
        for field in fields {
            if let Some(field) = self.fields.get(field) {
                mask[field as usize / 64] |= 1u64 << (field % 64);
            }
        }
        mask
    }

    /// Returns `true` if the event involves at least one field of the mask.
    pub fn involves_any(&self, event: u32, mask: &[u64]) -> bool {
        let start = event as usize * self.words_per_event;
        self.field_words[start..start + self.words_per_event]
            .iter()
            .zip(mask)
            .any(|(w, m)| w & m != 0)
    }

    /// The distinct actors that observed the field at runtime (a permitted
    /// `read`, `collect` or `disclose` involving it), sorted by actor id —
    /// the order the scan checker's `BTreeSet` produces.
    pub fn observing_actors(&self, field: &FieldId) -> Vec<&ActorId> {
        let Some(field) = self.fields.get(field) else {
            return Vec::new();
        };
        let start = field as usize * self.words_per_observer_set;
        let mut observed = Vec::new();
        for (word_index, &word) in
            self.observers[start..start + self.words_per_observer_set].iter().enumerate()
        {
            let mut word = word;
            while word != 0 {
                let actor = word_index * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                observed.push(self.actors.resolve(actor as u32).expect("observer bits resolve"));
            }
        }
        observed.sort_unstable();
        observed
    }

    /// The erasure timeline of every `(user, field)` pair a permitted
    /// storing or deleting event touched, in `(user, field)` order. Pairs
    /// that were only ever deleted report `u64::MAX` as their store time and
    /// never violate erasure.
    pub fn erasure_timelines(
        &self,
    ) -> impl Iterator<Item = (&(UserId, FieldId), &ErasureTimeline)> {
        self.erasure.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use privacy_model::DatastoreId;

    fn event(
        sequence: u64,
        user: &str,
        actor: &str,
        action: ActionKind,
        fields: &[&str],
        permitted: bool,
    ) -> Event {
        Event::new(
            sequence,
            user,
            "MedicalService",
            actor,
            action,
            fields.iter().map(|f| FieldId::new(*f)),
            Some(DatastoreId::new("EHR")),
            permitted,
        )
    }

    fn sample_log() -> EventLog {
        let mut log = EventLog::new();
        log.append(event(0, "alice", "Doctor", ActionKind::Collect, &["Name", "Diagnosis"], true));
        log.append(event(1, "alice", "Doctor", ActionKind::Create, &["Diagnosis"], true));
        log.append(event(2, "alice", "Admin", ActionKind::Read, &["Diagnosis"], true));
        log.append(event(3, "alice", "Researcher", ActionKind::Read, &["Diagnosis"], false));
        log.append(event(4, "bob", "Doctor", ActionKind::Collect, &["Diagnosis"], true));
        log.append(event(5, "alice", "Admin", ActionKind::Delete, &["Diagnosis"], true));
        log
    }

    #[test]
    fn postings_cover_permitted_events_only() {
        let index = EventLogIndex::build(&sample_log());
        assert_eq!(index.event_count(), 6);
        assert_eq!(index.permitted(), &[0, 1, 2, 4, 5]);
        // The researcher's denied read is absent from every posting list.
        assert_eq!(index.of_action(ActionKind::Read), &[2]);
        assert_eq!(index.involving_field(&FieldId::new("Diagnosis")), &[0, 1, 2, 4, 5]);
        assert_eq!(index.involving_field(&FieldId::new("Name")), &[0]);
        assert_eq!(index.involving_field(&FieldId::new("Ghost")), EMPTY_EVENTS);
        assert_eq!(
            index.involving_any_field([&FieldId::new("Name"), &FieldId::new("Diagnosis")]),
            vec![0, 1, 2, 4, 5]
        );
    }

    #[test]
    fn columns_resolve_action_actor_and_service() {
        let index = EventLogIndex::build(&sample_log());
        assert_eq!(index.action_of(2), ActionKind::Read);
        assert_eq!(index.actors()[index.actor_index_of(2) as usize], ActorId::new("Admin"));
        assert_eq!(
            index.services()[index.service_index_of(0) as usize],
            ServiceId::new("MedicalService")
        );
        assert!(index.has_fields(0));
        let mask = index.field_mask([&FieldId::new("Name")]);
        assert!(index.involves_any(0, &mask));
        assert!(!index.involves_any(1, &mask));
    }

    #[test]
    fn observers_exclude_denied_and_non_observing_actions() {
        let index = EventLogIndex::build(&sample_log());
        // Collect (Doctor) and Read (Admin) observe; the denied Researcher
        // read and the Create/Delete do not.
        let observers = index.observing_actors(&FieldId::new("Diagnosis"));
        assert_eq!(observers, vec![&ActorId::new("Admin"), &ActorId::new("Doctor")]);
        assert!(index.observing_actors(&FieldId::new("Ghost")).is_empty());
    }

    #[test]
    fn erasure_timelines_aggregate_first_store_and_last_delete() {
        let index = EventLogIndex::build(&sample_log());
        let timelines: Vec<_> = index.erasure_timelines().collect();
        // (alice, Diagnosis), (alice, Name), (bob, Diagnosis) in order.
        assert_eq!(timelines.len(), 3);
        let alice_diagnosis = timelines[0];
        assert_eq!(alice_diagnosis.0, &(UserId::new("alice"), FieldId::new("Diagnosis")));
        assert_eq!(alice_diagnosis.1.first_stored(), 0);
        assert_eq!(alice_diagnosis.1.last_deleted(), Some(5));
        assert!(!alice_diagnosis.1.violates_erasure());
        // Alice's Name and Bob's Diagnosis were stored but never deleted.
        assert!(timelines[1].1.violates_erasure());
        assert!(timelines[2].1.violates_erasure());
    }

    #[test]
    fn delete_before_store_still_violates() {
        let mut log = EventLog::new();
        log.append(event(0, "alice", "Admin", ActionKind::Delete, &["Diagnosis"], true));
        log.append(event(1, "alice", "Doctor", ActionKind::Create, &["Diagnosis"], true));
        let index = EventLogIndex::build(&log);
        let (_, timeline) = index.erasure_timelines().next().unwrap();
        assert_eq!(timeline.first_stored(), 1);
        assert_eq!(timeline.last_deleted(), Some(0));
        assert!(timeline.violates_erasure());
    }

    #[test]
    fn empty_log_builds_an_empty_index() {
        let index = EventLogIndex::build(&EventLog::new());
        assert_eq!(index.event_count(), 0);
        assert!(index.permitted().is_empty());
        assert!(index.erasure_timelines().next().is_none());
    }

    #[test]
    fn append_at_every_cut_equals_the_from_scratch_build() {
        let log = sample_log();
        let full = EventLogIndex::build(&log);
        for cut in 0..=log.len() {
            let mut prefix_log = EventLog::new();
            prefix_log.extend(log.events()[..cut].iter().cloned());
            let mut index = EventLogIndex::build(&prefix_log);
            index.append(&log.events()[cut..]);
            assert_eq!(index, full, "append after cut {cut} diverges from build");
        }
    }

    #[test]
    fn append_grows_the_vocabulary_and_relayouts_bitsets() {
        // A tail whose 70 fresh fields and 70 fresh actors force both packed
        // bitset strides to widen mid-append.
        let mut log = sample_log();
        let cut = log.len();
        for i in 0..70u64 {
            log.append(Event::new(
                cut as u64 + i,
                "alice",
                "MedicalService",
                format!("LateActor{i}"),
                ActionKind::Read,
                [FieldId::new(format!("LateField{i}"))],
                Some(DatastoreId::new("EHR")),
                true,
            ));
        }
        let mut index = {
            let mut prefix = EventLog::new();
            prefix.extend(log.events()[..cut].iter().cloned());
            EventLogIndex::build(&prefix)
        };
        index.append(&log.events()[cut..]);
        let full = EventLogIndex::build(&log);
        assert_eq!(index, full);
        assert!(index.fields().len() > 64 && index.actors().len() > 64);
        assert_eq!(
            index.observing_actors(&FieldId::new("LateField69")),
            vec![&ActorId::new("LateActor69")]
        );
    }

    #[test]
    fn multi_segment_appends_equal_one_build() {
        let log = sample_log();
        let mut index = EventLogIndex::build(&EventLog::new());
        for event in log.iter() {
            index.append(std::slice::from_ref(event));
        }
        assert_eq!(index, EventLogIndex::build(&log));
        index.append(&[]);
        assert_eq!(index, EventLogIndex::build(&log));
    }
}
