//! Privacy events and the append-only event log.

use privacy_lts::ActionKind;
use privacy_model::{ActorId, DatastoreId, FieldId, ServiceId, UserId};
use std::collections::BTreeSet;
use std::fmt;

/// One privacy-relevant event observed while a service runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    sequence: u64,
    user: UserId,
    service: ServiceId,
    actor: ActorId,
    action: ActionKind,
    fields: BTreeSet<FieldId>,
    datastore: Option<DatastoreId>,
    permitted: bool,
}

impl Event {
    /// Creates an event.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        sequence: u64,
        user: impl Into<UserId>,
        service: impl Into<ServiceId>,
        actor: impl Into<ActorId>,
        action: ActionKind,
        fields: impl IntoIterator<Item = FieldId>,
        datastore: Option<DatastoreId>,
        permitted: bool,
    ) -> Self {
        Event {
            sequence,
            user: user.into(),
            service: service.into(),
            actor: actor.into(),
            action,
            fields: fields.into_iter().collect(),
            datastore,
            permitted,
        }
    }

    /// The monotonically increasing sequence number (logical time).
    pub fn sequence(&self) -> u64 {
        self.sequence
    }

    /// The data subject the event concerns.
    pub fn user(&self) -> &UserId {
        &self.user
    }

    /// The service in whose execution the event occurred.
    pub fn service(&self) -> &ServiceId {
        &self.service
    }

    /// The actor performing the action.
    pub fn actor(&self) -> &ActorId {
        &self.actor
    }

    /// The privacy action.
    pub fn action(&self) -> ActionKind {
        self.action
    }

    /// The fields involved.
    pub fn fields(&self) -> &BTreeSet<FieldId> {
        &self.fields
    }

    /// The datastore involved, if any.
    pub fn datastore(&self) -> Option<&DatastoreId> {
        self.datastore.as_ref()
    }

    /// Whether the access-control policy permitted the action. Denied events
    /// are still logged (they are exactly what an auditor wants to see) but
    /// have no effect on datastore contents or privacy state.
    pub fn permitted(&self) -> bool {
        self.permitted
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fields: Vec<&str> = self.fields.iter().map(FieldId::as_str).collect();
        write!(
            f,
            "#{} [{}] {} {} {{{}}}",
            self.sequence,
            self.service,
            self.actor,
            self.action,
            fields.join(", ")
        )?;
        if let Some(store) = &self.datastore {
            write!(f, " @ {store}")?;
        }
        write!(f, " (user {})", self.user)?;
        if !self.permitted {
            write!(f, " DENIED")?;
        }
        Ok(())
    }
}

/// An append-only log of events.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EventLog {
    events: Vec<Event>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Appends an event.
    pub fn append(&mut self, event: Event) {
        self.events.push(event);
    }

    /// The events in append order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Iterates over the events.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The next sequence number to use.
    pub fn next_sequence(&self) -> u64 {
        self.events.last().map(|e| e.sequence() + 1).unwrap_or(0)
    }

    /// The events concerning one user.
    pub fn for_user(&self, user: &UserId) -> Vec<&Event> {
        self.events.iter().filter(|e| e.user() == user).collect()
    }

    /// The events performed by one actor.
    pub fn by_actor(&self, actor: &ActorId) -> Vec<&Event> {
        self.events.iter().filter(|e| e.actor() == actor).collect()
    }

    /// The denied events (attempted accesses the policy blocked).
    pub fn denied(&self) -> Vec<&Event> {
        self.events.iter().filter(|e| !e.permitted()).collect()
    }
}

impl Extend<Event> for EventLog {
    fn extend<T: IntoIterator<Item = Event>>(&mut self, iter: T) {
        self.events.extend(iter);
    }
}

impl fmt::Display for EventLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "event log ({} events):", self.events.len())?;
        for event in &self.events {
            writeln!(f, "  {event}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seq: u64, actor: &str, permitted: bool) -> Event {
        Event::new(
            seq,
            "alice",
            "MedicalService",
            actor,
            ActionKind::Read,
            [FieldId::new("Diagnosis")],
            Some(DatastoreId::new("EHR")),
            permitted,
        )
    }

    #[test]
    fn event_accessors_and_display() {
        let event = sample(3, "Doctor", true);
        assert_eq!(event.sequence(), 3);
        assert_eq!(event.user().as_str(), "alice");
        assert_eq!(event.service().as_str(), "MedicalService");
        assert_eq!(event.actor().as_str(), "Doctor");
        assert_eq!(event.action(), ActionKind::Read);
        assert_eq!(event.fields().len(), 1);
        assert_eq!(event.datastore().unwrap().as_str(), "EHR");
        assert!(event.permitted());
        let text = event.to_string();
        assert!(text.contains("#3"));
        assert!(text.contains("@ EHR"));
        assert!(!text.contains("DENIED"));
        assert!(sample(4, "Admin", false).to_string().contains("DENIED"));
    }

    #[test]
    fn log_appends_and_filters() {
        let mut log = EventLog::new();
        assert!(log.is_empty());
        assert_eq!(log.next_sequence(), 0);
        log.append(sample(0, "Doctor", true));
        log.append(sample(1, "Administrator", false));
        log.extend([sample(2, "Doctor", true)]);

        assert_eq!(log.len(), 3);
        assert_eq!(log.next_sequence(), 3);
        assert_eq!(log.for_user(&UserId::new("alice")).len(), 3);
        assert_eq!(log.for_user(&UserId::new("bob")).len(), 0);
        assert_eq!(log.by_actor(&ActorId::new("Doctor")).len(), 2);
        assert_eq!(log.denied().len(), 1);
        assert!(log.to_string().contains("event log (3 events)"));
        assert_eq!(log.iter().count(), 3);
        assert_eq!(log.events().len(), 3);
    }
}
