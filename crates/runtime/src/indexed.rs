//! The index-backed streaming runtime monitor.
//!
//! [`IndexedMonitor`] is the high-throughput counterpart of the scan-path
//! [`RuntimeMonitor`](crate::monitor::RuntimeMonitor): instead of walking
//! every (actor, field) pair of the variable space per event with
//! string-keyed lookups, it is a thin probe over the shared
//! [`LtsIndex`] the design-time checkers already use —
//!
//! * every event is **resolved once** through the index's interners to dense
//!   actor/field indices, after which all per-user state updates are single
//!   bit operations at [`VarSpace::bit_at`](privacy_lts::VarSpace::bit_at)
//!   offsets (the same packed layout the LTS states use);
//! * the `(datastore, field) → readers` question the `create`/`anon`/
//!   `delete` rules ask of the access policy is resolved **once per model**
//!   into a dense table instead of once per event;
//! * per-user state is **sharded by `UserId` hash** over a fixed shard
//!   table, so [`IndexedMonitor::ingest_batch`] fans a batch out over
//!   `crossbeam` scoped worker threads — every user's events stay on one
//!   shard in stream order, and alerts are re-merged by batch position, so
//!   the alert stream is identical for every thread count (and to the scan
//!   monitor; both equalities are pinned by differential property tests).
//!
//! Alerts only fire for pairs that become **newly exposed** by an event;
//! since an event can only change the bits it resolves to, the monitor
//! inspects exactly those candidate pairs instead of sweeping the whole
//! space — that, plus the absence of a per-event state clone, is where the
//! throughput over the scan monitor comes from (see the `runtime_scaling`
//! bench and `docs/PERFORMANCE.md`).

use crate::event::{Event, EventLog};
use crate::monitor::Alert;
use crate::snapshot::{MonitorSnapshot, ShardSnapshot, SnapshotError, UserRow};
use privacy_access::{AccessPolicy, Permission};
use privacy_lts::space::VarKind;
use privacy_lts::{ActionKind, FxHashMap, FxHasher, LtsIndex, PrivacyState};
use privacy_model::{Catalog, DatastoreId, Interner, RiskLevel, Sensitivity, UserId, UserProfile};
use privacy_risk::{LikelihoodModel, RiskMatrix, SensitivityModel};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Number of user-state shards. Fixed (rather than derived from the thread
/// count) so users never migrate between shards when the ingestion
/// parallelism changes between batches; worker threads each own a contiguous
/// chunk of shards, and the distributed supervisor assigns contiguous shard
/// ranges to worker *processes*.
pub const SHARD_COUNT: usize = 32;

const SHARDS: usize = SHARD_COUNT;

/// The shard a user's state lives on: a stable hash of the user id alone,
/// independent of thread counts, process boundaries and registration order.
/// This is the unit of distribution — an event is routed wherever
/// `shard_of_user(event.user())` lives.
pub fn shard_of_user(user: &UserId) -> u32 {
    shard_of(user) as u32
}

fn shard_of(user: &UserId) -> usize {
    let mut hasher = FxHasher::default();
    user.hash(&mut hasher);
    (hasher.finish() as usize) % SHARDS
}

/// One registered user's monitor state: the packed privacy-state words plus
/// the per-user alert inputs, all resolved to dense indices at registration.
#[derive(Debug, Clone)]
struct UserSlot {
    /// Packed privacy-state bits in [`VarSpace`](privacy_lts::VarSpace)
    /// layout.
    words: Vec<u64>,
    /// Bitset over space actor indices: the user's allowed actors.
    allowed: Vec<u64>,
    /// Per space field index: the user's raw sensitivity `σ(d)`.
    sensitivities: Vec<Sensitivity>,
}

impl UserSlot {
    #[inline]
    fn get_bit(&self, bit: usize) -> bool {
        (self.words[bit / 64] >> (bit % 64)) & 1 == 1
    }

    #[inline]
    fn set_bit(&mut self, bit: usize) {
        self.words[bit / 64] |= 1u64 << (bit % 64);
    }

    #[inline]
    fn clear_bit(&mut self, bit: usize) {
        self.words[bit / 64] &= !(1u64 << (bit % 64));
    }

    #[inline]
    fn actor_allowed(&self, actor: usize) -> bool {
        (self.allowed[actor / 64] >> (actor % 64)) & 1 == 1
    }
}

/// One hash shard of the per-user state table.
#[derive(Debug, Clone, Default)]
struct Shard {
    users: FxHashMap<UserId, UserSlot>,
}

/// The read-only context a batch's worker threads share.
struct Ctx<'a> {
    index: &'a LtsIndex,
    policy: &'a AccessPolicy,
    stores: &'a Interner<DatastoreId>,
    readers: &'a [Vec<u32>],
    matrix: &'a RiskMatrix,
    likelihood: &'a LikelihoodModel,
    threshold: RiskLevel,
    actor_count: usize,
    field_count: usize,
}

/// The index-backed streaming runtime monitor. See the module docs; the
/// observable behaviour (which alerts, in which order, with which messages)
/// is identical to [`RuntimeMonitor`](crate::monitor::RuntimeMonitor).
///
/// # Examples
///
/// ```
/// use privacy_core::casestudy;
/// use privacy_lts::LtsIndex;
/// use privacy_runtime::IndexedMonitor;
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let system = casestudy::healthcare()?;
/// let index = Arc::new(LtsIndex::build(&system.generate_lts()?));
/// let mut monitor =
///     IndexedMonitor::new(system.catalog().clone(), system.policy().clone(), index);
/// monitor.register_user(&casestudy::case_a_user());
/// assert_eq!(monitor.user_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IndexedMonitor {
    index: Arc<LtsIndex>,
    catalog: Catalog,
    policy: AccessPolicy,
    matrix: RiskMatrix,
    likelihood: LikelihoodModel,
    alert_threshold: RiskLevel,
    threads: Option<usize>,
    /// Interned datastore ids of the catalog's stores.
    stores: Interner<DatastoreId>,
    /// `(store_idx * field_count + field_idx) → space actor indices` with
    /// read access — the policy question the `create`/`anon`/`delete` rules
    /// ask, resolved once instead of once per event.
    readers: Vec<Vec<u32>>,
    shards: Vec<Shard>,
    alerts: Vec<Alert>,
}

impl IndexedMonitor {
    /// Creates a monitor probing the given shared analysis index, with the
    /// standard risk matrix and likelihood model. The index should be built
    /// from the LTS generated for `catalog`'s model, so its variable space
    /// and interners describe the same actors and fields the events carry.
    pub fn new(catalog: Catalog, policy: AccessPolicy, index: Arc<LtsIndex>) -> Self {
        let space = index.space();
        let mut stores = Interner::new();
        let mut readers = Vec::new();
        for datastore in catalog.datastores() {
            stores.intern(datastore.id().clone());
            for field in space.fields() {
                readers.push(
                    policy
                        .actors_with(Permission::Read, datastore.id(), field)
                        .iter()
                        .filter_map(|actor| index.actor_index(actor))
                        .filter(|&a| (a as usize) < space.actor_count())
                        .collect(),
                );
            }
        }
        IndexedMonitor {
            index,
            catalog,
            policy,
            matrix: RiskMatrix::standard(),
            likelihood: LikelihoodModel::standard(),
            alert_threshold: RiskLevel::Medium,
            threads: None,
            stores,
            readers,
            shards: vec![Shard::default(); SHARDS],
            alerts: Vec::new(),
        }
    }

    /// Builder-style: only raise alerts at or above this level (default
    /// Medium).
    pub fn with_alert_threshold(mut self, threshold: RiskLevel) -> Self {
        self.alert_threshold = threshold;
        self
    }

    /// Builder-style: overrides the risk matrix.
    pub fn with_matrix(mut self, matrix: RiskMatrix) -> Self {
        self.matrix = matrix;
        self
    }

    /// Builder-style: overrides the likelihood model.
    pub fn with_likelihood(mut self, likelihood: LikelihoodModel) -> Self {
        self.likelihood = likelihood;
        self
    }

    /// Builder-style: worker threads per [`IndexedMonitor::ingest_batch`]
    /// call (`None` = one per CPU). The alert stream is identical for every
    /// count.
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// The shared analysis index the monitor probes.
    pub fn index(&self) -> &LtsIndex {
        &self.index
    }

    /// Registers a user so their privacy state is tracked: the profile's
    /// consent and sensitivities are resolved to dense per-space tables once,
    /// here, never per event.
    pub fn register_user(&mut self, profile: &UserProfile) {
        let sensitivity = SensitivityModel::new(&self.catalog, profile);
        let space = self.index.space();
        let mut allowed = vec![0u64; space.actor_count().div_ceil(64)];
        for (a, actor) in space.actors().iter().enumerate() {
            if sensitivity.is_allowed(actor) {
                allowed[a / 64] |= 1u64 << (a % 64);
            }
        }
        let slot = UserSlot {
            words: vec![0u64; space.variable_count().div_ceil(64)],
            allowed,
            sensitivities: space
                .fields()
                .iter()
                .map(|field| sensitivity.field_sensitivity(field))
                .collect(),
        };
        self.shards[shard_of(profile.id())].users.insert(profile.id().clone(), slot);
    }

    /// The current privacy state of a registered user.
    pub fn state_of(&self, user: &UserId) -> Option<PrivacyState> {
        self.shards[shard_of(user)].users.get(user).map(|slot| {
            PrivacyState::from_words(slot.words.clone(), self.index.space().variable_count())
        })
    }

    /// Number of registered users.
    pub fn user_count(&self) -> usize {
        self.shards.iter().map(|shard| shard.users.len()).sum()
    }

    /// The alerts raised so far (and not yet drained), in stream order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// The undrained alerts concerning one user.
    pub fn alerts_for(&self, user: &UserId) -> Vec<&Alert> {
        self.alerts.iter().filter(|a| a.user() == user).collect()
    }

    /// Takes every accumulated alert out of the monitor, leaving it empty —
    /// the hand-off point for a downstream consumer between batches.
    pub fn drain_alerts(&mut self) -> Vec<Alert> {
        std::mem::take(&mut self.alerts)
    }

    /// Captures the monitor's accumulated state — per-user privacy-state
    /// word rows (with the registration-time resolved allowed-actor bitsets
    /// and sensitivities) and the not-yet-drained alerts — as a versioned
    /// [`MonitorSnapshot`] keyed on the index's fingerprint. Users are
    /// grouped by shard and sorted by id within each shard, so the snapshot
    /// is identical whatever thread count produced the state.
    pub fn snapshot(&self) -> MonitorSnapshot {
        let space = self.index.space();
        let mut sens_scratch: Vec<f64> = Vec::new();
        let shards = self
            .shards
            .iter()
            .enumerate()
            .filter(|(_, shard)| !shard.users.is_empty())
            .map(|(i, shard)| {
                let mut users: Vec<UserRow> = shard
                    .users
                    .iter()
                    .map(|(user, slot)| {
                        sens_scratch.clear();
                        sens_scratch.extend(slot.sensitivities.iter().map(|s| s.value()));
                        UserRow::from_state(user.clone(), &slot.words, &slot.allowed, &sens_scratch)
                    })
                    .collect();
                users.sort_by(|a, b| a.user.cmp(&b.user));
                ShardSnapshot { shard: i as u32, users }
            })
            .collect();
        MonitorSnapshot {
            fingerprint: self.index.fingerprint(),
            state_words: space.variable_count().div_ceil(64) as u32,
            allowed_words: space.actor_count().div_ceil(64) as u32,
            field_count: space.field_count() as u32,
            shards,
            pending_alerts: self.alerts.clone(),
        }
    }

    /// Reconstructs a monitor from the model artefacts plus a snapshot: the
    /// restart path. The catalog, policy and index are the same design-time
    /// inputs [`IndexedMonitor::new`] takes (they are *not* persisted — the
    /// snapshot carries only runtime-accumulated state); every user's shard
    /// is re-derived from their id, so a snapshot exported at one thread
    /// count rehydrates at any other. Ingesting the stream suffix after a
    /// resume yields exactly the alerts and states an uninterrupted run
    /// would have produced (pinned by the recovery property tests).
    ///
    /// **Monitor configuration is not persisted either**: like the catalog
    /// and policy, the alert threshold, risk matrix, likelihood model and
    /// thread count are construction-time inputs, and the resumed monitor
    /// starts from their defaults. A monitor that ran with non-default
    /// configuration must have the same builders re-applied after the
    /// resume (they only affect how *future* events alert, never the
    /// restored state, so applying them post-resume is exact — pinned by
    /// `resuming_with_reapplied_configuration_matches_uninterrupted_run`):
    ///
    /// ```ignore
    /// let monitor = IndexedMonitor::resume_from(catalog, policy, index, &snapshot)?
    ///     .with_alert_threshold(RiskLevel::Low) // same config as the first life
    ///     .with_threads(Some(2));
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::IndexMismatch`] when the snapshot was taken
    /// against an index with a different fingerprint (different variable
    /// layout or vocabulary — the word rows would be reinterpreted), and
    /// [`SnapshotError::Malformed`] when the snapshot's dimensions cannot
    /// describe this index's space.
    pub fn resume_from(
        catalog: Catalog,
        policy: AccessPolicy,
        index: Arc<LtsIndex>,
        snapshot: &MonitorSnapshot,
    ) -> Result<IndexedMonitor, SnapshotError> {
        check_snapshot_compat(&index, snapshot)?;
        let mut monitor = IndexedMonitor::new(catalog, policy, index);
        monitor.restore_rows(snapshot)?;
        monitor.alerts = snapshot.pending_alerts.clone();
        Ok(monitor)
    }

    /// Merges a snapshot's users into a **live** monitor — the shard-handoff
    /// import path: a worker that takes over a shard absorbs the previous
    /// owner's exported [`MonitorSnapshot`] (typically a
    /// [`MonitorSnapshot::extract_shards`] part) without disturbing the
    /// users it already tracks. A user present in both keeps the snapshot's
    /// state (the exporter owned them last); the snapshot's pending alerts
    /// are appended to this monitor's. Returns the number of users absorbed.
    ///
    /// # Errors
    ///
    /// The same compatibility checks as [`IndexedMonitor::resume_from`]:
    /// [`SnapshotError::IndexMismatch`] for a foreign index,
    /// [`SnapshotError::Malformed`] for impossible dimensions or rows.
    pub fn absorb(&mut self, snapshot: &MonitorSnapshot) -> Result<usize, SnapshotError> {
        check_snapshot_compat(&self.index, snapshot)?;
        let absorbed = self.restore_rows(snapshot)?;
        self.alerts.extend(snapshot.pending_alerts.iter().cloned());
        Ok(absorbed)
    }

    /// Inserts every user row of the snapshot, re-deriving shards from ids
    /// and decoding each sparse row back into its dense in-memory slot.
    fn restore_rows(&mut self, snapshot: &MonitorSnapshot) -> Result<usize, SnapshotError> {
        let dims = (snapshot.state_words, snapshot.allowed_words, snapshot.field_count);
        let mut restored = 0usize;
        for shard in &snapshot.shards {
            for row in &shard.users {
                let (words, allowed, sens_values) = row.decode(dims)?;
                let sensitivities = sens_values
                    .iter()
                    .map(|&value| Sensitivity::new(value))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|error| SnapshotError::Malformed {
                        detail: format!("user `{}`: {error}", row.user),
                    })?;
                let slot = UserSlot { words, allowed, sensitivities };
                self.shards[shard_of(&row.user)].users.insert(row.user.clone(), slot);
                restored += 1;
            }
        }
        Ok(restored)
    }

    /// Whether a user is currently registered (tracked) by this monitor.
    pub fn is_registered(&self, user: &UserId) -> bool {
        self.shards[shard_of(user)].users.contains_key(user)
    }

    /// Drops every user whose id hashes to the given shard, returning how
    /// many were removed — the shard-handoff *export* side: after the shard's
    /// state is captured (via [`IndexedMonitor::snapshot`] +
    /// [`MonitorSnapshot::extract_shards`]), the old owner stops tracking it.
    /// Shards at or past [`SHARD_COUNT`] hold no users.
    pub fn remove_shard_users(&mut self, shard: u32) -> usize {
        match self.shards.get_mut(shard as usize) {
            Some(slot) => {
                let removed = slot.users.len();
                slot.users.clear();
                removed
            }
            None => 0,
        }
    }

    /// Consumes one event. Behaviourally equivalent to a one-event
    /// [`IndexedMonitor::ingest_batch`], but skips the batch machinery
    /// (bucket table, fan-out, merge sort) entirely: the streaming path
    /// resolves the user's shard and processes in place.
    pub fn observe(&mut self, event: &Event) -> Vec<Alert> {
        if !event.permitted() {
            return Vec::new();
        }
        let (ctx, shards) = self.split_context();
        let mut tagged = Vec::new();
        process_event(&ctx, &mut shards[shard_of(event.user())], 0, event, &mut tagged);
        let raised: Vec<Alert> = tagged.into_iter().map(|(_, alert)| alert).collect();
        self.alerts.extend(raised.iter().cloned());
        raised
    }

    /// Convenience: ingests a whole event log as one batch.
    pub fn ingest_log(&mut self, log: &EventLog) -> Vec<Alert> {
        self.ingest_batch(log.events())
    }

    /// Splits the monitor into the read-only worker context and the mutable
    /// shard table — disjoint fields, so the streaming and batch paths
    /// share one construction site.
    fn split_context(&mut self) -> (Ctx<'_>, &mut [Shard]) {
        let space = self.index.space();
        (
            Ctx {
                index: &self.index,
                policy: &self.policy,
                stores: &self.stores,
                readers: &self.readers,
                matrix: &self.matrix,
                likelihood: &self.likelihood,
                threshold: self.alert_threshold,
                actor_count: space.actor_count(),
                field_count: space.field_count(),
            },
            &mut self.shards,
        )
    }

    /// Consumes a batch of events, updating the affected users' privacy
    /// states and returning the alerts the batch raised, in event order
    /// (mirroring `analyse_users_batch`'s shape: one immutable index, a
    /// deterministic parallel fan-out).
    ///
    /// Events are partitioned by their user's shard; each worker thread owns
    /// a contiguous chunk of shards and replays its events in stream order,
    /// so per-user causality is preserved, and the per-shard alert lists are
    /// re-merged by batch position. Events for unregistered users and denied
    /// events are ignored (denied events never changed any data exposure).
    pub fn ingest_batch(&mut self, events: &[Event]) -> Vec<Alert> {
        let threads = privacy_lts::batch::resolve_threads(self.threads).min(SHARDS);
        let mut buckets: Vec<Vec<(u32, &Event)>> = vec![Vec::new(); SHARDS];
        let mut busy_shards = 0usize;
        for (pos, event) in events.iter().enumerate() {
            if event.permitted() {
                let bucket = &mut buckets[shard_of(event.user())];
                busy_shards += usize::from(bucket.is_empty());
                bucket.push((pos as u32, event));
            }
        }
        // Never spawn more workers than there are shards with work: a tiny
        // batch with one busy shard must stay on the calling thread, not
        // pay a scope + spawn.
        let threads = threads.min(busy_shards.max(1));

        let (ctx, shards) = self.split_context();
        let chunk = SHARDS.div_ceil(threads);

        let mut tagged: Vec<(u32, Alert)> = if threads == 1 {
            let mut out = Vec::new();
            for (shard, bucket) in shards.iter_mut().zip(&buckets) {
                for &(pos, event) in bucket {
                    process_event(&ctx, shard, pos, event, &mut out);
                }
            }
            out
        } else {
            crossbeam::thread::scope(|scope| {
                let ctx = &ctx;
                let handles: Vec<_> = shards
                    .chunks_mut(chunk)
                    .zip(buckets.chunks(chunk))
                    .map(|(shard_chunk, bucket_chunk)| {
                        scope.spawn(move |_| {
                            let mut out = Vec::new();
                            for (shard, bucket) in shard_chunk.iter_mut().zip(bucket_chunk) {
                                for &(pos, event) in bucket {
                                    process_event(ctx, shard, pos, event, &mut out);
                                }
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|handle| handle.join().expect("monitor shard worker panicked"))
                    .collect()
            })
            .expect("monitor ingestion scope panicked")
        };

        // Stable sort by batch position: alerts of one event keep their
        // within-event (actor, field) order, and the stream equals the
        // sequential replay regardless of thread count.
        tagged.sort_by_key(|&(pos, _)| pos);
        let raised: Vec<Alert> = tagged.into_iter().map(|(_, alert)| alert).collect();
        self.alerts.extend(raised.iter().cloned());
        raised
    }
}

impl fmt::Display for IndexedMonitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "indexed runtime monitor: {} users tracked over {} shards, {} alerts pending",
            self.user_count(),
            SHARDS,
            self.alerts.len()
        )
    }
}

/// Rejects a snapshot that cannot describe this index: a different
/// fingerprint (the word rows would be silently reinterpreted) or
/// dimensions that disagree with the index's variable space.
fn check_snapshot_compat(
    index: &LtsIndex,
    snapshot: &MonitorSnapshot,
) -> Result<(), SnapshotError> {
    let expected = index.fingerprint();
    if snapshot.fingerprint != expected {
        return Err(SnapshotError::IndexMismatch {
            snapshot: snapshot.fingerprint,
            index: expected,
        });
    }
    let space = index.space();
    let dims = (
        space.variable_count().div_ceil(64) as u32,
        space.actor_count().div_ceil(64) as u32,
        space.field_count() as u32,
    );
    if (snapshot.state_words, snapshot.allowed_words, snapshot.field_count) != dims {
        return Err(SnapshotError::Malformed {
            detail: format!(
                "snapshot dimensions ({}, {}, {}) do not describe the index's space \
                 ({}, {}, {})",
                snapshot.state_words,
                snapshot.allowed_words,
                snapshot.field_count,
                dims.0,
                dims.1,
                dims.2
            ),
        });
    }
    Ok(())
}

/// Applies one permitted event to its user's slot, pushing any raised alerts
/// tagged with the event's batch position.
fn process_event(
    ctx: &Ctx<'_>,
    shard: &mut Shard,
    pos: u32,
    event: &Event,
    out: &mut Vec<(u32, Alert)>,
) {
    let Some(slot) = shard.users.get_mut(event.user()) else {
        return;
    };
    match event.action() {
        ActionKind::Collect | ActionKind::Disclose | ActionKind::Read => {
            let Some(actor) =
                ctx.index.actor_index(event.actor()).filter(|&a| (a as usize) < ctx.actor_count)
            else {
                return;
            };
            let mut pairs: Vec<(u32, u32)> = event
                .fields()
                .iter()
                .filter_map(|field| ctx.index.field_index(field))
                .filter(|&f| (f as usize) < ctx.field_count)
                .map(|f| (actor, f))
                .collect();
            pairs.sort_unstable();
            expose(ctx, slot, pos, event, &pairs, VarKind::Has, out);
        }
        ActionKind::Create | ActionKind::Anon => {
            let Some(store) = event.datastore() else {
                return;
            };
            let mut pairs = reader_pairs(ctx, store, event);
            pairs.sort_unstable();
            pairs.dedup();
            expose(ctx, slot, pos, event, &pairs, VarKind::Could, out);
        }
        ActionKind::Delete => {
            let Some(store) = event.datastore() else {
                return;
            };
            for (a, f) in reader_pairs(ctx, store, event) {
                if let Some(has_bit) = ctx.index.bit_index_of(a, f, VarKind::Has) {
                    slot.clear_bit(has_bit + 1); // the paired `could` bit
                }
            }
        }
        // Future action kinds added to the (non-exhaustive) enum do not
        // change the tracked privacy state until modelled explicitly.
        _ => {}
    }
}

/// The `(reader, field)` pairs a `create`/`anon`/`delete` event resolves to:
/// every space actor with read access to the event's fields in its store.
/// Catalog stores answer from the precomputed table; a store outside the
/// catalog falls back to a direct policy probe (the cost the scan monitor
/// pays for every event).
fn reader_pairs(ctx: &Ctx<'_>, store: &DatastoreId, event: &Event) -> Vec<(u32, u32)> {
    let store_idx = ctx.stores.get(store);
    let mut pairs = Vec::new();
    for field in event.fields() {
        let Some(f) = ctx.index.field_index(field).filter(|&f| (f as usize) < ctx.field_count)
        else {
            continue;
        };
        match store_idx {
            Some(s) => {
                for &a in &ctx.readers[s as usize * ctx.field_count + f as usize] {
                    pairs.push((a, f));
                }
            }
            None => {
                for actor in ctx.policy.actors_with(Permission::Read, store, field) {
                    if let Some(a) =
                        ctx.index.actor_index(&actor).filter(|&a| (a as usize) < ctx.actor_count)
                    {
                        pairs.push((a, f));
                    }
                }
            }
        }
    }
    pairs
}

/// Sets the `kind` bit of every pair (ascending, deduplicated — i.e. in the
/// variable space's pair order) and raises an alert for each pair that
/// becomes newly exposed to a non-allowed actor, exactly the scan monitor's
/// "newly exposed pairs" sweep restricted to the bits this event can touch.
fn expose(
    ctx: &Ctx<'_>,
    slot: &mut UserSlot,
    pos: u32,
    event: &Event,
    pairs: &[(u32, u32)],
    kind: VarKind,
    out: &mut Vec<(u32, Alert)>,
) {
    for &(a, f) in pairs {
        let Some(has_bit) = ctx.index.bit_index_of(a, f, VarKind::Has) else {
            continue;
        };
        let could_bit = has_bit + 1;
        let was_exposed = slot.get_bit(has_bit) || slot.get_bit(could_bit);
        match kind {
            VarKind::Has => slot.set_bit(has_bit),
            VarKind::Could => slot.set_bit(could_bit),
        }
        if was_exposed || slot.actor_allowed(a as usize) {
            continue;
        }
        let impact = slot.sensitivities[f as usize];
        let actor = &ctx.index.actors()[a as usize];
        let probability = if slot.get_bit(has_bit) {
            // Direct identification has certainty rather than scenario-based
            // likelihood.
            1.0
        } else {
            match event.datastore() {
                Some(store) => ctx.likelihood.probability(actor, store),
                None => 1.0,
            }
        };
        let level = ctx.matrix.combine(impact, probability);
        if level.at_least(ctx.threshold) {
            let field = &ctx.index.fields()[f as usize];
            out.push((
                pos,
                Alert::raise(
                    event.sequence(),
                    event.user().clone(),
                    level,
                    format!(
                        "non-allowed actor {actor} can now identify `{field}` \
                         (action {}, impact {:.2}, likelihood {:.2})",
                        event.action(),
                        impact.value(),
                        probability
                    ),
                ),
            ));
        }
    }
}
