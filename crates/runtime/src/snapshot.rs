//! Versioned, integrity-checked snapshots of the indexed monitor's state.
//!
//! A production monitor restarts: processes crash, hosts drain, deployments
//! roll. [`MonitorSnapshot`] captures everything an
//! [`IndexedMonitor`](crate::indexed::IndexedMonitor) accumulates at runtime
//! — the per-user packed [`PrivacyState`](privacy_lts::PrivacyState) word
//! rows (with the per-user allowed-actor bitsets and field sensitivities
//! resolved at registration) and the not-yet-drained alerts — while leaving
//! out everything the operator supplies at construction time: the catalog,
//! the access policy and the shared [`LtsIndex`](privacy_lts::LtsIndex) are
//! passed back in at resume time, and monitor *configuration* (alert
//! threshold, risk matrix, likelihood model, thread count) must be
//! re-applied with the builder methods after the resume, exactly as after
//! [`IndexedMonitor::new`](crate::IndexedMonitor::new).
//!
//! Soundness across the restart hinges on two checks:
//!
//! * the snapshot records the **index fingerprint**
//!   ([`LtsIndex::fingerprint`](privacy_lts::LtsIndex::fingerprint)) it was
//!   taken against, and `resume_from` refuses a mismatched index with a
//!   typed [`SnapshotError::IndexMismatch`] — word rows are dense bit
//!   vectors whose meaning *is* the index's variable layout, so resuming
//!   against a regenerated model silently reinterpreting every bit would be
//!   exactly the "state carried across analysis rounds" soundness break the
//!   static-assessment literature warns about;
//! * the byte form goes through the `privacy-interchange` framed
//!   [`binary`] codec: explicit kind tag and
//!   format version, declared length and trailing checksum, so truncated,
//!   bit-flipped or wrong-version inputs all surface as typed
//!   [`CodecError`]s — never a panic, never a silent partial resume.
//!
//! Snapshots are grouped **per shard** (the same stable `UserId`-hash shards
//! ingestion uses), so a large monitor can export shards from parallel
//! workers via [`MonitorSnapshot::split`] and a restarted monitor can
//! [`MonitorSnapshot::merge`] them regardless of the thread count on either
//! side — shard assignment depends only on the user id, never on the
//! ingestion parallelism.
//!
//! Since format version 3 each user row is stored **sparsely**: the state
//! words, allowed-actor bitset and sensitivity vector are each encoded under
//! whichever row encoding is smallest for that row (dense words, index+word
//! pairs, or bit-run lists — see [`binary::put_u64_row`]). At
//! population scale most users have touched at most a handful of fields, so
//! their rows collapse from hundreds of dense bytes to a couple of dozen.
//! Rows stay in their encoded byte form inside [`MonitorSnapshot`]:
//! [`MonitorSnapshot::split`], [`merge`](MonitorSnapshot::merge) and the
//! shard-handoff extract/retain operations *move* row bytes without a
//! decode/encode round trip, which is what keeps re-grouped snapshot bytes
//! byte-identical to the original. Version-2 (dense) frames still decode.

use crate::monitor::Alert;
use privacy_interchange::binary::{
    self, CodecError, Decoder, Encoder, F64_ROW_DENSE, U64_ROW_INDEXED, U64_ROW_RUNS,
};
use privacy_model::{RiskLevel, UserId};
use std::error::Error;
use std::fmt;

/// The artefact kind tag of a monitor snapshot frame ("Privacy Monitor
/// SNapshot").
pub const SNAPSHOT_KIND: [u8; 4] = *b"PMSN";

/// The snapshot format version this build writes. Bumped whenever the
/// payload layout changes; frames newer than this are rejected with
/// [`CodecError::UnsupportedVersion`]. Version 3 introduced the sparse
/// per-user row encodings and varint framing of counts and identifiers;
/// version 2 (dense rows, see [`SNAPSHOT_VERSION_V2`]) is still decoded.
pub const SNAPSHOT_VERSION: u32 = 3;

/// The previous, dense-row snapshot format. [`MonitorSnapshot::from_bytes`]
/// still decodes it — a monitor restarting across the v3 deployment resumes
/// from its existing v2 checkpoint and writes v3 from then on.
pub const SNAPSHOT_VERSION_V2: u32 = 2;

/// The largest per-row dimension (state words, allowed words, or field
/// count) a snapshot header may declare. Sparse rows encode huge rows in a
/// few bytes, so without this cap a corrupted or hostile header could drive
/// a multi-gigabyte materialisation; 2²² words is a 32 MB row, far past any
/// real model.
const MAX_DIM: u32 = 1 << 22;

/// One registered user's persisted monitor state: the packed privacy-state
/// words plus the registration-time resolved alert inputs, so resuming does
/// not need the original [`UserProfile`](privacy_model::UserProfile)s.
///
/// The row is held in its *encoded* sparse byte form — three back-to-back
/// row encodings (state words, allowed bitset, sensitivities) — so snapshot
/// re-grouping moves bytes instead of re-encoding state. Rows are validated
/// structurally when they enter a snapshot (at [`UserRow::from_state`] by
/// construction, at [`MonitorSnapshot::from_bytes`] by decode), so decoding
/// an in-memory row cannot fail.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct UserRow {
    pub(crate) user: UserId,
    /// The sparse-encoded row bytes: `u64` row of packed privacy-state bits
    /// in the index's [`VarSpace`](privacy_lts::VarSpace) layout, `u64` row
    /// of the allowed-actor bitset, `f64` row of per-field sensitivities.
    pub(crate) encoded: Vec<u8>,
}

/// The dimensions every row of a snapshot must decode against: state words,
/// allowed words, field count.
type RowDims = (u32, u32, u32);

/// A row decoded back to dense form: state words, allowed words,
/// sensitivities.
type DecodedRow = (Vec<u64>, Vec<u64>, Vec<f64>);

impl UserRow {
    /// Encodes a user's state into its sparse row form, choosing the
    /// smallest encoding per row.
    pub(crate) fn from_state(
        user: UserId,
        words: &[u64],
        allowed: &[u64],
        sensitivities: &[f64],
    ) -> UserRow {
        let mut encoded = Vec::with_capacity(8);
        binary::put_u64_row(&mut encoded, words);
        binary::put_u64_row(&mut encoded, allowed);
        binary::put_f64_row(&mut encoded, sensitivities);
        UserRow { user, encoded }
    }

    /// Decodes the row back into dense state against the snapshot's declared
    /// dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Malformed`] naming the user and the
    /// row-level problem — possible only for rows that skipped validation,
    /// which no public path constructs.
    pub(crate) fn decode(&self, dims: RowDims) -> Result<DecodedRow, SnapshotError> {
        let mut words = Vec::new();
        let mut allowed = Vec::new();
        let mut sensitivities = Vec::new();
        self.decode_into(dims, &mut words, &mut allowed, &mut sensitivities)?;
        Ok((words, allowed, sensitivities))
    }

    /// [`UserRow::decode`] into caller-owned scratch buffers, returning the
    /// three encoding tags — the allocation-free validation walk
    /// `from_bytes` runs over every row, and the source of the encoding
    /// histogram.
    pub(crate) fn decode_into(
        &self,
        (state_words, allowed_words, field_count): RowDims,
        words: &mut Vec<u64>,
        allowed: &mut Vec<u64>,
        sensitivities: &mut Vec<f64>,
    ) -> Result<(u8, u8, u8), SnapshotError> {
        let row_error = |detail: String| SnapshotError::Malformed {
            detail: format!("user `{}` row: {detail}", self.user),
        };
        let mut offset = 0;
        let words_tag =
            binary::get_u64_row(&self.encoded, &mut offset, state_words as usize, words)
                .map_err(|error| row_error(error.to_string()))?;
        let allowed_tag =
            binary::get_u64_row(&self.encoded, &mut offset, allowed_words as usize, allowed)
                .map_err(|error| row_error(error.to_string()))?;
        let sens_tag =
            binary::get_f64_row(&self.encoded, &mut offset, field_count as usize, sensitivities)
                .map_err(|error| row_error(error.to_string()))?;
        if offset != self.encoded.len() {
            return Err(row_error(format!(
                "{} undeclared bytes after the sensitivity row",
                self.encoded.len() - offset
            )));
        }
        for &value in sensitivities.iter() {
            if value.is_nan() || !(0.0..=1.0).contains(&value) {
                return Err(SnapshotError::Malformed {
                    detail: format!(
                        "sensitivity {value} of user `{}` is outside [0, 1]",
                        self.user
                    ),
                });
            }
        }
        Ok((words_tag, allowed_tag, sens_tag))
    }
}

/// The persisted users of one monitor shard, sorted by user id.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    pub(crate) shard: u32,
    pub(crate) users: Vec<UserRow>,
}

impl ShardSnapshot {
    /// The shard index this group was exported from (stable `UserId` hash;
    /// advisory — resuming re-derives every user's shard from their id).
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Number of users persisted in this shard.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }
}

/// A versioned snapshot of an [`IndexedMonitor`](crate::IndexedMonitor)'s
/// accumulated state. See the module docs for the format and validation
/// story.
///
/// # Examples
///
/// ```
/// use privacy_core::casestudy;
/// use privacy_lts::LtsIndex;
/// use privacy_runtime::IndexedMonitor;
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let system = casestudy::healthcare()?;
/// let index = Arc::new(LtsIndex::build(&system.generate_lts()?));
/// let mut monitor =
///     IndexedMonitor::new(system.catalog().clone(), system.policy().clone(), Arc::clone(&index));
/// monitor.register_user(&casestudy::case_a_user());
///
/// let bytes = monitor.snapshot().to_bytes();
/// let resumed = IndexedMonitor::resume_from(
///     system.catalog().clone(),
///     system.policy().clone(),
///     index,
///     &privacy_runtime::MonitorSnapshot::from_bytes(&bytes)?,
/// )?;
/// assert_eq!(resumed.user_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorSnapshot {
    /// Fingerprint of the [`LtsIndex`](privacy_lts::LtsIndex) the state was
    /// accumulated against.
    pub(crate) fingerprint: u64,
    /// Expected `u64` words per privacy-state row.
    pub(crate) state_words: u32,
    /// Expected `u64` words per allowed-actor bitset.
    pub(crate) allowed_words: u32,
    /// Expected sensitivities per user (the space's field count).
    pub(crate) field_count: u32,
    /// Occupied shards, ascending by shard index.
    pub(crate) shards: Vec<ShardSnapshot>,
    /// Alerts raised but not yet drained at snapshot time, in stream order.
    pub(crate) pending_alerts: Vec<Alert>,
}

impl MonitorSnapshot {
    /// The fingerprint of the index the snapshot was taken against.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The per-shard user groups (occupied shards only).
    pub fn shards(&self) -> &[ShardSnapshot] {
        &self.shards
    }

    /// Total number of persisted users.
    pub fn user_count(&self) -> usize {
        self.shards.iter().map(ShardSnapshot::user_count).sum()
    }

    /// The alerts that were raised but not yet drained at snapshot time.
    pub fn pending_alerts(&self) -> &[Alert] {
        &self.pending_alerts
    }

    /// Splits the snapshot into up to `parts` sub-snapshots along shard
    /// boundaries (round-robin), e.g. to persist a large monitor from
    /// parallel writers. Pending alerts travel with the first part. The
    /// parts [`MonitorSnapshot::merge`] back into the original regardless of
    /// the thread count on either side of the restart.
    pub fn split(&self, parts: usize) -> Vec<MonitorSnapshot> {
        let parts = parts.max(1).min(self.shards.len().max(1));
        let mut out: Vec<MonitorSnapshot> = (0..parts)
            .map(|i| MonitorSnapshot {
                fingerprint: self.fingerprint,
                state_words: self.state_words,
                allowed_words: self.allowed_words,
                field_count: self.field_count,
                shards: Vec::new(),
                pending_alerts: if i == 0 { self.pending_alerts.clone() } else { Vec::new() },
            })
            .collect();
        for (i, shard) in self.shards.iter().enumerate() {
            out[i % parts].shards.push(shard.clone());
        }
        out
    }

    /// The sub-snapshot holding exactly the listed shards — the shard-handoff
    /// export: the outgoing owner captures one (or a few) shards to ship to
    /// the incoming owner. Shards the snapshot does not contain are simply
    /// absent from the result. Pending alerts do **not** travel with an
    /// extract (they belong to whoever is draining the full monitor's alert
    /// stream, not to any one shard).
    pub fn extract_shards(&self, shards: &[u32]) -> MonitorSnapshot {
        MonitorSnapshot {
            fingerprint: self.fingerprint,
            state_words: self.state_words,
            allowed_words: self.allowed_words,
            field_count: self.field_count,
            shards: self
                .shards
                .iter()
                .filter(|shard| shards.contains(&shard.shard))
                .cloned()
                .collect(),
            pending_alerts: Vec::new(),
        }
    }

    /// Drops every shard **not** in the given set, in place — the restart
    /// filter: a worker resuming from a checkpoint written before a shard
    /// was handed away keeps only the shards it currently owns, so the
    /// stale copy of a migrated shard can never shadow the new owner's.
    /// Pending alerts are kept (they were raised by this monitor's stream).
    pub fn retain_shards(&mut self, shards: &[u32]) {
        self.shards.retain(|shard| shards.contains(&shard.shard));
    }

    /// Merges sub-snapshots produced by [`MonitorSnapshot::split`] (in any
    /// order) back into one snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::IndexMismatch`] if the parts were taken
    /// against different indices, and [`SnapshotError::Malformed`] for an
    /// empty part list, disagreeing dimensions, a shard exported twice, or a
    /// user appearing in more than one part (two parts claiming the same
    /// user must be surfaced as the torn export it is — never resolved by
    /// last-writer-wins).
    pub fn merge(parts: &[MonitorSnapshot]) -> Result<MonitorSnapshot, SnapshotError> {
        let first = parts.first().ok_or_else(|| SnapshotError::Malformed {
            detail: "cannot merge an empty list of snapshot parts".into(),
        })?;
        let mut merged = MonitorSnapshot {
            fingerprint: first.fingerprint,
            state_words: first.state_words,
            allowed_words: first.allowed_words,
            field_count: first.field_count,
            shards: Vec::new(),
            pending_alerts: Vec::new(),
        };
        for part in parts {
            if part.fingerprint != merged.fingerprint {
                return Err(SnapshotError::IndexMismatch {
                    snapshot: part.fingerprint,
                    index: merged.fingerprint,
                });
            }
            if (part.state_words, part.allowed_words, part.field_count)
                != (merged.state_words, merged.allowed_words, merged.field_count)
            {
                return Err(SnapshotError::Malformed {
                    detail: "snapshot parts disagree on the state dimensions".into(),
                });
            }
            merged.shards.extend(part.shards.iter().cloned());
            merged.pending_alerts.extend(part.pending_alerts.iter().cloned());
        }
        merged.shards.sort_by_key(|shard| shard.shard);
        if merged.shards.windows(2).any(|pair| pair[0].shard == pair[1].shard) {
            return Err(SnapshotError::Malformed {
                detail: "a shard appears in more than one snapshot part".into(),
            });
        }
        let mut users: Vec<&UserId> = merged
            .shards
            .iter()
            .flat_map(|shard| shard.users.iter().map(|row| &row.user))
            .collect();
        users.sort_unstable();
        if let Some(pair) = users.windows(2).find(|pair| pair[0] == pair[1]) {
            return Err(SnapshotError::Malformed {
                detail: format!("user `{}` appears in more than one snapshot part", pair[0]),
            });
        }
        Ok(merged)
    }

    /// Serializes the snapshot through the framed
    /// [`binary`] codec (kind
    /// [`SNAPSHOT_KIND`], version [`SNAPSHOT_VERSION`], trailing checksum).
    /// Rows are written in their stored sparse form — serialization never
    /// re-encodes a row, so snapshots that were split, merged or
    /// shard-filtered serialize byte-identically to the original grouping.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut encoder = Encoder::new(SNAPSHOT_KIND, SNAPSHOT_VERSION);
        encoder.u64(self.fingerprint);
        encoder.u32(self.state_words);
        encoder.u32(self.allowed_words);
        encoder.u32(self.field_count);
        encoder.varu(self.shards.len() as u64);
        for shard in &self.shards {
            encoder.varu(u64::from(shard.shard));
            encoder.varu(shard.users.len() as u64);
            for row in &shard.users {
                encoder.str_var(row.user.as_str());
                encoder.varu(row.encoded.len() as u64);
                encoder.raw(&row.encoded);
            }
        }
        encoder.varu(self.pending_alerts.len() as u64);
        for alert in &self.pending_alerts {
            encoder.varu(alert.sequence());
            encoder.str_var(alert.user().as_str());
            encoder.u8(alert.level().index() as u8);
            encoder.str_var(alert.message());
        }
        encoder.finish()
    }

    /// [`MonitorSnapshot::to_bytes`] at an explicit format version — the
    /// compatibility seam: tests (and only tests) use it to produce
    /// old-version frames and prove current readers still accept them.
    ///
    /// # Panics
    ///
    /// Panics on a version this build cannot write ([`SNAPSHOT_VERSION`] and
    /// [`SNAPSHOT_VERSION_V2`] are supported) or — for v2, which must
    /// re-encode rows densely — on a row that fails to decode, which no
    /// public path constructs.
    #[must_use]
    pub fn to_bytes_at(&self, version: u32) -> Vec<u8> {
        if version == SNAPSHOT_VERSION {
            return self.to_bytes();
        }
        assert!(
            version == SNAPSHOT_VERSION_V2,
            "snapshot format version {version} cannot be written by this build"
        );
        let dims = (self.state_words, self.allowed_words, self.field_count);
        let mut encoder = Encoder::new(SNAPSHOT_KIND, SNAPSHOT_VERSION_V2);
        encoder.u64(self.fingerprint);
        encoder.u32(self.state_words);
        encoder.u32(self.allowed_words);
        encoder.u32(self.field_count);
        encoder.u32(self.shards.len() as u32);
        for shard in &self.shards {
            encoder.u32(shard.shard);
            encoder.u32(shard.users.len() as u32);
            for row in &shard.users {
                let (words, allowed, sensitivities) =
                    row.decode(dims).expect("validated row decodes");
                encoder.str(row.user.as_str());
                encoder.u64_slice(&words);
                encoder.u64_slice(&allowed);
                encoder.u32(sensitivities.len() as u32);
                for &sensitivity in &sensitivities {
                    encoder.f64(sensitivity);
                }
            }
        }
        encoder.u32(self.pending_alerts.len() as u32);
        for alert in &self.pending_alerts {
            encoder.u64(alert.sequence());
            encoder.str(alert.user().as_str());
            encoder.u8(alert.level().index() as u8);
            encoder.str(alert.message());
        }
        encoder.finish()
    }

    /// Deserializes a snapshot, validating the frame (magic, kind, version,
    /// length, checksum) and every field — including a structural decode of
    /// every sparse row against the declared dimensions, so a snapshot that
    /// constructs is a snapshot whose rows are known to decode.
    ///
    /// Both the current version-3 (sparse) and the previous version-2
    /// (dense) layouts are accepted; v2 rows are re-encoded sparsely on the
    /// way in, so everything downstream — split, merge, `to_bytes` — sees
    /// one in-memory form.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Codec`] for any envelope or primitive-level
    /// problem — truncation, corruption, a future format version — and
    /// [`SnapshotError::Malformed`] for values that decode but cannot be
    /// valid monitor state (a sensitivity outside `[0, 1]`, an unknown risk
    /// level, a user persisted twice, a row disagreeing with the declared
    /// dimensions). Never panics on arbitrary input.
    pub fn from_bytes(bytes: &[u8]) -> Result<MonitorSnapshot, SnapshotError> {
        let mut decoder = match Decoder::new(bytes, SNAPSHOT_KIND, SNAPSHOT_VERSION) {
            Ok(decoder) => decoder,
            Err(CodecError::UnsupportedVersion { found, .. }) if found == SNAPSHOT_VERSION_V2 => {
                return Self::from_bytes_v2(bytes);
            }
            Err(error) => return Err(error.into()),
        };
        let fingerprint = decoder.u64()?;
        let state_words = decoder.u32()?;
        let allowed_words = decoder.u32()?;
        let field_count = decoder.u32()?;
        Self::check_dims(state_words, allowed_words, field_count)?;
        let dims = (state_words, allowed_words, field_count);
        let shard_count = decoder.varu()? as usize;
        let mut shards = Vec::new();
        let mut words_scratch = Vec::new();
        let mut allowed_scratch = Vec::new();
        let mut sens_scratch = Vec::new();
        for _ in 0..shard_count {
            let shard = u32::try_from(decoder.varu()?).map_err(|_| SnapshotError::Malformed {
                detail: "shard index does not fit in 32 bits".into(),
            })?;
            let user_count = decoder.varu()? as usize;
            let mut users = Vec::new();
            for _ in 0..user_count {
                let user = UserId::new(decoder.string_var()?);
                let row_len = decoder.varu()? as usize;
                let encoded = decoder.raw(row_len)?.to_vec();
                let row = UserRow { user, encoded };
                row.decode_into(dims, &mut words_scratch, &mut allowed_scratch, &mut sens_scratch)?;
                users.push(row);
            }
            shards.push(ShardSnapshot { shard, users });
        }
        let alert_count = decoder.varu()? as usize;
        let mut pending_alerts = Vec::new();
        for _ in 0..alert_count {
            let sequence = decoder.varu()?;
            let user = UserId::new(decoder.string_var()?);
            let level_index = decoder.u8()?;
            let level =
                RiskLevel::from_index(level_index as usize).ok_or(SnapshotError::Malformed {
                    detail: format!("{level_index} is not a risk-level index"),
                })?;
            let message = decoder.string_var()?;
            pending_alerts.push(Alert::raise(sequence, user, level, message));
        }
        decoder.finish()?;
        Self::check_unique_users(&shards)?;
        Ok(MonitorSnapshot {
            fingerprint,
            state_words,
            allowed_words,
            field_count,
            shards,
            pending_alerts,
        })
    }

    /// Decodes the version-2 dense layout, re-encoding each row sparsely.
    fn from_bytes_v2(bytes: &[u8]) -> Result<MonitorSnapshot, SnapshotError> {
        let mut decoder = Decoder::new(bytes, SNAPSHOT_KIND, SNAPSHOT_VERSION_V2)?;
        let fingerprint = decoder.u64()?;
        let state_words = decoder.u32()?;
        let allowed_words = decoder.u32()?;
        let field_count = decoder.u32()?;
        Self::check_dims(state_words, allowed_words, field_count)?;
        let shard_count = decoder.u32()? as usize;
        let mut shards = Vec::new();
        for _ in 0..shard_count {
            let shard = decoder.u32()?;
            let user_count = decoder.u32()? as usize;
            let mut users = Vec::new();
            for _ in 0..user_count {
                let user = UserId::new(decoder.string()?);
                let words = decoder.u64_slice()?;
                let allowed = decoder.u64_slice()?;
                let sensitivity_count = decoder.u32()? as usize;
                let mut sensitivities = Vec::with_capacity(sensitivity_count.min(1 << 16));
                for _ in 0..sensitivity_count {
                    let value = decoder.f64()?;
                    if value.is_nan() || !(0.0..=1.0).contains(&value) {
                        return Err(SnapshotError::Malformed {
                            detail: format!(
                                "sensitivity {value} of user `{user}` is outside [0, 1]"
                            ),
                        });
                    }
                    sensitivities.push(value);
                }
                if words.len() != state_words as usize
                    || allowed.len() != allowed_words as usize
                    || sensitivities.len() != field_count as usize
                {
                    return Err(SnapshotError::Malformed {
                        detail: format!(
                            "user `{user}` rows ({} state words, {} allowed words, {} \
                             sensitivities) disagree with the declared dimensions \
                             ({state_words}, {allowed_words}, {field_count})",
                            words.len(),
                            allowed.len(),
                            sensitivities.len()
                        ),
                    });
                }
                users.push(UserRow::from_state(user, &words, &allowed, &sensitivities));
            }
            shards.push(ShardSnapshot { shard, users });
        }
        let alert_count = decoder.u32()? as usize;
        let mut pending_alerts = Vec::new();
        for _ in 0..alert_count {
            let sequence = decoder.u64()?;
            let user = UserId::new(decoder.string()?);
            let level_index = decoder.u8()?;
            let level =
                RiskLevel::from_index(level_index as usize).ok_or(SnapshotError::Malformed {
                    detail: format!("{level_index} is not a risk-level index"),
                })?;
            let message = decoder.string()?;
            pending_alerts.push(Alert::raise(sequence, user, level, message));
        }
        decoder.finish()?;
        Self::check_unique_users(&shards)?;
        Ok(MonitorSnapshot {
            fingerprint,
            state_words,
            allowed_words,
            field_count,
            shards,
            pending_alerts,
        })
    }

    fn check_dims(
        state_words: u32,
        allowed_words: u32,
        field_count: u32,
    ) -> Result<(), SnapshotError> {
        for (what, dim) in [
            ("state words", state_words),
            ("allowed words", allowed_words),
            ("field count", field_count),
        ] {
            if dim > MAX_DIM {
                return Err(SnapshotError::Malformed {
                    detail: format!("declared {what} dimension {dim} exceeds {MAX_DIM}"),
                });
            }
        }
        Ok(())
    }

    fn check_unique_users(shards: &[ShardSnapshot]) -> Result<(), SnapshotError> {
        let mut seen: Vec<&UserId> =
            shards.iter().flat_map(|shard| shard.users.iter().map(|row| &row.user)).collect();
        seen.sort_unstable();
        if seen.windows(2).any(|pair| pair[0] == pair[1]) {
            return Err(SnapshotError::Malformed {
                detail: "a user is persisted more than once".into(),
            });
        }
        Ok(())
    }

    /// Counts, per constituent row kind, which sparse encoding each stored
    /// row chose — the footprint-analysis view behind the benchmark and
    /// `PERFORMANCE.md` histogram tables.
    #[must_use]
    pub fn encoding_histogram(&self) -> SnapshotEncodingHistogram {
        let dims = (self.state_words, self.allowed_words, self.field_count);
        let mut histogram = SnapshotEncodingHistogram::default();
        let mut words = Vec::new();
        let mut allowed = Vec::new();
        let mut sensitivities = Vec::new();
        for shard in &self.shards {
            for row in &shard.users {
                let (words_tag, allowed_tag, sens_tag) = row
                    .decode_into(dims, &mut words, &mut allowed, &mut sensitivities)
                    .expect("validated row decodes");
                histogram.count_word_row(words_tag);
                histogram.count_word_row(allowed_tag);
                match sens_tag {
                    F64_ROW_DENSE => histogram.sensitivities_dense += 1,
                    _ => histogram.sensitivities_based += 1,
                }
            }
        }
        histogram
    }
}

/// How many stored rows chose each sparse encoding, across one snapshot.
/// Word rows (privacy state and allowed-actor bitsets) choose between
/// dense/indexed/runs; sensitivity rows between dense and base+exceptions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotEncodingHistogram {
    /// Word rows stored dense
    /// ([`U64_ROW_DENSE`](privacy_interchange::binary::U64_ROW_DENSE)).
    pub words_dense: usize,
    /// Word rows stored as index+word pairs ([`U64_ROW_INDEXED`]).
    pub words_indexed: usize,
    /// Word rows stored as bit-run lists ([`U64_ROW_RUNS`]).
    pub words_runs: usize,
    /// Sensitivity rows stored dense ([`F64_ROW_DENSE`]).
    pub sensitivities_dense: usize,
    /// Sensitivity rows stored as base+exceptions
    /// ([`F64_ROW_BASED`](privacy_interchange::binary::F64_ROW_BASED)).
    pub sensitivities_based: usize,
}

impl SnapshotEncodingHistogram {
    fn count_word_row(&mut self, tag: u8) {
        match tag {
            U64_ROW_INDEXED => self.words_indexed += 1,
            U64_ROW_RUNS => self.words_runs += 1,
            _ => self.words_dense += 1,
        }
    }

    /// Word rows counted (dense + indexed + runs) — two per user.
    #[must_use]
    pub fn word_rows(&self) -> usize {
        self.words_dense + self.words_indexed + self.words_runs
    }
}

impl fmt::Display for MonitorSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "monitor snapshot: {} users over {} shards, {} pending alerts, index fingerprint \
             {:#018x}",
            self.user_count(),
            self.shards.len(),
            self.pending_alerts.len(),
            self.fingerprint
        )
    }
}

/// A typed failure while decoding or resuming a [`MonitorSnapshot`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The byte frame itself is unreadable: wrong magic/kind, an unsupported
    /// format version, truncation, a checksum mismatch or a malformed
    /// primitive.
    Codec(CodecError),
    /// The snapshot was taken against a different [`LtsIndex`]
    /// (different variable layout or interned vocabulary) — resuming would
    /// silently reinterpret every state bit.
    ///
    /// [`LtsIndex`]: privacy_lts::LtsIndex
    IndexMismatch {
        /// The fingerprint recorded in the snapshot.
        snapshot: u64,
        /// The fingerprint of the index offered at resume time.
        index: u64,
    },
    /// The frame decoded but carries values that cannot be valid monitor
    /// state.
    Malformed {
        /// What is impossible about the decoded state.
        detail: String,
    },
}

impl From<CodecError> for SnapshotError {
    fn from(error: CodecError) -> Self {
        SnapshotError::Codec(error)
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Codec(error) => write!(f, "unreadable snapshot frame: {error}"),
            SnapshotError::IndexMismatch { snapshot, index } => write!(
                f,
                "snapshot was taken against index {snapshot:#018x} but is being resumed against \
                 {index:#018x}; regenerate the snapshot or supply the original index"
            ),
            SnapshotError::Malformed { detail } => write!(f, "malformed snapshot: {detail}"),
        }
    }
}

impl Error for SnapshotError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SnapshotError::Codec(error) => Some(error),
            _ => None,
        }
    }
}
