//! Versioned, integrity-checked snapshots of the indexed monitor's state.
//!
//! A production monitor restarts: processes crash, hosts drain, deployments
//! roll. [`MonitorSnapshot`] captures everything an
//! [`IndexedMonitor`](crate::indexed::IndexedMonitor) accumulates at runtime
//! — the per-user packed [`PrivacyState`](privacy_lts::PrivacyState) word
//! rows (with the per-user allowed-actor bitsets and field sensitivities
//! resolved at registration) and the not-yet-drained alerts — while leaving
//! out everything the operator supplies at construction time: the catalog,
//! the access policy and the shared [`LtsIndex`](privacy_lts::LtsIndex) are
//! passed back in at resume time, and monitor *configuration* (alert
//! threshold, risk matrix, likelihood model, thread count) must be
//! re-applied with the builder methods after the resume, exactly as after
//! [`IndexedMonitor::new`](crate::IndexedMonitor::new).
//!
//! Soundness across the restart hinges on two checks:
//!
//! * the snapshot records the **index fingerprint**
//!   ([`LtsIndex::fingerprint`](privacy_lts::LtsIndex::fingerprint)) it was
//!   taken against, and `resume_from` refuses a mismatched index with a
//!   typed [`SnapshotError::IndexMismatch`] — word rows are dense bit
//!   vectors whose meaning *is* the index's variable layout, so resuming
//!   against a regenerated model silently reinterpreting every bit would be
//!   exactly the "state carried across analysis rounds" soundness break the
//!   static-assessment literature warns about;
//! * the byte form goes through the `privacy-interchange` framed
//!   [`binary`](privacy_interchange::binary) codec: explicit kind tag and
//!   format version, declared length and trailing checksum, so truncated,
//!   bit-flipped or wrong-version inputs all surface as typed
//!   [`CodecError`]s — never a panic, never a silent partial resume.
//!
//! Snapshots are grouped **per shard** (the same stable `UserId`-hash shards
//! ingestion uses), so a large monitor can export shards from parallel
//! workers via [`MonitorSnapshot::split`] and a restarted monitor can
//! [`MonitorSnapshot::merge`] them regardless of the thread count on either
//! side — shard assignment depends only on the user id, never on the
//! ingestion parallelism.

use crate::monitor::Alert;
use privacy_interchange::binary::{CodecError, Decoder, Encoder};
use privacy_model::{RiskLevel, UserId};
use std::error::Error;
use std::fmt;

/// The artefact kind tag of a monitor snapshot frame ("Privacy Monitor
/// SNapshot").
pub const SNAPSHOT_KIND: [u8; 4] = *b"PMSN";

/// The snapshot format version this build writes and reads. Bumped whenever
/// the payload layout changes; older/newer frames are rejected with
/// [`CodecError::UnsupportedVersion`]. Version 2 switched the frame
/// checksum to the word-folded FNV fold — the layout is unchanged, but
/// bumping here lets a version-1 file surface as the stale artefact it is
/// instead of a spurious checksum mismatch.
pub const SNAPSHOT_VERSION: u32 = 2;

/// One registered user's persisted monitor state: the packed privacy-state
/// words plus the registration-time resolved alert inputs, so resuming does
/// not need the original [`UserProfile`](privacy_model::UserProfile)s.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct UserRow {
    pub(crate) user: UserId,
    /// Packed privacy-state bits in the index's
    /// [`VarSpace`](privacy_lts::VarSpace) layout.
    pub(crate) words: Vec<u64>,
    /// Bitset over space actor indices: the user's allowed actors.
    pub(crate) allowed: Vec<u64>,
    /// Per space field index: the user's raw sensitivity `σ(d)`.
    pub(crate) sensitivities: Vec<f64>,
}

/// The persisted users of one monitor shard, sorted by user id.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    pub(crate) shard: u32,
    pub(crate) users: Vec<UserRow>,
}

impl ShardSnapshot {
    /// The shard index this group was exported from (stable `UserId` hash;
    /// advisory — resuming re-derives every user's shard from their id).
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Number of users persisted in this shard.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }
}

/// A versioned snapshot of an [`IndexedMonitor`](crate::IndexedMonitor)'s
/// accumulated state. See the module docs for the format and validation
/// story.
///
/// # Examples
///
/// ```
/// use privacy_core::casestudy;
/// use privacy_lts::LtsIndex;
/// use privacy_runtime::IndexedMonitor;
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let system = casestudy::healthcare()?;
/// let index = Arc::new(LtsIndex::build(&system.generate_lts()?));
/// let mut monitor =
///     IndexedMonitor::new(system.catalog().clone(), system.policy().clone(), Arc::clone(&index));
/// monitor.register_user(&casestudy::case_a_user());
///
/// let bytes = monitor.snapshot().to_bytes();
/// let resumed = IndexedMonitor::resume_from(
///     system.catalog().clone(),
///     system.policy().clone(),
///     index,
///     &privacy_runtime::MonitorSnapshot::from_bytes(&bytes)?,
/// )?;
/// assert_eq!(resumed.user_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorSnapshot {
    /// Fingerprint of the [`LtsIndex`](privacy_lts::LtsIndex) the state was
    /// accumulated against.
    pub(crate) fingerprint: u64,
    /// Expected `u64` words per privacy-state row.
    pub(crate) state_words: u32,
    /// Expected `u64` words per allowed-actor bitset.
    pub(crate) allowed_words: u32,
    /// Expected sensitivities per user (the space's field count).
    pub(crate) field_count: u32,
    /// Occupied shards, ascending by shard index.
    pub(crate) shards: Vec<ShardSnapshot>,
    /// Alerts raised but not yet drained at snapshot time, in stream order.
    pub(crate) pending_alerts: Vec<Alert>,
}

impl MonitorSnapshot {
    /// The fingerprint of the index the snapshot was taken against.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The per-shard user groups (occupied shards only).
    pub fn shards(&self) -> &[ShardSnapshot] {
        &self.shards
    }

    /// Total number of persisted users.
    pub fn user_count(&self) -> usize {
        self.shards.iter().map(ShardSnapshot::user_count).sum()
    }

    /// The alerts that were raised but not yet drained at snapshot time.
    pub fn pending_alerts(&self) -> &[Alert] {
        &self.pending_alerts
    }

    /// Splits the snapshot into up to `parts` sub-snapshots along shard
    /// boundaries (round-robin), e.g. to persist a large monitor from
    /// parallel writers. Pending alerts travel with the first part. The
    /// parts [`MonitorSnapshot::merge`] back into the original regardless of
    /// the thread count on either side of the restart.
    pub fn split(&self, parts: usize) -> Vec<MonitorSnapshot> {
        let parts = parts.max(1).min(self.shards.len().max(1));
        let mut out: Vec<MonitorSnapshot> = (0..parts)
            .map(|i| MonitorSnapshot {
                fingerprint: self.fingerprint,
                state_words: self.state_words,
                allowed_words: self.allowed_words,
                field_count: self.field_count,
                shards: Vec::new(),
                pending_alerts: if i == 0 { self.pending_alerts.clone() } else { Vec::new() },
            })
            .collect();
        for (i, shard) in self.shards.iter().enumerate() {
            out[i % parts].shards.push(shard.clone());
        }
        out
    }

    /// The sub-snapshot holding exactly the listed shards — the shard-handoff
    /// export: the outgoing owner captures one (or a few) shards to ship to
    /// the incoming owner. Shards the snapshot does not contain are simply
    /// absent from the result. Pending alerts do **not** travel with an
    /// extract (they belong to whoever is draining the full monitor's alert
    /// stream, not to any one shard).
    pub fn extract_shards(&self, shards: &[u32]) -> MonitorSnapshot {
        MonitorSnapshot {
            fingerprint: self.fingerprint,
            state_words: self.state_words,
            allowed_words: self.allowed_words,
            field_count: self.field_count,
            shards: self
                .shards
                .iter()
                .filter(|shard| shards.contains(&shard.shard))
                .cloned()
                .collect(),
            pending_alerts: Vec::new(),
        }
    }

    /// Drops every shard **not** in the given set, in place — the restart
    /// filter: a worker resuming from a checkpoint written before a shard
    /// was handed away keeps only the shards it currently owns, so the
    /// stale copy of a migrated shard can never shadow the new owner's.
    /// Pending alerts are kept (they were raised by this monitor's stream).
    pub fn retain_shards(&mut self, shards: &[u32]) {
        self.shards.retain(|shard| shards.contains(&shard.shard));
    }

    /// Merges sub-snapshots produced by [`MonitorSnapshot::split`] (in any
    /// order) back into one snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::IndexMismatch`] if the parts were taken
    /// against different indices, and [`SnapshotError::Malformed`] for an
    /// empty part list, disagreeing dimensions, a shard exported twice, or a
    /// user appearing in more than one part (two parts claiming the same
    /// user must be surfaced as the torn export it is — never resolved by
    /// last-writer-wins).
    pub fn merge(parts: &[MonitorSnapshot]) -> Result<MonitorSnapshot, SnapshotError> {
        let first = parts.first().ok_or_else(|| SnapshotError::Malformed {
            detail: "cannot merge an empty list of snapshot parts".into(),
        })?;
        let mut merged = MonitorSnapshot {
            fingerprint: first.fingerprint,
            state_words: first.state_words,
            allowed_words: first.allowed_words,
            field_count: first.field_count,
            shards: Vec::new(),
            pending_alerts: Vec::new(),
        };
        for part in parts {
            if part.fingerprint != merged.fingerprint {
                return Err(SnapshotError::IndexMismatch {
                    snapshot: part.fingerprint,
                    index: merged.fingerprint,
                });
            }
            if (part.state_words, part.allowed_words, part.field_count)
                != (merged.state_words, merged.allowed_words, merged.field_count)
            {
                return Err(SnapshotError::Malformed {
                    detail: "snapshot parts disagree on the state dimensions".into(),
                });
            }
            merged.shards.extend(part.shards.iter().cloned());
            merged.pending_alerts.extend(part.pending_alerts.iter().cloned());
        }
        merged.shards.sort_by_key(|shard| shard.shard);
        if merged.shards.windows(2).any(|pair| pair[0].shard == pair[1].shard) {
            return Err(SnapshotError::Malformed {
                detail: "a shard appears in more than one snapshot part".into(),
            });
        }
        let mut users: Vec<&UserId> = merged
            .shards
            .iter()
            .flat_map(|shard| shard.users.iter().map(|row| &row.user))
            .collect();
        users.sort_unstable();
        if let Some(pair) = users.windows(2).find(|pair| pair[0] == pair[1]) {
            return Err(SnapshotError::Malformed {
                detail: format!("user `{}` appears in more than one snapshot part", pair[0]),
            });
        }
        Ok(merged)
    }

    /// Serializes the snapshot through the framed
    /// [`binary`](privacy_interchange::binary) codec (kind
    /// [`SNAPSHOT_KIND`], version [`SNAPSHOT_VERSION`], trailing checksum).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut encoder = Encoder::new(SNAPSHOT_KIND, SNAPSHOT_VERSION);
        encoder.u64(self.fingerprint);
        encoder.u32(self.state_words);
        encoder.u32(self.allowed_words);
        encoder.u32(self.field_count);
        encoder.u32(self.shards.len() as u32);
        for shard in &self.shards {
            encoder.u32(shard.shard);
            encoder.u32(shard.users.len() as u32);
            for row in &shard.users {
                encoder.str(row.user.as_str());
                encoder.u64_slice(&row.words);
                encoder.u64_slice(&row.allowed);
                encoder.u32(row.sensitivities.len() as u32);
                for &sensitivity in &row.sensitivities {
                    encoder.f64(sensitivity);
                }
            }
        }
        encoder.u32(self.pending_alerts.len() as u32);
        for alert in &self.pending_alerts {
            encoder.u64(alert.sequence());
            encoder.str(alert.user().as_str());
            encoder.u8(alert.level().index() as u8);
            encoder.str(alert.message());
        }
        encoder.finish()
    }

    /// Deserializes a snapshot, validating the frame (magic, kind, version,
    /// length, checksum) and every field.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Codec`] for any envelope or primitive-level
    /// problem — truncation, corruption, a wrong or future format version —
    /// and [`SnapshotError::Malformed`] for values that decode but cannot be
    /// valid monitor state (a sensitivity outside `[0, 1]`, an unknown risk
    /// level, a user persisted twice). Never panics on arbitrary input.
    pub fn from_bytes(bytes: &[u8]) -> Result<MonitorSnapshot, SnapshotError> {
        let mut decoder = Decoder::new(bytes, SNAPSHOT_KIND, SNAPSHOT_VERSION)?;
        let fingerprint = decoder.u64()?;
        let state_words = decoder.u32()?;
        let allowed_words = decoder.u32()?;
        let field_count = decoder.u32()?;
        let shard_count = decoder.u32()? as usize;
        let mut shards = Vec::new();
        for _ in 0..shard_count {
            let shard = decoder.u32()?;
            let user_count = decoder.u32()? as usize;
            let mut users = Vec::new();
            for _ in 0..user_count {
                let user = UserId::new(decoder.string()?);
                let words = decoder.u64_slice()?;
                let allowed = decoder.u64_slice()?;
                let sensitivity_count = decoder.u32()? as usize;
                let mut sensitivities = Vec::with_capacity(sensitivity_count.min(1 << 16));
                for _ in 0..sensitivity_count {
                    let value = decoder.f64()?;
                    if value.is_nan() || !(0.0..=1.0).contains(&value) {
                        return Err(SnapshotError::Malformed {
                            detail: format!(
                                "sensitivity {value} of user `{user}` is outside [0, 1]"
                            ),
                        });
                    }
                    sensitivities.push(value);
                }
                if words.len() != state_words as usize
                    || allowed.len() != allowed_words as usize
                    || sensitivities.len() != field_count as usize
                {
                    return Err(SnapshotError::Malformed {
                        detail: format!(
                            "user `{user}` rows ({} state words, {} allowed words, {} \
                             sensitivities) disagree with the declared dimensions \
                             ({state_words}, {allowed_words}, {field_count})",
                            words.len(),
                            allowed.len(),
                            sensitivities.len()
                        ),
                    });
                }
                users.push(UserRow { user, words, allowed, sensitivities });
            }
            shards.push(ShardSnapshot { shard, users });
        }
        let alert_count = decoder.u32()? as usize;
        let mut pending_alerts = Vec::new();
        for _ in 0..alert_count {
            let sequence = decoder.u64()?;
            let user = UserId::new(decoder.string()?);
            let level_index = decoder.u8()?;
            let level =
                RiskLevel::from_index(level_index as usize).ok_or(SnapshotError::Malformed {
                    detail: format!("{level_index} is not a risk-level index"),
                })?;
            let message = decoder.string()?;
            pending_alerts.push(Alert::raise(sequence, user, level, message));
        }
        decoder.finish()?;

        let mut seen: Vec<&UserId> =
            shards.iter().flat_map(|shard| shard.users.iter().map(|row| &row.user)).collect();
        seen.sort_unstable();
        if seen.windows(2).any(|pair| pair[0] == pair[1]) {
            return Err(SnapshotError::Malformed {
                detail: "a user is persisted more than once".into(),
            });
        }
        Ok(MonitorSnapshot {
            fingerprint,
            state_words,
            allowed_words,
            field_count,
            shards,
            pending_alerts,
        })
    }
}

impl fmt::Display for MonitorSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "monitor snapshot: {} users over {} shards, {} pending alerts, index fingerprint \
             {:#018x}",
            self.user_count(),
            self.shards.len(),
            self.pending_alerts.len(),
            self.fingerprint
        )
    }
}

/// A typed failure while decoding or resuming a [`MonitorSnapshot`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The byte frame itself is unreadable: wrong magic/kind, an unsupported
    /// format version, truncation, a checksum mismatch or a malformed
    /// primitive.
    Codec(CodecError),
    /// The snapshot was taken against a different [`LtsIndex`]
    /// (different variable layout or interned vocabulary) — resuming would
    /// silently reinterpret every state bit.
    ///
    /// [`LtsIndex`]: privacy_lts::LtsIndex
    IndexMismatch {
        /// The fingerprint recorded in the snapshot.
        snapshot: u64,
        /// The fingerprint of the index offered at resume time.
        index: u64,
    },
    /// The frame decoded but carries values that cannot be valid monitor
    /// state.
    Malformed {
        /// What is impossible about the decoded state.
        detail: String,
    },
}

impl From<CodecError> for SnapshotError {
    fn from(error: CodecError) -> Self {
        SnapshotError::Codec(error)
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Codec(error) => write!(f, "unreadable snapshot frame: {error}"),
            SnapshotError::IndexMismatch { snapshot, index } => write!(
                f,
                "snapshot was taken against index {snapshot:#018x} but is being resumed against \
                 {index:#018x}; regenerate the snapshot or supply the original index"
            ),
            SnapshotError::Malformed { detail } => write!(f, "malformed snapshot: {detail}"),
        }
    }
}

impl Error for SnapshotError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SnapshotError::Codec(error) => Some(error),
            _ => None,
        }
    }
}
