//! Edge cases of [`MonitorSnapshot::split`] / [`MonitorSnapshot::merge`] —
//! the primitives distributed checkpointing and shard handoff are built on.
//!
//! The happy path (split → merge round-trips a populated monitor) is pinned
//! at *mismatched* part counts: a snapshot written by a 3-way split must
//! merge identically whether it is later reassembled from 1, 2 or 64-way
//! splits of the same state. The failure paths are all **typed**: an empty
//! part list, a shard exported twice, the same user claimed by two parts
//! (the torn-export case merge must never resolve by last-writer-wins), and
//! fingerprint disagreement between parts.

use privacy_interchange::binary::{put_f64_row, put_u64_row, Encoder};
use privacy_lts::LtsIndex;
use privacy_model::{FieldId, Record, ServiceId};
use privacy_runtime::snapshot::{SNAPSHOT_KIND, SNAPSHOT_VERSION};
use privacy_runtime::{IndexedMonitor, MonitorSnapshot, ServiceEngine, SnapshotError};
use privacy_synth::{
    random_model, random_profiles, random_workload, ModelGeneratorConfig, ProfileGeneratorConfig,
    WorkloadConfig,
};
use std::sync::Arc;

/// A populated monitor over a small synthetic model: registered users and
/// an engine-produced stream, so the snapshot has real multi-shard state.
fn populated_monitor() -> IndexedMonitor {
    let config = ModelGeneratorConfig {
        actors: 3,
        fields: 4,
        datastores: 1,
        services: 2,
        flows_per_service: 3,
        grant_probability: 0.7,
        seed: 5,
        ..ModelGeneratorConfig::default()
    };
    let (catalog, dataflows, policy) = random_model(&config).expect("synth model");
    let lts = privacy_core::PrivacySystem::new(catalog.clone(), dataflows.clone(), policy.clone())
        .generate_lts()
        .expect("tiny model generates");
    let index = Arc::new(LtsIndex::build(&lts));

    let services: Vec<ServiceId> = catalog.services().map(|s| s.id().clone()).collect();
    let fields: Vec<FieldId> = catalog.fields().map(|f| f.id().clone()).collect();
    let users = random_profiles(&ProfileGeneratorConfig {
        count: 20,
        seed: 23,
        services: services.clone(),
        consent_probability: 0.5,
        fields: fields.clone(),
        sensitivity_probability: 0.6,
    });
    let mut monitor = IndexedMonitor::new(catalog.clone(), policy.clone(), index);
    for user in &users {
        monitor.register_user(user);
    }
    let mut engine = ServiceEngine::new(catalog, dataflows, policy);
    let workload = random_workload(&WorkloadConfig {
        length: 300,
        seed: 29,
        users: users.iter().map(|u| u.id().clone()).collect(),
        services: services.iter().map(|s| (s.clone(), 1.0)).collect(),
    });
    for request in &workload {
        let record = fields
            .iter()
            .fold(Record::new(), |record, field| record.with(field.clone(), format!("v-{field}")));
        let _ = engine.execute(request.user(), request.service(), &record);
    }
    let _ = monitor.ingest_log(engine.log());
    monitor
}

/// Hand-encodes a snapshot frame with the given `(shard, users)` layout and
/// fingerprint — the only way to reach the duplicate-user paths from
/// outside the crate, since the public API never produces one.
fn crafted_snapshot_bytes(fingerprint: u64, shards: &[(u32, &[&str])]) -> Vec<u8> {
    let mut encoder = Encoder::new(SNAPSHOT_KIND, SNAPSHOT_VERSION);
    encoder.u64(fingerprint);
    encoder.u32(1); // state words
    encoder.u32(1); // allowed words
    encoder.u32(0); // field count
    encoder.varu(shards.len() as u64);
    for (shard, users) in shards {
        encoder.varu(u64::from(*shard));
        encoder.varu(users.len() as u64);
        for user in *users {
            encoder.str_var(user);
            let mut row = Vec::new();
            put_u64_row(&mut row, &[0]); // state words
            put_u64_row(&mut row, &[0]); // allowed words
            put_f64_row(&mut row, &[]); // sensitivities
            encoder.varu(row.len() as u64);
            encoder.raw(&row);
        }
    }
    encoder.varu(0); // pending alerts
    encoder.finish()
}

#[test]
fn empty_monitor_snapshot_splits_and_merges() {
    let monitor = {
        let config = ModelGeneratorConfig { seed: 5, ..ModelGeneratorConfig::default() };
        let (catalog, dataflows, policy) = random_model(&config).expect("synth model");
        let lts = privacy_core::PrivacySystem::new(catalog.clone(), dataflows, policy.clone())
            .generate_lts()
            .expect("model generates");
        IndexedMonitor::new(catalog, policy, Arc::new(LtsIndex::build(&lts)))
    };
    let snapshot = monitor.snapshot();
    assert_eq!(snapshot.user_count(), 0);
    let parts = snapshot.split(4);
    assert!(!parts.is_empty(), "split always yields at least one part");
    let merged = MonitorSnapshot::merge(&parts).expect("empty state merges");
    assert_eq!(merged, snapshot);
}

#[test]
fn split_merge_round_trips_at_mismatched_part_counts() {
    let monitor = populated_monitor();
    let snapshot = monitor.snapshot();
    assert!(snapshot.user_count() >= 10, "fixture must populate multiple shards");
    assert!(snapshot.shards().len() >= 2, "fixture must span shards");
    for parts in [1usize, 2, 3, 5, 8, 64] {
        let split = snapshot.split(parts);
        assert!(split.len() <= parts.max(1));
        assert_eq!(
            split.iter().map(MonitorSnapshot::user_count).sum::<usize>(),
            snapshot.user_count()
        );
        let merged = MonitorSnapshot::merge(&split)
            .unwrap_or_else(|error| panic!("merging a {parts}-way split must succeed: {error}"));
        // Byte-level equality: merge must reconstruct the exact snapshot,
        // regardless of how it was split.
        assert_eq!(merged.to_bytes(), snapshot.to_bytes(), "{parts}-way split diverged");
    }
    // Mismatched counts compose: re-split a merge of a 3-way split 7 ways.
    let resplit = MonitorSnapshot::merge(&snapshot.split(3)).expect("3-way merges").split(7);
    let merged = MonitorSnapshot::merge(&resplit).expect("7-way merges");
    assert_eq!(merged.to_bytes(), snapshot.to_bytes());
}

#[test]
fn split_and_merge_move_rows_without_reencoding_across_a_serialize_cycle() {
    // Split/merge/extract operate on *encoded* rows: re-grouping a decoded
    // snapshot and serializing again must reproduce the original bytes
    // exactly — any decode/encode round trip hiding in the path would have
    // to be byte-perfectly canonical by accident to pass this.
    let bytes = populated_monitor().snapshot().to_bytes();
    let decoded = MonitorSnapshot::from_bytes(&bytes).expect("snapshot decodes");
    assert_eq!(decoded.to_bytes(), bytes, "decode → encode must be byte-identical");
    let reassembled: Vec<MonitorSnapshot> = decoded
        .split(3)
        .iter()
        .map(|part| MonitorSnapshot::from_bytes(&part.to_bytes()).expect("part decodes"))
        .collect();
    let merged = MonitorSnapshot::merge(&reassembled).expect("serialized parts merge");
    assert_eq!(merged.to_bytes(), bytes, "split → serialize → merge diverged");
}

#[test]
fn merging_an_empty_part_list_is_a_typed_error() {
    let error = MonitorSnapshot::merge(&[]).expect_err("empty list cannot merge");
    assert!(matches!(&error, SnapshotError::Malformed { detail } if detail.contains("empty")));
}

#[test]
fn merging_the_same_shard_twice_is_a_typed_error() {
    let snapshot = populated_monitor().snapshot();
    let busy = snapshot.shards().first().expect("populated").shard();
    let part = snapshot.extract_shards(&[busy]);
    let error =
        MonitorSnapshot::merge(&[part.clone(), part]).expect_err("duplicate shard must fail");
    assert!(
        matches!(&error, SnapshotError::Malformed { detail }
            if detail.contains("shard") && detail.contains("more than one")),
        "unexpected error: {error}"
    );
}

#[test]
fn merging_parts_that_share_a_user_is_a_typed_error() {
    // Two parts with disjoint shard ids but the same user: the torn-export
    // case. Only reachable via crafted frames — the public API never
    // produces it — and merge must refuse rather than pick a winner.
    let part_a = MonitorSnapshot::from_bytes(&crafted_snapshot_bytes(42, &[(0, &["ada"])]))
        .expect("crafted part decodes");
    let part_b = MonitorSnapshot::from_bytes(&crafted_snapshot_bytes(42, &[(1, &["ada"])]))
        .expect("crafted part decodes");
    let error = MonitorSnapshot::merge(&[part_a, part_b]).expect_err("shared user must fail");
    assert!(
        matches!(&error, SnapshotError::Malformed { detail }
            if detail.contains("ada") && detail.contains("more than one")),
        "unexpected error: {error}"
    );
}

#[test]
fn merging_parts_from_different_indices_is_a_typed_error() {
    let part_a = MonitorSnapshot::from_bytes(&crafted_snapshot_bytes(42, &[(0, &["ada"])]))
        .expect("crafted part decodes");
    let part_b = MonitorSnapshot::from_bytes(&crafted_snapshot_bytes(43, &[(1, &["bob"])]))
        .expect("crafted part decodes");
    let error = MonitorSnapshot::merge(&[part_a, part_b]).expect_err("fingerprints disagree");
    assert!(matches!(error, SnapshotError::IndexMismatch { snapshot: 43, index: 42 }));
}

#[test]
fn decoding_a_snapshot_that_persists_a_user_twice_is_a_typed_error() {
    // The same duplicate-user guard, one layer down: a single frame whose
    // shards disagree about who owns a user is rejected at decode time.
    let bytes = crafted_snapshot_bytes(42, &[(0, &["ada"]), (1, &["ada"])]);
    let error = MonitorSnapshot::from_bytes(&bytes).expect_err("duplicate user must not decode");
    assert!(
        matches!(&error, SnapshotError::Malformed { detail } if detail.contains("more than once")),
        "unexpected error: {error}"
    );
}

#[test]
fn extract_and_retain_shard_edge_cases() {
    let snapshot = populated_monitor().snapshot();
    // Extracting shards the snapshot does not contain yields empty state.
    let absent = snapshot.extract_shards(&[9999]);
    assert_eq!(absent.user_count(), 0);
    assert!(absent.shards().is_empty());
    // Extract never carries pending alerts; fingerprint is preserved so the
    // extract still resumes against the same index.
    assert!(absent.pending_alerts().is_empty());
    assert_eq!(absent.fingerprint(), snapshot.fingerprint());
    // Retaining the empty set empties the snapshot in place.
    let mut emptied = snapshot.clone();
    emptied.retain_shards(&[]);
    assert_eq!(emptied.user_count(), 0);
    // Retain + extract of complementary sets partition the users.
    let owned: Vec<u32> = snapshot.shards().iter().map(|s| s.shard()).step_by(2).collect();
    let kept = snapshot.extract_shards(&owned);
    let mut rest = snapshot.clone();
    rest.retain_shards(
        &snapshot
            .shards()
            .iter()
            .map(|s| s.shard())
            .filter(|shard| !owned.contains(shard))
            .collect::<Vec<_>>(),
    );
    assert_eq!(kept.user_count() + rest.user_count(), snapshot.user_count());
}
