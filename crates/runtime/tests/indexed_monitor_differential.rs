//! Differential property tests: the index-backed streaming monitor against
//! the retained scan-path monitor, over seeded random `privacy-synth`
//! system models and random event streams.
//!
//! The [`IndexedMonitor`] must agree with [`RuntimeMonitor`] on
//! *everything*: the same alerts, in the same order, with the same rendered
//! messages and risk levels — for every ingestion thread count — and the
//! same per-user privacy state afterwards. The streams exercised here mix
//! real engine executions with raw synthetic events (deletes, denied
//! attempts, unregistered users, ghost actors/fields/stores, fieldless
//! events) so every resolution edge case is hit.

use privacy_lts::{generate_lts, ActionKind, GeneratorConfig, LtsIndex, VarSpace};
use privacy_model::{DatastoreId, FieldId, Record, UserId};
use privacy_runtime::{Event, IndexedMonitor, RuntimeMonitor, ServiceEngine};
use privacy_synth::{
    random_model, random_profiles, random_workload, ModelGeneratorConfig, ProfileGeneratorConfig,
    WorkloadConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Uniform pick from a non-empty slice.
fn pick<'a, T>(rng: &mut StdRng, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

/// Builds a random model, an engine-produced event stream plus a raw
/// synthetic tail, and the user population (half of which is registered).
fn fixture(seed: u64, actors: usize, fields: usize, raw_events: usize) -> Fixture {
    let config = ModelGeneratorConfig { actors, fields, seed, ..ModelGeneratorConfig::default() };
    let (catalog, dataflows, policy) = random_model(&config).expect("generated model is valid");
    let lts = generate_lts(
        &catalog,
        &dataflows,
        &policy,
        &GeneratorConfig::default().with_max_states(20_000),
    )
    .expect("generation in bounds");
    let index = Arc::new(LtsIndex::build(&lts));

    let services: Vec<_> = catalog.services().map(|s| s.id().clone()).collect();
    let field_ids: Vec<FieldId> = catalog.fields().map(|f| f.id().clone()).collect();
    let users = random_profiles(&ProfileGeneratorConfig {
        count: 6,
        seed,
        services: services.clone(),
        consent_probability: 0.5,
        fields: field_ids.clone(),
        sensitivity_probability: 0.7,
    });

    // Real events: replay a workload through the service engine.
    let mut engine = ServiceEngine::new(catalog.clone(), dataflows, policy.clone());
    let workload = random_workload(&WorkloadConfig {
        length: 40,
        seed,
        users: users.iter().map(|u| u.id().clone()).collect(),
        services: services.iter().map(|s| (s.clone(), 1.0)).collect(),
    });
    for request in &workload {
        let record = field_ids
            .iter()
            .fold(Record::new(), |record, field| record.with(field.clone(), format!("v-{field}")));
        let _ = engine.execute(request.user(), request.service(), &record);
    }
    let mut events: Vec<Event> = engine.log().events().to_vec();

    // Raw tail: synthetic events stressing the resolution edge cases.
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(7));
    let mut actor_pool: Vec<String> =
        catalog.identifying_actors().map(|a| a.id().as_str().to_owned()).collect();
    actor_pool.push("GhostActor".to_owned());
    let mut field_pool = field_ids.clone();
    field_pool.push(FieldId::new("GhostField"));
    let mut store_pool: Vec<DatastoreId> = catalog.datastores().map(|d| d.id().clone()).collect();
    store_pool.push(DatastoreId::new("GhostStore"));
    let mut user_pool: Vec<UserId> = users.iter().map(|u| u.id().clone()).collect();
    user_pool.push(UserId::new("unregistered-user"));
    let actions = [
        ActionKind::Collect,
        ActionKind::Create,
        ActionKind::Read,
        ActionKind::Disclose,
        ActionKind::Anon,
        ActionKind::Delete,
    ];
    let next_sequence = events.len() as u64;
    for offset in 0..raw_events {
        let action = *pick(&mut rng, &actions);
        let field_count = rng.gen_range(0..3usize); // 0, 1 or 2 fields
        let fields: Vec<FieldId> =
            (0..field_count).map(|_| pick(&mut rng, &field_pool).clone()).collect();
        let datastore =
            if rng.gen_bool(0.8) { Some(pick(&mut rng, &store_pool).clone()) } else { None };
        events.push(Event::new(
            next_sequence + offset as u64,
            pick(&mut rng, &user_pool).clone(),
            "SyntheticService",
            pick(&mut rng, &actor_pool).as_str(),
            action,
            fields,
            datastore,
            rng.gen_bool(0.85),
        ));
    }

    Fixture { catalog, policy, index, users, events }
}

struct Fixture {
    catalog: privacy_model::Catalog,
    policy: privacy_access::AccessPolicy,
    index: Arc<LtsIndex>,
    users: Vec<privacy_model::UserProfile>,
    events: Vec<Event>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn indexed_alerts_equal_scan_alerts_for_every_thread_count(
        seed in 0u64..1_000_000,
        actors in 1usize..5,
        fields in 1usize..5,
        raw_events in 0usize..40,
    ) {
        let fixture = fixture(seed, actors, fields, raw_events);
        let space = VarSpace::from_catalog(&fixture.catalog);

        let mut scan =
            RuntimeMonitor::new(fixture.catalog.clone(), fixture.policy.clone());
        // Register all but the last user, so some stream users are unknown.
        for user in &fixture.users[..fixture.users.len() - 1] {
            scan.register_user(user);
        }
        let scan_alerts = scan.observe_all(&fixture.events);

        for threads in 1usize..=4 {
            let mut indexed = IndexedMonitor::new(
                fixture.catalog.clone(),
                fixture.policy.clone(),
                Arc::clone(&fixture.index),
            )
            .with_threads(Some(threads));
            for user in &fixture.users[..fixture.users.len() - 1] {
                indexed.register_user(user);
            }
            let batch_alerts = indexed.ingest_batch(&fixture.events);
            prop_assert_eq!(&scan_alerts, &batch_alerts);
            prop_assert_eq!(scan.alerts(), indexed.alerts());
            prop_assert_eq!(scan.user_count(), indexed.user_count());
            // The tracked per-user privacy states agree bit-for-bit.
            for user in &fixture.users {
                let scan_state = scan.state_of(user.id());
                let indexed_state = indexed.state_of(user.id());
                prop_assert_eq!(scan_state.is_some(), indexed_state.is_some());
                if let (Some(expected), Some(actual)) = (scan_state, indexed_state) {
                    prop_assert_eq!(expected, &actual);
                }
            }
            // Event-by-event streaming through `observe` matches batching.
            let mut streaming = IndexedMonitor::new(
                fixture.catalog.clone(),
                fixture.policy.clone(),
                Arc::clone(&fixture.index),
            );
            for user in &fixture.users[..fixture.users.len() - 1] {
                streaming.register_user(user);
            }
            let mut streamed = Vec::new();
            for event in &fixture.events {
                streamed.extend(streaming.observe(event));
            }
            prop_assert_eq!(&scan_alerts, &streamed);
            prop_assert_eq!(indexed.drain_alerts(), streamed);
            prop_assert!(indexed.alerts().is_empty());
        }
        // The monitor space and the index space describe the same layout.
        prop_assert_eq!(fixture.index.space(), &space);
    }
}
