//! Crash-recovery property tests for the indexed monitor: a snapshot taken
//! at an *arbitrary* cut point of the stream, serialized, deserialized and
//! resumed — possibly on a different thread count — must continue exactly
//! where the uninterrupted run would be: the same alerts (pending alerts
//! included), the same per-user privacy states, bit for bit.
//!
//! The robustness half pins the failure behaviour: truncated, bit-flipped,
//! wrong-version, wrong-kind and wrong-fingerprint snapshot bytes must all
//! surface as *typed* errors — never a panic, never a silent resume over
//! misread state.

use privacy_interchange::binary::{CodecError, Encoder};
use privacy_lts::{generate_lts, ActionKind, GeneratorConfig, LtsIndex};
use privacy_model::{DatastoreId, FieldId, Record, UserId};
use privacy_runtime::snapshot::{SNAPSHOT_KIND, SNAPSHOT_VERSION, SNAPSHOT_VERSION_V2};
use privacy_runtime::{Event, IndexedMonitor, MonitorSnapshot, ServiceEngine, SnapshotError};
use privacy_synth::{
    random_model, random_profiles, random_workload, ModelGeneratorConfig, ProfileGeneratorConfig,
    WorkloadConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Uniform pick from a non-empty slice.
fn pick<'a, T>(rng: &mut StdRng, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

struct Fixture {
    catalog: privacy_model::Catalog,
    policy: privacy_access::AccessPolicy,
    index: Arc<LtsIndex>,
    users: Vec<privacy_model::UserProfile>,
    events: Vec<Event>,
}

/// Builds a random model, an engine-produced event stream plus a raw
/// synthetic tail (the `indexed_monitor_differential` fixture shape), and a
/// user population of which all but the last member is registered.
fn fixture(seed: u64, actors: usize, fields: usize, raw_events: usize) -> Fixture {
    let config = ModelGeneratorConfig { actors, fields, seed, ..ModelGeneratorConfig::default() };
    let (catalog, dataflows, policy) = random_model(&config).expect("generated model is valid");
    let lts = generate_lts(
        &catalog,
        &dataflows,
        &policy,
        &GeneratorConfig::default().with_max_states(20_000),
    )
    .expect("generation in bounds");
    let index = Arc::new(LtsIndex::build(&lts));

    let services: Vec<_> = catalog.services().map(|s| s.id().clone()).collect();
    let field_ids: Vec<FieldId> = catalog.fields().map(|f| f.id().clone()).collect();
    let users = random_profiles(&ProfileGeneratorConfig {
        count: 6,
        seed,
        services: services.clone(),
        consent_probability: 0.5,
        fields: field_ids.clone(),
        sensitivity_probability: 0.7,
    });

    let mut engine = ServiceEngine::new(catalog.clone(), dataflows, policy.clone());
    let workload = random_workload(&WorkloadConfig {
        length: 40,
        seed,
        users: users.iter().map(|u| u.id().clone()).collect(),
        services: services.iter().map(|s| (s.clone(), 1.0)).collect(),
    });
    for request in &workload {
        let record = field_ids
            .iter()
            .fold(Record::new(), |record, field| record.with(field.clone(), format!("v-{field}")));
        let _ = engine.execute(request.user(), request.service(), &record);
    }
    let mut events: Vec<Event> = engine.log().events().to_vec();

    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(7));
    let mut actor_pool: Vec<String> =
        catalog.identifying_actors().map(|a| a.id().as_str().to_owned()).collect();
    actor_pool.push("GhostActor".to_owned());
    let mut field_pool = field_ids.clone();
    field_pool.push(FieldId::new("GhostField"));
    let mut store_pool: Vec<DatastoreId> = catalog.datastores().map(|d| d.id().clone()).collect();
    store_pool.push(DatastoreId::new("GhostStore"));
    let mut user_pool: Vec<UserId> = users.iter().map(|u| u.id().clone()).collect();
    user_pool.push(UserId::new("unregistered-user"));
    let actions = [
        ActionKind::Collect,
        ActionKind::Create,
        ActionKind::Read,
        ActionKind::Disclose,
        ActionKind::Anon,
        ActionKind::Delete,
    ];
    let next_sequence = events.len() as u64;
    for offset in 0..raw_events {
        let action = *pick(&mut rng, &actions);
        let field_count = rng.gen_range(0..3usize);
        let fields: Vec<FieldId> =
            (0..field_count).map(|_| pick(&mut rng, &field_pool).clone()).collect();
        let datastore =
            if rng.gen_bool(0.8) { Some(pick(&mut rng, &store_pool).clone()) } else { None };
        events.push(Event::new(
            next_sequence + offset as u64,
            pick(&mut rng, &user_pool).clone(),
            "SyntheticService",
            pick(&mut rng, &actor_pool).as_str(),
            action,
            fields,
            datastore,
            rng.gen_bool(0.85),
        ));
    }

    Fixture { catalog, policy, index, users, events }
}

/// A registered monitor over the fixture's model.
fn monitor_over(fixture: &Fixture) -> IndexedMonitor {
    let mut monitor = IndexedMonitor::new(
        fixture.catalog.clone(),
        fixture.policy.clone(),
        Arc::clone(&fixture.index),
    );
    for user in &fixture.users[..fixture.users.len() - 1] {
        monitor.register_user(user);
    }
    monitor
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sparse-encoded snapshot resume ≡ dense resume: for arbitrary cut
    /// points, resuming from the current sparse (v3) bytes and from the
    /// same state written densely as v2 yields identical monitors — same
    /// pending alerts, same tail alerts, same per-user states. This pins
    /// the sparse row encodings as a pure representation change.
    #[test]
    fn sparse_snapshot_resume_equals_dense_resume(
        seed in 0u64..1_000_000,
        actors in 1usize..5,
        fields in 1usize..5,
        raw_events in 0usize..40,
        cut_fraction in 0.0f64..=1.0,
    ) {
        let fixture = fixture(seed, actors, fields, raw_events);
        let cut = (((fixture.events.len() as f64) * cut_fraction) as usize)
            .min(fixture.events.len());

        let mut first_life = monitor_over(&fixture);
        let _ = first_life.ingest_batch(&fixture.events[..cut]);
        let snapshot = first_life.snapshot();
        let sparse_bytes = snapshot.to_bytes();
        let dense_bytes = snapshot.to_bytes_at(SNAPSHOT_VERSION_V2);
        prop_assert!(sparse_bytes.len() <= dense_bytes.len(),
            "sparse encoding ({}) larger than dense ({})", sparse_bytes.len(), dense_bytes.len());

        let resume = |bytes: &[u8]| -> Result<IndexedMonitor, SnapshotError> {
            IndexedMonitor::resume_from(
                fixture.catalog.clone(),
                fixture.policy.clone(),
                Arc::clone(&fixture.index),
                &MonitorSnapshot::from_bytes(bytes)?,
            )
        };
        let mut from_sparse = resume(&sparse_bytes).expect("sparse bytes resume");
        let mut from_dense = resume(&dense_bytes).expect("dense bytes resume");
        prop_assert_eq!(from_sparse.alerts(), from_dense.alerts());
        let sparse_tail = from_sparse.ingest_batch(&fixture.events[cut..]);
        let dense_tail = from_dense.ingest_batch(&fixture.events[cut..]);
        prop_assert_eq!(&sparse_tail, &dense_tail);
        prop_assert_eq!(from_sparse.user_count(), from_dense.user_count());
        for user in &fixture.users {
            prop_assert_eq!(from_sparse.state_of(user.id()), from_dense.state_of(user.id()));
        }
    }

    /// The headline recovery property: snapshot → serialize → resume →
    /// ingest tail ≡ one uninterrupted run, for arbitrary cut points and
    /// independent snapshot/resume thread counts. Pending (undrained)
    /// alerts survive the restart.
    #[test]
    fn snapshot_resume_ingest_tail_equals_uninterrupted_run(
        seed in 0u64..1_000_000,
        actors in 1usize..5,
        fields in 1usize..5,
        raw_events in 0usize..40,
        cut_fraction in 0.0f64..=1.0,
        snapshot_threads in 1usize..=4,
        resume_threads in 1usize..=4,
    ) {
        let fixture = fixture(seed, actors, fields, raw_events);
        let cut = ((fixture.events.len() as f64) * cut_fraction) as usize;
        let cut = cut.min(fixture.events.len());

        let mut uninterrupted = monitor_over(&fixture);
        let full_alerts = uninterrupted.ingest_batch(&fixture.events);

        // Run to the cut (deliberately without draining: pending alerts are
        // part of the persisted state) and snapshot.
        let mut first_life = monitor_over(&fixture).with_threads(Some(snapshot_threads));
        let prefix_alerts = first_life.ingest_batch(&fixture.events[..cut]);
        let snapshot = first_life.snapshot();
        let bytes = snapshot.to_bytes();

        // The byte round-trip is exact.
        let decoded = MonitorSnapshot::from_bytes(&bytes).expect("own bytes decode");
        prop_assert_eq!(&decoded, &snapshot);

        // Shard-split export merges back into the same snapshot.
        let merged = MonitorSnapshot::merge(&snapshot.split(3)).expect("own parts merge");
        prop_assert_eq!(&merged, &snapshot);

        // Second life: resume on an unrelated thread count, ingest the tail.
        let mut second_life = IndexedMonitor::resume_from(
            fixture.catalog.clone(),
            fixture.policy.clone(),
            Arc::clone(&fixture.index),
            &decoded,
        )
        .expect("matching index resumes")
        .with_threads(Some(resume_threads));
        prop_assert_eq!(second_life.alerts(), &prefix_alerts[..]);
        let tail_alerts = second_life.ingest_batch(&fixture.events[cut..]);

        let mut recovered = prefix_alerts;
        recovered.extend(tail_alerts);
        prop_assert_eq!(&recovered, &full_alerts);
        prop_assert_eq!(second_life.alerts(), &full_alerts[..]);
        prop_assert_eq!(second_life.user_count(), uninterrupted.user_count());
        for user in &fixture.users {
            prop_assert_eq!(second_life.state_of(user.id()), uninterrupted.state_of(user.id()));
        }
    }
}

/// Snapshot at t=4 must rehydrate at t=1 and t=2 (the shard assignment is a
/// stable user-id hash, never a function of the ingestion parallelism).
#[test]
fn snapshot_at_four_threads_rehydrates_at_one_and_two() {
    let fixture = fixture(42, 3, 3, 24);
    let cut = fixture.events.len() / 2;

    let mut uninterrupted = monitor_over(&fixture);
    let full_alerts = uninterrupted.ingest_batch(&fixture.events);

    let mut at_four = monitor_over(&fixture).with_threads(Some(4));
    let prefix_alerts = at_four.ingest_batch(&fixture.events[..cut]);
    let bytes = at_four.snapshot().to_bytes();

    for resume_threads in [1usize, 2] {
        let snapshot = MonitorSnapshot::from_bytes(&bytes).expect("own bytes decode");
        let mut resumed = IndexedMonitor::resume_from(
            fixture.catalog.clone(),
            fixture.policy.clone(),
            Arc::clone(&fixture.index),
            &snapshot,
        )
        .expect("matching index resumes")
        .with_threads(Some(resume_threads));
        let tail = resumed.ingest_batch(&fixture.events[cut..]);
        let mut recovered = prefix_alerts.clone();
        recovered.extend(tail);
        assert_eq!(recovered, full_alerts, "t=4 → t={resume_threads} recovery diverges");
        for user in &fixture.users {
            assert_eq!(resumed.state_of(user.id()), uninterrupted.state_of(user.id()));
        }
    }
}

/// Monitor configuration is a construction-time input, not persisted state:
/// re-applying the first life's non-default configuration after a resume
/// reproduces the uninterrupted run exactly (the builders only affect how
/// future events alert, never the restored state).
#[test]
fn resuming_with_reapplied_configuration_matches_uninterrupted_run() {
    use privacy_model::RiskLevel;
    let fixture = fixture(77, 3, 3, 24);
    let cut = fixture.events.len() / 2;

    // A Low threshold surfaces strictly more alerts than the default
    // Medium, so a resume that silently fell back to defaults would lose
    // alerts on the tail.
    let mut uninterrupted = monitor_over(&fixture).with_alert_threshold(RiskLevel::Low);
    let full_alerts = uninterrupted.ingest_batch(&fixture.events);

    let mut first_life = monitor_over(&fixture).with_alert_threshold(RiskLevel::Low);
    let prefix_alerts = first_life.ingest_batch(&fixture.events[..cut]);
    let bytes = first_life.snapshot().to_bytes();

    let snapshot = MonitorSnapshot::from_bytes(&bytes).expect("own bytes decode");
    let mut second_life = IndexedMonitor::resume_from(
        fixture.catalog.clone(),
        fixture.policy.clone(),
        Arc::clone(&fixture.index),
        &snapshot,
    )
    .expect("matching index resumes")
    .with_alert_threshold(RiskLevel::Low); // same configuration as the first life
    let tail_alerts = second_life.ingest_batch(&fixture.events[cut..]);

    let mut recovered = prefix_alerts;
    recovered.extend(tail_alerts);
    assert_eq!(recovered, full_alerts);
    for user in &fixture.users {
        assert_eq!(second_life.state_of(user.id()), uninterrupted.state_of(user.id()));
    }
}

/// A small fixture whose snapshot is a few hundred bytes, so exhaustive
/// corruption sweeps stay fast.
fn small_snapshot() -> (Fixture, Vec<u8>) {
    let fixture = fixture(7, 2, 2, 12);
    let mut monitor = monitor_over(&fixture);
    let _ = monitor.ingest_batch(&fixture.events);
    let bytes = monitor.snapshot().to_bytes();
    (fixture, bytes)
}

#[test]
fn truncated_snapshot_bytes_return_typed_errors_at_every_length() {
    let (_, bytes) = small_snapshot();
    for len in 0..bytes.len() {
        match MonitorSnapshot::from_bytes(&bytes[..len]) {
            Err(SnapshotError::Codec(_)) => {}
            Err(other) => panic!("prefix of {len} bytes produced a non-codec error: {other}"),
            Ok(_) => panic!("prefix of {len} bytes decoded successfully"),
        }
    }
}

#[test]
fn bit_flipped_snapshot_bytes_never_resume_silently() {
    let (_, bytes) = small_snapshot();
    for position in 0..bytes.len() {
        for bit in 0..8 {
            let mut flipped = bytes.clone();
            flipped[position] ^= 1 << bit;
            assert!(
                MonitorSnapshot::from_bytes(&flipped).is_err(),
                "flipping bit {bit} of byte {position} went undetected"
            );
        }
    }
}

/// Cross-version recovery: a monitor that crashed while the fleet ran the
/// dense v2 format resumes from its v2 snapshot under this build, ingests
/// the stream tail, and matches the uninterrupted run exactly — then writes
/// v3 from its next snapshot on. Named for the repo-lint version-bump
/// guard: bumping `SNAPSHOT_VERSION` again requires a test like this one
/// naming the outgoing version.
#[test]
fn snapshot_v2_dense_frames_still_decode_and_resume() {
    let fixture = fixture(91, 3, 3, 24);
    let cut = fixture.events.len() / 2;

    let mut uninterrupted = monitor_over(&fixture);
    let full_alerts = uninterrupted.ingest_batch(&fixture.events);

    let mut first_life = monitor_over(&fixture);
    let prefix_alerts = first_life.ingest_batch(&fixture.events[..cut]);
    let snapshot = first_life.snapshot();
    let v2_bytes = snapshot.to_bytes_at(SNAPSHOT_VERSION_V2);

    // The v2 frame decodes into exactly the snapshot the v3 bytes carry.
    let decoded = MonitorSnapshot::from_bytes(&v2_bytes).expect("v2 frame decodes");
    assert_eq!(decoded, snapshot);
    // …and its re-serialization is the (smaller) v3 form, not v2.
    assert_eq!(decoded.to_bytes(), snapshot.to_bytes());

    let mut resumed = IndexedMonitor::resume_from(
        fixture.catalog.clone(),
        fixture.policy.clone(),
        Arc::clone(&fixture.index),
        &decoded,
    )
    .expect("v2 snapshot resumes");
    assert_eq!(resumed.alerts(), &prefix_alerts[..]);
    let tail_alerts = resumed.ingest_batch(&fixture.events[cut..]);
    let mut recovered = prefix_alerts;
    recovered.extend(tail_alerts);
    assert_eq!(recovered, full_alerts, "v2 → v3 cross-version recovery diverges");
    for user in &fixture.users {
        assert_eq!(resumed.state_of(user.id()), uninterrupted.state_of(user.id()));
    }

    // The v2 corruption guarantees hold through the fallback path too.
    for len in 0..v2_bytes.len() {
        assert!(MonitorSnapshot::from_bytes(&v2_bytes[..len]).is_err(), "v2 prefix {len} decoded");
    }
    for position in 0..v2_bytes.len() {
        for bit in 0..8 {
            let mut flipped = v2_bytes.clone();
            flipped[position] ^= 1 << bit;
            assert!(
                MonitorSnapshot::from_bytes(&flipped).is_err(),
                "flipping bit {bit} of v2 byte {position} went undetected"
            );
        }
    }
}

#[test]
fn wrong_version_and_wrong_kind_frames_are_rejected() {
    // A well-formed frame of a future snapshot version…
    let future = Encoder::new(SNAPSHOT_KIND, SNAPSHOT_VERSION + 1).finish();
    match MonitorSnapshot::from_bytes(&future) {
        Err(SnapshotError::Codec(CodecError::UnsupportedVersion { found, supported })) => {
            assert_eq!(found, SNAPSHOT_VERSION + 1);
            assert_eq!(supported, SNAPSHOT_VERSION);
        }
        other => panic!("future version produced {other:?}"),
    }
    // A version-1 frame is ancient history: only v2 has a fallback decoder.
    let ancient = Encoder::new(SNAPSHOT_KIND, 1).finish();
    assert!(matches!(
        MonitorSnapshot::from_bytes(&ancient),
        Err(SnapshotError::Codec(CodecError::UnsupportedVersion { found: 1, .. }))
    ));
    // …and a well-formed frame of some other artefact kind.
    let alien = Encoder::new(*b"OTHR", SNAPSHOT_VERSION).finish();
    assert!(matches!(
        MonitorSnapshot::from_bytes(&alien),
        Err(SnapshotError::Codec(CodecError::BadMagic { .. }))
    ));
    // Garbage that is not even a frame.
    assert!(MonitorSnapshot::from_bytes(b"not a snapshot").is_err());
    assert!(MonitorSnapshot::from_bytes(&[]).is_err());
}

#[test]
fn snapshot_of_one_model_is_rejected_against_another_index() {
    let (fixture_a, bytes) = small_snapshot();
    let fixture_b = fixture(1234, 3, 4, 0);
    assert_ne!(fixture_a.index.fingerprint(), fixture_b.index.fingerprint());

    let snapshot = MonitorSnapshot::from_bytes(&bytes).expect("own bytes decode");
    match IndexedMonitor::resume_from(
        fixture_b.catalog.clone(),
        fixture_b.policy.clone(),
        Arc::clone(&fixture_b.index),
        &snapshot,
    ) {
        Err(SnapshotError::IndexMismatch { snapshot: recorded, index }) => {
            assert_eq!(recorded, fixture_a.index.fingerprint());
            assert_eq!(index, fixture_b.index.fingerprint());
        }
        Ok(_) => panic!("mismatched index resumed silently"),
        Err(other) => panic!("mismatched index produced {other}"),
    }
}

#[test]
fn merge_rejects_mixed_fingerprints_and_duplicate_shards() {
    let (fixture_a, bytes_a) = small_snapshot();
    let snapshot_a = MonitorSnapshot::from_bytes(&bytes_a).expect("decodes");

    // Mixed fingerprints are refused.
    let fixture_b = fixture(1234, 3, 4, 0);
    let mut monitor_b = monitor_over(&fixture_b);
    let _ = monitor_b.ingest_batch(&fixture_b.events);
    let snapshot_b = monitor_b.snapshot();
    assert!(matches!(
        MonitorSnapshot::merge(&[snapshot_a.clone(), snapshot_b]),
        Err(SnapshotError::IndexMismatch { .. })
    ));

    // A shard exported twice is refused.
    assert!(matches!(
        MonitorSnapshot::merge(&[snapshot_a.clone(), snapshot_a.clone()]),
        Err(SnapshotError::Malformed { .. })
    ));

    // An empty part list is refused.
    assert!(matches!(MonitorSnapshot::merge(&[]), Err(SnapshotError::Malformed { .. })));

    let _ = fixture_a;
}
