//! A dependency-free gzip codec.
//!
//! The build environment has no `flate2`, and production logs routinely
//! arrive as `.gz` archives, so this module implements the two RFCs
//! directly, in safe Rust:
//!
//! * [`gunzip`] — a full RFC 1952 reader (header flags, optional header
//!   CRC, concatenated members, CRC32 + ISIZE trailer verification) over a
//!   full RFC 1951 *inflate* (stored, fixed-Huffman and dynamic-Huffman
//!   blocks), so archives produced by real `gzip`/zlib decompress;
//! * [`gzip_compress_stored`] — a writer that emits only *stored* deflate
//!   blocks. It compresses nothing, but it produces byte-streams any
//!   standards-compliant gzip reader (including [`gunzip`]) accepts, which
//!   is all the round-trip tests and the synthetic-log tooling need.
//!
//! Every failure mode is a typed [`GzipError`]; malformed archives can
//! never panic the decoder (the hardening suite pins this).

use std::fmt;
use std::sync::OnceLock;

/// The two gzip magic bytes.
pub const MAGIC: [u8; 2] = [0x1f, 0x8b];

/// Returns `true` when `bytes` starts with the gzip magic.
pub fn is_gzip(bytes: &[u8]) -> bool {
    bytes.len() >= 2 && bytes[0] == MAGIC[0] && bytes[1] == MAGIC[1]
}

/// Why a gzip archive failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GzipError {
    /// The stream does not start with the gzip magic bytes.
    BadMagic {
        /// What was found instead (fewer than two bytes ⇒ padded with 0).
        found: [u8; 2],
    },
    /// The compression method is not deflate.
    UnsupportedMethod {
        /// The method byte found.
        method: u8,
    },
    /// The header sets reserved flag bits.
    ReservedFlags {
        /// The flag byte found.
        flags: u8,
    },
    /// The stream ends in the middle of the named structure.
    Truncated {
        /// Which structure was being read.
        context: &'static str,
    },
    /// The optional header CRC16 does not match.
    HeaderCrcMismatch {
        /// The CRC the header declared.
        expected: u16,
        /// The CRC of the header bytes actually read.
        found: u16,
    },
    /// A deflate block declares the reserved block type 3.
    BadBlockType {
        /// Byte offset (within the member's deflate stream) of the block.
        offset: usize,
    },
    /// A stored block's length and one's-complement check disagree.
    StoredLengthMismatch {
        /// Byte offset of the stored block header.
        offset: usize,
    },
    /// A Huffman table or symbol is invalid (over-subscribed lengths,
    /// unknown code, bad repeat, out-of-range length/distance symbol).
    InvalidCode {
        /// Byte offset where decoding failed.
        offset: usize,
        /// What was invalid.
        detail: &'static str,
    },
    /// A match distance reaches before the start of the output.
    DistanceTooFar {
        /// Byte offset where the match was decoded.
        offset: usize,
    },
    /// The trailer CRC32 does not match the decompressed bytes.
    ChecksumMismatch {
        /// The CRC the trailer declared.
        expected: u32,
        /// The CRC of the decompressed bytes.
        found: u32,
    },
    /// The trailer ISIZE does not match the decompressed length (mod 2³²).
    SizeMismatch {
        /// The size the trailer declared.
        expected: u32,
        /// The decompressed length mod 2³².
        found: u32,
    },
    /// Bytes remain after the last member that are not another member.
    TrailingBytes {
        /// Offset of the first trailing byte.
        offset: usize,
    },
}

impl fmt::Display for GzipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GzipError::BadMagic { found } => {
                write!(f, "not a gzip stream (magic {:02x} {:02x})", found[0], found[1])
            }
            GzipError::UnsupportedMethod { method } => {
                write!(f, "unsupported compression method {method} (only deflate)")
            }
            GzipError::ReservedFlags { flags } => {
                write!(f, "reserved header flag bits set ({flags:#04x})")
            }
            GzipError::Truncated { context } => write!(f, "truncated while reading {context}"),
            GzipError::HeaderCrcMismatch { expected, found } => {
                write!(f, "header CRC mismatch (declared {expected:#06x}, found {found:#06x})")
            }
            GzipError::BadBlockType { offset } => {
                write!(f, "reserved deflate block type at offset {offset}")
            }
            GzipError::StoredLengthMismatch { offset } => {
                write!(f, "stored block length check failed at offset {offset}")
            }
            GzipError::InvalidCode { offset, detail } => {
                write!(f, "invalid deflate data at offset {offset}: {detail}")
            }
            GzipError::DistanceTooFar { offset } => {
                write!(f, "match distance before start of output at offset {offset}")
            }
            GzipError::ChecksumMismatch { expected, found } => {
                write!(f, "CRC32 mismatch (trailer {expected:#010x}, data {found:#010x})")
            }
            GzipError::SizeMismatch { expected, found } => {
                write!(f, "ISIZE mismatch (trailer {expected}, data {found})")
            }
            GzipError::TrailingBytes { offset } => {
                write!(f, "trailing bytes after the last gzip member (offset {offset})")
            }
        }
    }
}

impl std::error::Error for GzipError {}

// ---------------------------------------------------------------------------
// CRC32 (the gzip polynomial, reflected).

fn crc_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (n, entry) in table.iter_mut().enumerate() {
            let mut c = n as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        table
    })
}

/// The CRC32 (as gzip computes it) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut crc = 0xffff_ffffu32;
    for &byte in bytes {
        crc = table[((crc ^ u32::from(byte)) & 0xff) as usize] ^ (crc >> 8);
    }
    crc ^ 0xffff_ffff
}

// ---------------------------------------------------------------------------
// Inflate (RFC 1951).

/// LSB-first bit reader over a byte slice.
struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next unread byte.
    pos: usize,
    /// Bit accumulator and the number of valid bits in it.
    acc: u32,
    bits: u32,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0, acc: 0, bits: 0 }
    }

    /// Byte offset used in error provenance (next unread byte).
    fn offset(&self) -> usize {
        self.pos
    }

    fn take(&mut self, count: u32, context: &'static str) -> Result<u32, GzipError> {
        debug_assert!(count <= 16);
        while self.bits < count {
            let byte = *self.bytes.get(self.pos).ok_or(GzipError::Truncated { context })?;
            self.acc |= u32::from(byte) << self.bits;
            self.bits += 8;
            self.pos += 1;
        }
        let value = self.acc & ((1u32 << count) - 1);
        self.acc >>= count;
        self.bits -= count;
        Ok(value)
    }

    fn take_bit(&mut self, context: &'static str) -> Result<u32, GzipError> {
        self.take(1, context)
    }

    /// Discards buffered bits to the next byte boundary.
    fn align(&mut self) {
        self.acc = 0;
        self.bits = 0;
    }

    /// Reads `len` whole bytes (only valid when aligned).
    fn bytes(&mut self, len: usize, context: &'static str) -> Result<&'a [u8], GzipError> {
        debug_assert_eq!(self.bits, 0);
        let end = self.pos.checked_add(len).ok_or(GzipError::Truncated { context })?;
        if end > self.bytes.len() {
            return Err(GzipError::Truncated { context });
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
}

/// A canonical Huffman decoding table: `counts[n]` codes of length `n`,
/// symbols in canonical order.
struct Huffman {
    counts: [u16; 16],
    symbols: Vec<u16>,
}

impl Huffman {
    /// Builds the table from per-symbol code lengths (0 = unused). Rejects
    /// over-subscribed length sets; incomplete sets are accepted (decoding
    /// just fails if a missing code appears), matching zlib's permissive
    /// handling of the single-code corner cases.
    fn new(lengths: &[u8], offset: usize) -> Result<Huffman, GzipError> {
        let mut counts = [0u16; 16];
        for &len in lengths {
            counts[len as usize] += 1;
        }
        // Over-subscription check: walking the Kraft sum.
        let mut left = 1i32;
        for &count in &counts[1..16] {
            left <<= 1;
            left -= i32::from(count);
            if left < 0 {
                return Err(GzipError::InvalidCode { offset, detail: "over-subscribed code" });
            }
        }
        // Symbol table: offsets per length, then symbols in canonical order.
        let mut offsets = [0u16; 16];
        for len in 1..15 {
            offsets[len + 1] = offsets[len] + counts[len];
        }
        let mut symbols = vec![0u16; lengths.iter().filter(|&&l| l != 0).count()];
        for (symbol, &len) in lengths.iter().enumerate() {
            if len != 0 {
                symbols[offsets[len as usize] as usize] = symbol as u16;
                offsets[len as usize] += 1;
            }
        }
        Ok(Huffman { counts, symbols })
    }

    /// Decodes one symbol, reading bits MSB-of-code-first as deflate packs
    /// them.
    fn decode(&self, reader: &mut BitReader<'_>) -> Result<u16, GzipError> {
        let mut code = 0i32;
        let mut first = 0i32;
        let mut index = 0i32;
        for len in 1..16 {
            code |= reader.take_bit("compressed data")? as i32;
            let count = i32::from(self.counts[len]);
            if code - count < first {
                return Ok(self.symbols[(index + (code - first)) as usize]);
            }
            index += count;
            first += count;
            first <<= 1;
            code <<= 1;
        }
        Err(GzipError::InvalidCode { offset: reader.offset(), detail: "unknown code" })
    }
}

const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LENGTH_EXTRA: [u32; 29] =
    [0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0];
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u32; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];
/// Order in which the code-length code's lengths are transmitted.
const CODE_LENGTH_ORDER: [usize; 19] =
    [16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15];

fn fixed_tables() -> (Huffman, Huffman) {
    let mut lit_lengths = [0u8; 288];
    for (symbol, len) in lit_lengths.iter_mut().enumerate() {
        *len = match symbol {
            0..=143 => 8,
            144..=255 => 9,
            256..=279 => 7,
            _ => 8,
        };
    }
    let dist_lengths = [5u8; 30];
    // Infallible: the fixed tables are exactly complete by construction.
    let lit = Huffman::new(&lit_lengths, 0).expect("fixed literal table");
    let dist = Huffman::new(&dist_lengths, 0).expect("fixed distance table");
    (lit, dist)
}

fn dynamic_tables(reader: &mut BitReader<'_>) -> Result<(Huffman, Huffman), GzipError> {
    let offset = reader.offset();
    let hlit = reader.take(5, "dynamic header")? as usize + 257;
    let hdist = reader.take(5, "dynamic header")? as usize + 1;
    let hclen = reader.take(4, "dynamic header")? as usize + 4;
    if hlit > 286 || hdist > 30 {
        return Err(GzipError::InvalidCode { offset, detail: "too many symbols" });
    }

    let mut code_lengths = [0u8; 19];
    for &index in CODE_LENGTH_ORDER.iter().take(hclen) {
        code_lengths[index] = reader.take(3, "code-length code")? as u8;
    }
    let code_table = Huffman::new(&code_lengths, reader.offset())?;

    let mut lengths = vec![0u8; hlit + hdist];
    let mut filled = 0usize;
    while filled < lengths.len() {
        let at = reader.offset();
        let symbol = code_table.decode(reader)?;
        match symbol {
            0..=15 => {
                lengths[filled] = symbol as u8;
                filled += 1;
            }
            16 => {
                if filled == 0 {
                    return Err(GzipError::InvalidCode {
                        offset: at,
                        detail: "repeat before any length",
                    });
                }
                let previous = lengths[filled - 1];
                let count = reader.take(2, "length repeat")? as usize + 3;
                if filled + count > lengths.len() {
                    return Err(GzipError::InvalidCode { offset: at, detail: "repeat past end" });
                }
                lengths[filled..filled + count].fill(previous);
                filled += count;
            }
            17 | 18 => {
                let count = if symbol == 17 {
                    reader.take(3, "zero run")? as usize + 3
                } else {
                    reader.take(7, "zero run")? as usize + 11
                };
                if filled + count > lengths.len() {
                    return Err(GzipError::InvalidCode { offset: at, detail: "zero run past end" });
                }
                filled += count;
            }
            _ => {
                return Err(GzipError::InvalidCode { offset: at, detail: "bad code-length symbol" })
            }
        }
    }
    if lengths[256] == 0 {
        return Err(GzipError::InvalidCode { offset, detail: "no end-of-block code" });
    }
    let lit = Huffman::new(&lengths[..hlit], offset)?;
    let dist = Huffman::new(&lengths[hlit..], offset)?;
    Ok((lit, dist))
}

fn inflate_block(
    reader: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    lit: &Huffman,
    dist: &Huffman,
) -> Result<(), GzipError> {
    loop {
        let at = reader.offset();
        let symbol = lit.decode(reader)?;
        match symbol {
            0..=255 => out.push(symbol as u8),
            256 => return Ok(()),
            257..=285 => {
                let entry = symbol as usize - 257;
                let length = usize::from(LENGTH_BASE[entry])
                    + reader.take(LENGTH_EXTRA[entry], "match length")? as usize;
                let dist_symbol = dist.decode(reader)? as usize;
                if dist_symbol >= 30 {
                    return Err(GzipError::InvalidCode {
                        offset: at,
                        detail: "bad distance symbol",
                    });
                }
                let distance = usize::from(DIST_BASE[dist_symbol])
                    + reader.take(DIST_EXTRA[dist_symbol], "match distance")? as usize;
                if distance > out.len() {
                    return Err(GzipError::DistanceTooFar { offset: at });
                }
                let start = out.len() - distance;
                // Overlapping copies are the point of LZ77: copy byte-wise.
                for i in 0..length {
                    let byte = out[start + i];
                    out.push(byte);
                }
            }
            _ => return Err(GzipError::InvalidCode { offset: at, detail: "bad literal symbol" }),
        }
    }
}

/// Inflates one raw deflate stream, returning the decompressed bytes and
/// the number of input bytes consumed.
fn inflate(bytes: &[u8]) -> Result<(Vec<u8>, usize), GzipError> {
    let mut reader = BitReader::new(bytes);
    let mut out = Vec::new();
    loop {
        let final_block = reader.take_bit("block header")? == 1;
        let block_type = reader.take(2, "block header")?;
        match block_type {
            0 => {
                let offset = reader.offset();
                reader.align();
                let header = reader.bytes(4, "stored block header")?;
                let len = u16::from_le_bytes([header[0], header[1]]);
                let nlen = u16::from_le_bytes([header[2], header[3]]);
                if len != !nlen {
                    return Err(GzipError::StoredLengthMismatch { offset });
                }
                let data = reader.bytes(usize::from(len), "stored block data")?;
                out.extend_from_slice(data);
            }
            1 => {
                let (lit, dist) = fixed_tables();
                inflate_block(&mut reader, &mut out, &lit, &dist)?;
            }
            2 => {
                let (lit, dist) = dynamic_tables(&mut reader)?;
                inflate_block(&mut reader, &mut out, &lit, &dist)?;
            }
            _ => return Err(GzipError::BadBlockType { offset: reader.offset() }),
        }
        if final_block {
            reader.align();
            return Ok((out, reader.offset()));
        }
    }
}

// ---------------------------------------------------------------------------
// The gzip member framing (RFC 1952).

const FTEXT: u8 = 1;
const FHCRC: u8 = 2;
const FEXTRA: u8 = 4;
const FNAME: u8 = 8;
const FCOMMENT: u8 = 16;

/// Parses one member starting at `bytes[start..]`, appending its payload to
/// `out` and returning the offset just past the member.
fn gunzip_member(bytes: &[u8], start: usize, out: &mut Vec<u8>) -> Result<usize, GzipError> {
    let member = &bytes[start..];
    if member.len() < 2 || member[0] != MAGIC[0] || member[1] != MAGIC[1] {
        let mut found = [0u8; 2];
        for (slot, &byte) in found.iter_mut().zip(member.iter()) {
            *slot = byte;
        }
        return Err(GzipError::BadMagic { found });
    }
    if member.len() < 10 {
        return Err(GzipError::Truncated { context: "member header" });
    }
    let method = member[2];
    if method != 8 {
        return Err(GzipError::UnsupportedMethod { method });
    }
    let flags = member[3];
    if flags & 0xe0 != 0 {
        return Err(GzipError::ReservedFlags { flags });
    }
    // MTIME (4), XFL (1), OS (1) are informational.
    let mut pos = 10usize;
    if flags & FEXTRA != 0 {
        if member.len() < pos + 2 {
            return Err(GzipError::Truncated { context: "extra-field length" });
        }
        let xlen = usize::from(u16::from_le_bytes([member[pos], member[pos + 1]]));
        pos += 2;
        if member.len() < pos + xlen {
            return Err(GzipError::Truncated { context: "extra field" });
        }
        pos += xlen;
    }
    for (flag, context) in [(FNAME, "file name"), (FCOMMENT, "comment")] {
        if flags & flag != 0 {
            let terminator = member[pos..]
                .iter()
                .position(|&b| b == 0)
                .ok_or(GzipError::Truncated { context })?;
            pos += terminator + 1;
        }
    }
    let _ = flags & FTEXT; // Advisory only.
    if flags & FHCRC != 0 {
        if member.len() < pos + 2 {
            return Err(GzipError::Truncated { context: "header CRC" });
        }
        let expected = u16::from_le_bytes([member[pos], member[pos + 1]]);
        let found = (crc32(&member[..pos]) & 0xffff) as u16;
        if expected != found {
            return Err(GzipError::HeaderCrcMismatch { expected, found });
        }
        pos += 2;
    }

    let (payload, consumed) = inflate(&member[pos..])?;
    pos += consumed;
    if member.len() < pos + 8 {
        return Err(GzipError::Truncated { context: "member trailer" });
    }
    let expected_crc =
        u32::from_le_bytes([member[pos], member[pos + 1], member[pos + 2], member[pos + 3]]);
    let expected_size =
        u32::from_le_bytes([member[pos + 4], member[pos + 5], member[pos + 6], member[pos + 7]]);
    let found_crc = crc32(&payload);
    if expected_crc != found_crc {
        return Err(GzipError::ChecksumMismatch { expected: expected_crc, found: found_crc });
    }
    let found_size = (payload.len() as u64 & 0xffff_ffff) as u32;
    if expected_size != found_size {
        return Err(GzipError::SizeMismatch { expected: expected_size, found: found_size });
    }
    out.extend_from_slice(&payload);
    Ok(start + pos + 8)
}

/// Decompresses a gzip stream (one member, or several concatenated — the
/// framing `gzip` itself produces for appended archives).
///
/// # Errors
///
/// Every malformation is a typed [`GzipError`]: wrong magic, truncations at
/// any byte, corrupt deflate data, and trailer CRC32/ISIZE mismatches.
pub fn gunzip(bytes: &[u8]) -> Result<Vec<u8>, GzipError> {
    let mut out = Vec::new();
    let mut pos = gunzip_member(bytes, 0, &mut out)?;
    while pos < bytes.len() {
        if bytes.len() - pos >= 2 && is_gzip(&bytes[pos..]) {
            pos = gunzip_member(bytes, pos, &mut out)?;
        } else {
            return Err(GzipError::TrailingBytes { offset: pos });
        }
    }
    Ok(out)
}

/// Wraps `payload` as a single-member gzip stream of *stored* (uncompressed)
/// deflate blocks: valid input for any gzip reader, no compression.
pub fn gzip_compress_stored(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + payload.len() / 0xffff * 5 + 24);
    out.extend_from_slice(&MAGIC);
    out.push(8); // CM: deflate
    out.push(0); // FLG: nothing optional
    out.extend_from_slice(&[0, 0, 0, 0]); // MTIME: unknown
    out.push(0); // XFL
    out.push(255); // OS: unknown

    let mut chunks = payload.chunks(0xffff).peekable();
    if chunks.peek().is_none() {
        // Empty payload still needs one (final, empty) stored block.
        out.extend_from_slice(&[0x01, 0x00, 0x00, 0xff, 0xff]);
    }
    while let Some(chunk) = chunks.next() {
        let last = chunks.peek().is_none();
        // Stored block: 3 header bits (BFINAL, BTYPE=00) then byte-aligned
        // LEN/NLEN — the header byte is 0x01 or 0x00 exactly.
        out.push(u8::from(last));
        let len = chunk.len() as u16;
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&(!len).to_le_bytes());
        out.extend_from_slice(chunk);
    }

    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(&((payload.len() as u64 & 0xffff_ffff) as u32).to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A literal-only fixed-Huffman compressor: enough of a real deflate
    /// writer to prove the Huffman decode path against an independent
    /// encoding (stored blocks never touch it).
    fn fixed_huffman_literals(payload: &[u8]) -> Vec<u8> {
        struct BitWriter {
            out: Vec<u8>,
            acc: u32,
            bits: u32,
        }
        impl BitWriter {
            // Deflate packs Huffman codes MSB-first into an LSB-first stream.
            fn put_code(&mut self, code: u32, len: u32) {
                for i in (0..len).rev() {
                    self.put_bit((code >> i) & 1);
                }
            }
            fn put_bit(&mut self, bit: u32) {
                self.acc |= bit << self.bits;
                self.bits += 1;
                if self.bits == 8 {
                    self.out.push(self.acc as u8);
                    self.acc = 0;
                    self.bits = 0;
                }
            }
            fn finish(mut self) -> Vec<u8> {
                if self.bits > 0 {
                    self.out.push(self.acc as u8);
                }
                self.out
            }
        }
        let mut writer = BitWriter { out: Vec::new(), acc: 0, bits: 0 };
        writer.put_bit(1); // BFINAL
        writer.put_bit(1); // BTYPE = 01 (fixed), LSB first
        writer.put_bit(0);
        for &byte in payload {
            if byte <= 143 {
                writer.put_code(0x30 + u32::from(byte), 8);
            } else {
                writer.put_code(0x190 + u32::from(byte) - 144, 9);
            }
        }
        writer.put_code(0, 7); // End of block (symbol 256).
        let deflate = writer.finish();

        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&[8, 0, 0, 0, 0, 0, 0, 255]);
        out.extend_from_slice(&deflate);
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out
    }

    #[test]
    fn stored_round_trips_arbitrary_bytes() {
        let mut rng = StdRng::seed_from_u64(7);
        for len in [0usize, 1, 2, 100, 0xffff, 0x10000, 0x2345] {
            let payload: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect();
            let archive = gzip_compress_stored(&payload);
            assert!(is_gzip(&archive));
            assert_eq!(gunzip(&archive).unwrap(), payload, "len {len}");
        }
    }

    #[test]
    fn fixed_huffman_streams_decode() {
        for payload in
            [&b""[..], b"hello, deflate", b"aaaaaaaaaaaaaaaaaaaaaaaa", &[0u8, 200, 255, 144, 143]]
        {
            let archive = fixed_huffman_literals(payload);
            assert_eq!(gunzip(&archive).unwrap(), payload);
        }
    }

    #[test]
    fn concatenated_members_decode_in_order() {
        let mut archive = gzip_compress_stored(b"first ");
        archive.extend_from_slice(&gzip_compress_stored(b"second"));
        assert_eq!(gunzip(&archive).unwrap(), b"first second");
    }

    #[test]
    fn bad_magic_and_method_are_typed() {
        assert_eq!(gunzip(b"plain text"), Err(GzipError::BadMagic { found: [b'p', b'l'] }));
        assert_eq!(gunzip(&[0x1f]), Err(GzipError::BadMagic { found: [0x1f, 0] }));
        let mut archive = gzip_compress_stored(b"x");
        archive[2] = 7;
        assert_eq!(gunzip(&archive), Err(GzipError::UnsupportedMethod { method: 7 }));
        let mut archive = gzip_compress_stored(b"x");
        archive[3] = 0xe0;
        assert_eq!(gunzip(&archive), Err(GzipError::ReservedFlags { flags: 0xe0 }));
    }

    #[test]
    fn every_truncation_is_rejected_without_panicking() {
        let archive = gzip_compress_stored(b"the quick brown fox");
        for cut in 0..archive.len() {
            let error = gunzip(&archive[..cut]).unwrap_err();
            assert!(
                matches!(error, GzipError::Truncated { .. } | GzipError::BadMagic { .. }),
                "cut {cut}: {error:?}"
            );
        }
    }

    #[test]
    fn corrupt_trailers_are_rejected() {
        let good = gzip_compress_stored(b"payload bytes");
        // Flip one bit in the CRC32.
        let mut bad_crc = good.clone();
        let crc_at = good.len() - 8;
        bad_crc[crc_at] ^= 1;
        assert!(matches!(gunzip(&bad_crc), Err(GzipError::ChecksumMismatch { .. })));
        // Flip one bit in the ISIZE.
        let mut bad_size = good.clone();
        let size_at = good.len() - 4;
        bad_size[size_at] ^= 1;
        assert!(matches!(gunzip(&bad_size), Err(GzipError::SizeMismatch { .. })));
        // Corrupt the payload itself: the CRC catches it.
        let mut bad_payload = good.clone();
        bad_payload[15] ^= 0xff;
        assert!(matches!(
            gunzip(&bad_payload),
            Err(GzipError::ChecksumMismatch { .. } | GzipError::StoredLengthMismatch { .. })
        ));
        // Trailing garbage after the member.
        let mut trailing = good;
        trailing.extend_from_slice(b"JUNK");
        assert!(matches!(gunzip(&trailing), Err(GzipError::TrailingBytes { .. })));
    }

    #[test]
    fn stored_length_check_is_enforced() {
        let mut archive = gzip_compress_stored(b"abc");
        // Corrupt NLEN (bytes 13–14 after the 10-byte header + block byte +
        // LEN).
        archive[13] ^= 0xff;
        assert!(matches!(gunzip(&archive), Err(GzipError::StoredLengthMismatch { .. })));
    }

    #[test]
    fn reserved_block_type_is_rejected() {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&[8, 0, 0, 0, 0, 0, 0, 255]);
        out.push(0x07); // BFINAL=1, BTYPE=11 (reserved)
        out.extend_from_slice(&[0; 8]);
        assert!(matches!(gunzip(&out), Err(GzipError::BadBlockType { .. })));
    }

    #[test]
    fn header_options_are_parsed_and_checked() {
        // Hand-build a header with FNAME + FHCRC.
        let payload = b"named";
        let mut header = Vec::new();
        header.extend_from_slice(&MAGIC);
        header.push(8);
        header.push(FNAME | FHCRC);
        header.extend_from_slice(&[0, 0, 0, 0, 0, 255]);
        header.extend_from_slice(b"file.log\0");
        let hcrc = (crc32(&header) & 0xffff) as u16;
        header.extend_from_slice(&hcrc.to_le_bytes());
        // Stored block + trailer.
        let mut archive = header.clone();
        archive.push(0x01);
        archive.extend_from_slice(&(payload.len() as u16).to_le_bytes());
        archive.extend_from_slice(&(!(payload.len() as u16)).to_le_bytes());
        archive.extend_from_slice(payload);
        archive.extend_from_slice(&crc32(payload).to_le_bytes());
        archive.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        assert_eq!(gunzip(&archive).unwrap(), payload);

        // A wrong header CRC is caught.
        let mut bad = archive;
        let hcrc_at = header.len() - 2;
        bad[hcrc_at] ^= 1;
        assert!(matches!(gunzip(&bad), Err(GzipError::HeaderCrcMismatch { .. })));
    }

    #[test]
    fn random_corruption_never_panics() {
        let mut rng = StdRng::seed_from_u64(99);
        let payload: Vec<u8> = (0..2000).map(|_| rng.gen_range(0..=255u32) as u8).collect();
        let archive = gzip_compress_stored(&payload);
        for _ in 0..500 {
            let mut mutated = archive.clone();
            let flips = rng.gen_range(1..4usize);
            for _ in 0..flips {
                let at = rng.gen_range(0..mutated.len());
                let bit = rng.gen_range(0..8u32);
                mutated[at] ^= 1 << bit;
            }
            // Either it still decodes to something or it fails typed; what
            // it must never do is panic.
            let _ = gunzip(&mutated);
        }
    }
}
