//! The dead-letter file: quarantined records as NDJSON, one per line.
//!
//! A live pipeline must not die on a poison record, but it must not
//! silently drop one either. Every line the ingest refuses is appended
//! here with full provenance — the typed error's stable kind and rendered
//! message, the byte span the record occupied in the logical stream, the
//! 1-based line number where known, and a bounded copy of the raw text —
//! so an operator (or the chaos harness) can account for every record
//! that failed to become an event.
//!
//! The format is self-describing NDJSON readable by this crate's own JSON
//! parser, so `privacy-monitor --input dead-letter.ndjson` style tooling
//! and the differential tests can round-trip it without another codec.

use crate::error::IngestError;
use crate::json;
use crate::record::RawValue;
use crate::stream::QuarantinedLine;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// One quarantined record, as serialised to the dead-letter file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadLetterRecord {
    /// Byte offset of the record's first byte in the logical stream.
    pub offset: u64,
    /// One past the record's last byte (terminator included when seen).
    pub end_offset: u64,
    /// 1-based line number, where the error concerns one line.
    pub line: Option<u64>,
    /// Stable machine-readable error kind (`"bad_value"`, `"syntax"`, …).
    pub kind: String,
    /// The error rendered for humans.
    pub message: String,
    /// The raw line, lossily decoded and bounded.
    pub raw: String,
}

/// The stable kind tag for an ingest error.
#[must_use]
pub fn error_kind(error: &IngestError) -> &'static str {
    match error {
        IngestError::Io { .. } => "io",
        IngestError::Gzip(_) => "gzip",
        IngestError::UnknownFormat { .. } => "unknown_format",
        IngestError::InvalidUtf8 { .. } => "invalid_utf8",
        IngestError::LineTooLong { .. } => "line_too_long",
        IngestError::Syntax { .. } => "syntax",
        IngestError::DuplicateKey { .. } => "duplicate_key",
        IngestError::MissingColumn { .. } => "missing_column",
        IngestError::BadValue { .. } => "bad_value",
        IngestError::NonMonotoneSequence { .. } => "non_monotone_sequence",
    }
}

impl DeadLetterRecord {
    /// Builds the record for one quarantined line.
    #[must_use]
    pub fn from_quarantined(line: &QuarantinedLine) -> Self {
        DeadLetterRecord {
            offset: line.offset,
            end_offset: line.end_offset,
            line: line.error.line(),
            kind: error_kind(&line.error).to_owned(),
            message: line.error.to_string(),
            raw: line.raw.clone(),
        }
    }

    /// Builds a stream-level record (no single line to blame), e.g. a
    /// corrupt gzip payload poisoning the whole stream.
    #[must_use]
    pub fn stream_level(error: &IngestError, offset: u64, end_offset: u64) -> Self {
        DeadLetterRecord {
            offset,
            end_offset,
            line: error.line(),
            kind: error_kind(error).to_owned(),
            message: error.to_string(),
            raw: String::new(),
        }
    }

    /// Renders the record as one NDJSON line (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.raw.len() + self.message.len());
        out.push_str("{\"offset\":");
        out.push_str(&self.offset.to_string());
        out.push_str(",\"end_offset\":");
        out.push_str(&self.end_offset.to_string());
        if let Some(line) = self.line {
            out.push_str(",\"line\":");
            out.push_str(&line.to_string());
        }
        out.push_str(",\"kind\":");
        escape_into(&self.kind, &mut out);
        out.push_str(",\"message\":");
        escape_into(&self.message, &mut out);
        out.push_str(",\"raw\":");
        escape_into(&self.raw, &mut out);
        out.push('}');
        out
    }

    /// Parses one dead-letter NDJSON line (as written by [`to_json`]).
    ///
    /// [`to_json`]: DeadLetterRecord::to_json
    ///
    /// # Errors
    ///
    /// [`IngestError`] when the line is not a well-formed record.
    pub fn parse(line_no: u64, text: &str) -> Result<Self, IngestError> {
        let record = json::parse_line(line_no, text)?;
        let number = |key: &str| -> Result<Option<u64>, IngestError> {
            match record.get(key) {
                None => Ok(None),
                Some(value) => value
                    .as_text()
                    .and_then(|text| text.parse().ok())
                    .map(Some)
                    .ok_or_else(|| bad_field(line_no, key)),
            }
        };
        let text_field = |key: &str| -> Result<String, IngestError> {
            record
                .get(key)
                .and_then(RawValue::as_text)
                .map(str::to_owned)
                .ok_or_else(|| bad_field(line_no, key))
        };
        Ok(DeadLetterRecord {
            offset: number("offset")?.ok_or_else(|| bad_field(line_no, "offset"))?,
            end_offset: number("end_offset")?.ok_or_else(|| bad_field(line_no, "end_offset"))?,
            line: number("line")?,
            kind: text_field("kind")?,
            message: text_field("message")?,
            raw: text_field("raw")?,
        })
    }
}

fn bad_field(line: u64, key: &str) -> IngestError {
    IngestError::Syntax {
        line,
        column: 1,
        format: crate::reader::Format::Json,
        message: format!("dead-letter record: missing or malformed `{key}`"),
    }
}

/// Escapes `text` as a JSON string (with quotes) appended to `out`.
fn escape_into(text: &str, out: &mut String) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            ch if (ch as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", ch as u32));
            }
            ch => out.push(ch),
        }
    }
    out.push('"');
}

/// Appends dead-letter records to an NDJSON file, flushing each one (a
/// crash must not lose quarantine evidence for records already refused).
#[derive(Debug)]
pub struct DeadLetterWriter {
    path: PathBuf,
    out: BufWriter<File>,
    written: u64,
}

impl DeadLetterWriter {
    /// Opens (appending) or creates the file at `path`.
    ///
    /// # Errors
    ///
    /// [`IngestError::Io`] when the file cannot be opened.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, IngestError> {
        let path = path.into();
        let file =
            OpenOptions::new().create(true).append(true).open(&path).map_err(|error| {
                IngestError::Io { message: format!("{}: {error}", path.display()) }
            })?;
        Ok(DeadLetterWriter { path, out: BufWriter::new(file), written: 0 })
    }

    /// The file being appended to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended by this writer.
    #[must_use]
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Appends one record and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// [`IngestError::Io`] when the append fails.
    pub fn append(&mut self, record: &DeadLetterRecord) -> Result<(), IngestError> {
        let io = |error: std::io::Error| IngestError::Io {
            message: format!("{}: {error}", self.path.display()),
        };
        self.out.write_all(record.to_json().as_bytes()).map_err(io)?;
        self.out.write_all(b"\n").map_err(io)?;
        self.out.flush().map_err(io)?;
        self.written += 1;
        Ok(())
    }
}

/// Reads every record back from a dead-letter file.
///
/// # Errors
///
/// [`IngestError`] on unreadable or malformed content.
pub fn read_dead_letters(path: &Path) -> Result<Vec<DeadLetterRecord>, IngestError> {
    let text = std::fs::read_to_string(path)
        .map_err(|error| IngestError::Io { message: format!("{}: {error}", path.display()) })?;
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(index, line)| DeadLetterRecord::parse(index as u64 + 1, line))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DeadLetterRecord {
        DeadLetterRecord {
            offset: 37,
            end_offset: 80,
            line: Some(2),
            kind: "bad_value".to_owned(),
            message: "line 2: bad action value `frobnicate` in `action`: unknown verb".to_owned(),
            raw: "user=u action=frobnicate \"quoted\"\ttab".to_owned(),
        }
    }

    #[test]
    fn records_round_trip_through_ndjson() {
        let record = sample();
        let parsed = DeadLetterRecord::parse(1, &record.to_json()).expect("parse");
        assert_eq!(parsed, record);
    }

    #[test]
    fn stream_level_records_omit_the_line() {
        let error = IngestError::Io { message: "pipe closed".to_owned() };
        let record = DeadLetterRecord::stream_level(&error, 0, 512);
        assert_eq!(record.line, None);
        assert_eq!(record.kind, "io");
        let parsed = DeadLetterRecord::parse(1, &record.to_json()).expect("parse");
        assert_eq!(parsed, record);
    }

    #[test]
    fn writer_appends_and_reads_back() {
        let dir = std::env::temp_dir().join(format!("privacy-deadletter-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dead.ndjson");
        let mut writer = DeadLetterWriter::open(&path).expect("open");
        writer.append(&sample()).expect("append");
        writer.append(&sample()).expect("append");
        assert_eq!(writer.written(), 2);
        let read = read_dead_letters(&path).expect("read");
        assert_eq!(read.len(), 2);
        assert_eq!(read[0], sample());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn control_characters_escape_cleanly() {
        let mut out = String::new();
        escape_into("a\u{1}b", &mut out);
        assert_eq!(out, "\"a\\u0001b\"");
    }
}
