//! A logfmt (`key=value key2="quoted value"`) line parser.
//!
//! The dialect follows the de-facto standard (Heroku/Go `logfmt`): pairs are
//! separated by runs of spaces; a value is either a bare token (no spaces or
//! quotes) or a double-quoted string with `\"`, `\\`, `\n`, `\r`, `\t`
//! escapes; a bare key with no `=` is boolean `true`.

use crate::error::IngestError;
use crate::reader::Format;
use crate::record::{RawRecord, RawValue};

/// Parses one logfmt line into a record.
pub(crate) fn parse_line(line_no: u64, line: &str) -> Result<RawRecord, IngestError> {
    let mut parser = Parser { line_no, bytes: line.as_bytes(), text: line, pos: 0 };
    let mut record = RawRecord::new(line_no);
    loop {
        parser.skip_spaces();
        if parser.peek().is_none() {
            return Ok(record);
        }
        let key_at = parser.pos;
        let key = parser.key()?;
        if record.contains(&key) {
            return Err(IngestError::DuplicateKey {
                line: line_no,
                column: key_at as u32 + 1,
                key,
            });
        }
        let value = if parser.peek() == Some(b'=') {
            parser.pos += 1;
            parser.value()?
        } else {
            // A bare key is a boolean flag, logfmt's `verbose`-style idiom.
            RawValue::Bool(true)
        };
        record.push(key, value);
    }
}

struct Parser<'a> {
    line_no: u64,
    bytes: &'a [u8],
    text: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> IngestError {
        IngestError::Syntax {
            line: self.line_no,
            column: self.pos as u32 + 1,
            format: Format::Logfmt,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_spaces(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn key(&mut self) -> Result<String, IngestError> {
        let start = self.pos;
        while let Some(byte) = self.peek() {
            if matches!(byte, b' ' | b'\t' | b'=') {
                break;
            }
            if byte == b'"' {
                return Err(self.error("`\"` is not allowed in a key"));
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected a key"));
        }
        Ok(self.text[start..self.pos].to_owned())
    }

    fn value(&mut self) -> Result<RawValue, IngestError> {
        if self.peek() == Some(b'"') {
            self.quoted()
        } else {
            let start = self.pos;
            while let Some(byte) = self.peek() {
                if matches!(byte, b' ' | b'\t') {
                    break;
                }
                if byte == b'"' {
                    return Err(self.error("`\"` inside a bare value (quote the whole value)"));
                }
                self.pos += 1;
            }
            // `key=` (empty bare value) is an empty string, as Go logfmt
            // reads it.
            Ok(RawValue::Str(self.text[start..self.pos].to_owned()))
        }
    }

    fn quoted(&mut self) -> Result<RawValue, IngestError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated quoted value")),
                Some(b'"') => {
                    self.pos += 1;
                    // The quoted value must end the token.
                    if let Some(byte) = self.peek() {
                        if !matches!(byte, b' ' | b'\t') {
                            return Err(self.error("content after the closing quote"));
                        }
                    }
                    return Ok(RawValue::Str(out));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        _ => return Err(self.error("invalid escape in quoted value")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let ch = self.text[self.pos..]
                        .chars()
                        .next()
                        .ok_or_else(|| self.error("invalid UTF-8 in quoted value"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Result<RawRecord, IngestError> {
        parse_line(1, line)
    }

    #[test]
    fn bare_quoted_and_flag_values_parse() {
        let record =
            parse(r#"seq=9 user=u-3 msg="hello world" note="a=\"b\" \\ end" empty= verbose"#)
                .unwrap();
        assert_eq!(record.get("seq"), Some(&RawValue::Str("9".into())));
        assert_eq!(record.get("msg"), Some(&RawValue::Str("hello world".into())));
        assert_eq!(record.get("note"), Some(&RawValue::Str("a=\"b\" \\ end".into())));
        assert_eq!(record.get("empty"), Some(&RawValue::Str(String::new())));
        assert_eq!(record.get("verbose"), Some(&RawValue::Bool(true)));
    }

    #[test]
    fn repeated_spaces_and_blank_lines_are_fine() {
        let record = parse("  a=1   b=2  ").unwrap();
        assert_eq!(record.len(), 2);
        assert!(parse("").unwrap().is_empty());
    }

    #[test]
    fn duplicates_and_malformations_are_typed() {
        assert!(matches!(parse("a=1 a=2"), Err(IngestError::DuplicateKey { column: 5, .. })));
        assert!(matches!(parse(r#"a="unterminated"#), Err(IngestError::Syntax { .. })));
        assert!(matches!(parse(r#"a="x"y"#), Err(IngestError::Syntax { .. })));
        assert!(matches!(parse(r#"a=b"c"#), Err(IngestError::Syntax { .. })));
        assert!(matches!(parse(r#"a="\q""#), Err(IngestError::Syntax { .. })));
        assert!(matches!(parse(r#"="v""#), Err(IngestError::Syntax { .. })));
    }

    #[test]
    fn multibyte_values_round_trip() {
        let record = parse(r#"city="Zürich 東京""#).unwrap();
        assert_eq!(record.get("city"), Some(&RawValue::Str("Zürich 東京".into())));
    }
}
