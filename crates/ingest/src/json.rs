//! A hand-written NDJSON (one JSON object per line) parser.
//!
//! The build environment has no `serde_json`, and a log-ingestion front end
//! needs byte-accurate error provenance anyway, so this is a small
//! recursive-descent parser specialised to the shapes log lines take: a
//! top-level object whose values are strings, numbers, booleans, nulls, or
//! arrays of strings. Anything deeper parses (it must, to find the end of
//! the value) but surfaces as [`RawValue::Complex`] so the mapping layer can
//! report a typed error instead of silently stringifying structure.

use crate::error::{snippet, IngestError};
use crate::reader::Format;
use crate::record::{RawRecord, RawValue};

/// Parses one NDJSON object line into a record.
pub(crate) fn parse_line(line_no: u64, line: &str) -> Result<RawRecord, IngestError> {
    let mut parser = Parser { line_no, bytes: line.as_bytes(), text: line, pos: 0 };
    parser.skip_ws();
    let record = parser.object()?;
    parser.skip_ws();
    if parser.pos < parser.bytes.len() {
        return Err(parser.error("trailing content after the object"));
    }
    Ok(record)
}

struct Parser<'a> {
    line_no: u64,
    bytes: &'a [u8],
    text: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> IngestError {
        IngestError::Syntax {
            line: self.line_no,
            column: self.pos as u32 + 1,
            format: Format::Json,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, what: &str) -> Result<(), IngestError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {what}")))
        }
    }

    fn object(&mut self) -> Result<RawRecord, IngestError> {
        self.expect(b'{', "`{` opening the record object")?;
        let mut record = RawRecord::new(self.line_no);
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(record);
        }
        loop {
            self.skip_ws();
            let key_at = self.pos;
            let key = self.string()?;
            if record.contains(&key) {
                return Err(IngestError::DuplicateKey {
                    line: self.line_no,
                    column: key_at as u32 + 1,
                    key,
                });
            }
            self.skip_ws();
            self.expect(b':', "`:` after the key")?;
            self.skip_ws();
            let value = self.value()?;
            record.push(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(record);
                }
                _ => return Err(self.error("expected `,` or `}` after a value")),
            }
        }
    }

    fn value(&mut self) -> Result<RawValue, IngestError> {
        match self.peek() {
            Some(b'"') => Ok(RawValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => {
                // Parse (to find the end) but surface as structure.
                self.object()?;
                Ok(RawValue::Complex)
            }
            Some(b't') => self.literal("true", RawValue::Bool(true)),
            Some(b'f') => self.literal("false", RawValue::Bool(false)),
            Some(b'n') => self.literal("null", RawValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &'static str, value: RawValue) -> Result<RawValue, IngestError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<RawValue, IngestError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_at = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_at {
            return Err(self.error("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_at = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_at {
                return Err(self.error("expected digits after `.`"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_at = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_at {
                return Err(self.error("expected digits in the exponent"));
            }
        }
        Ok(RawValue::Number(self.text[start..self.pos].to_owned()))
    }

    fn array(&mut self) -> Result<RawValue, IngestError> {
        self.expect(b'[', "`[`")?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(RawValue::List(Vec::new()));
        }
        let mut items = Vec::new();
        let mut all_strings = true;
        loop {
            self.skip_ws();
            match self.value()? {
                RawValue::Str(item) if all_strings => items.push(item),
                _ => all_strings = false,
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(if all_strings { RawValue::List(items) } else { RawValue::Complex });
                }
                _ => return Err(self.error("expected `,` or `]` in the array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, IngestError> {
        self.expect(b'"', "`\"` opening a string")?;
        let mut out = String::new();
        loop {
            let at = self.pos;
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let ch = if (0xd800..0xdc00).contains(&unit) {
                                // High surrogate: require the paired escape.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                } else {
                                    self.pos = at;
                                    return Err(self.error("unpaired surrogate escape"));
                                }
                                if self.peek() == Some(b'u') {
                                    self.pos += 1;
                                } else {
                                    self.pos = at;
                                    return Err(self.error("unpaired surrogate escape"));
                                }
                                let low = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    self.pos = at;
                                    return Err(self.error("unpaired surrogate escape"));
                                }
                                let scalar = 0x10000
                                    + ((u32::from(unit) - 0xd800) << 10)
                                    + (u32::from(low) - 0xdc00);
                                char::from_u32(scalar)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else if (0xdc00..0xe000).contains(&unit) {
                                self.pos = at;
                                return Err(self.error("unpaired surrogate escape"));
                            } else {
                                char::from_u32(u32::from(unit))
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(byte) if byte < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one whole UTF-8 character (input is validated
                    // UTF-8 before parsing, so char boundaries are sound).
                    let ch = self.text[self.pos..]
                        .chars()
                        .next()
                        .ok_or_else(|| self.error("invalid UTF-8 in string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, IngestError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = &self.text[self.pos..end];
        let unit = u16::from_str_radix(hex, 16)
            .map_err(|_| self.error(format!("invalid \\u escape `{}`", snippet(hex))))?;
        self.pos = end;
        Ok(unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Result<RawRecord, IngestError> {
        parse_line(1, line)
    }

    #[test]
    fn a_typical_event_line_parses() {
        let record = parse(
            r#"{"seq": 3, "user": "u-1", "fields": ["name", "dob"], "permitted": true, "store": null}"#,
        )
        .unwrap();
        assert_eq!(record.get("seq"), Some(&RawValue::Number("3".into())));
        assert_eq!(record.get("user"), Some(&RawValue::Str("u-1".into())));
        assert_eq!(record.get("fields"), Some(&RawValue::List(vec!["name".into(), "dob".into()])));
        assert_eq!(record.get("permitted"), Some(&RawValue::Bool(true)));
        assert_eq!(record.get("store"), Some(&RawValue::Null));
    }

    #[test]
    fn escapes_decode_including_surrogate_pairs() {
        let record = parse(r#"{"k": "a\"b\\c\ndé😀"}"#).unwrap();
        assert_eq!(record.get("k"), Some(&RawValue::Str("a\"b\\c\ndé😀".into())));
    }

    #[test]
    fn nested_structure_is_complex_not_lossy() {
        let record = parse(r#"{"meta": {"a": 1}, "mixed": ["s", 2]}"#).unwrap();
        assert_eq!(record.get("meta"), Some(&RawValue::Complex));
        assert_eq!(record.get("mixed"), Some(&RawValue::Complex));
    }

    #[test]
    fn duplicate_keys_are_typed_errors() {
        let error = parse(r#"{"a": 1, "a": 2}"#).unwrap_err();
        match error {
            IngestError::DuplicateKey { line, column, key } => {
                assert_eq!((line, key.as_str()), (1, "a"));
                assert_eq!(column, 10);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn syntax_errors_carry_columns() {
        for (line, bad_col) in [
            (r#"{"a": }"#, 7),
            (r#"{"a" 1}"#, 6),
            (r#"{"a": 1"#, 8),
            (r#"{"a": 1} extra"#, 10),
            (r#"{"a": "unterminated"#, 20),
            (r#"{"a": truth}"#, 7),
            (r#"{"a": 1.}"#, 9),
            (r#"{"a": "\q"}"#, 9),
            (r#"{"a": "\ud800x"}"#, 8),
        ] {
            let error = parse(line).unwrap_err();
            match error {
                IngestError::Syntax { column, .. } => {
                    assert_eq!(column, bad_col, "line {line:?}: {error}")
                }
                other => panic!("line {line:?}: unexpected {other:?}"),
            }
        }
    }
}
