//! The parsed-but-unresolved shape of one log line.
//!
//! Every format parser produces the same thing: a [`RawRecord`] — an ordered
//! list of `(key, value)` pairs with the line's provenance attached. The
//! [`crate::resolve`] layer then maps records onto
//! [`privacy_runtime::Event`]s through a [`crate::FieldMapping`].

use std::fmt;

/// One parsed value of a record column.
#[derive(Debug, Clone, PartialEq)]
pub enum RawValue {
    /// A textual value (logfmt and CSV cells, JSON strings).
    Str(String),
    /// A list of strings (a JSON array of strings).
    List(Vec<String>),
    /// A JSON boolean.
    Bool(bool),
    /// A JSON number, kept as its lexeme so integers survive exactly.
    Number(String),
    /// A JSON `null`.
    Null,
    /// A structured JSON value (nested object, mixed array) the mapping
    /// layer cannot consume; kept so mapping one reports a typed error.
    Complex,
}

impl RawValue {
    /// The value as text, when it has a canonical textual form.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            RawValue::Str(text) | RawValue::Number(text) => Some(text),
            _ => None,
        }
    }

    /// A short description of the value's shape, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            RawValue::Str(_) => "string",
            RawValue::List(_) => "list",
            RawValue::Bool(_) => "boolean",
            RawValue::Number(_) => "number",
            RawValue::Null => "null",
            RawValue::Complex => "structured value",
        }
    }
}

impl fmt::Display for RawValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RawValue::Str(text) | RawValue::Number(text) => f.write_str(text),
            RawValue::List(items) => write!(f, "[{}]", items.join(", ")),
            RawValue::Bool(value) => write!(f, "{value}"),
            RawValue::Null => f.write_str("null"),
            RawValue::Complex => f.write_str("<structured>"),
        }
    }
}

/// One parsed log record: ordered `(key, value)` pairs plus provenance.
///
/// Parsers guarantee keys are unique (a duplicate is a typed
/// [`crate::IngestError::DuplicateKey`] at parse time), so lookup by key is
/// unambiguous.
#[derive(Debug, Clone, PartialEq)]
pub struct RawRecord {
    line: u64,
    pairs: Vec<(String, RawValue)>,
}

impl RawRecord {
    /// Creates a record anchored at 1-based `line`.
    pub fn new(line: u64) -> Self {
        RawRecord { line, pairs: Vec::new() }
    }

    /// The 1-based line the record was parsed from.
    pub fn line(&self) -> u64 {
        self.line
    }

    /// Appends a pair. The caller (a format parser) has already rejected
    /// duplicates.
    pub fn push(&mut self, key: String, value: RawValue) {
        self.pairs.push((key, value));
    }

    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&RawValue> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether the record has a key.
    pub fn contains(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// The pairs in parse order.
    pub fn pairs(&self) -> &[(String, RawValue)] {
        &self.pairs
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Returns `true` when the record has no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_preserve_order_and_look_up_by_key() {
        let mut record = RawRecord::new(3);
        record.push("user".to_owned(), RawValue::Str("alice".to_owned()));
        record.push("seq".to_owned(), RawValue::Number("7".to_owned()));
        assert_eq!(record.line(), 3);
        assert_eq!(record.len(), 2);
        assert!(!record.is_empty());
        assert!(record.contains("user"));
        assert_eq!(record.get("seq").and_then(RawValue::as_text), Some("7"));
        assert_eq!(record.get("missing"), None);
        assert_eq!(record.pairs()[0].0, "user");
    }

    #[test]
    fn values_describe_their_shapes() {
        assert_eq!(RawValue::Str("x".into()).type_name(), "string");
        assert_eq!(RawValue::Null.type_name(), "null");
        assert_eq!(RawValue::Complex.to_string(), "<structured>");
        assert_eq!(RawValue::List(vec!["a".into(), "b".into()]).to_string(), "[a, b]");
        assert_eq!(RawValue::Bool(true).to_string(), "true");
        assert_eq!(RawValue::Bool(false).as_text(), None);
    }
}
