//! The incremental line-at-a-time ingest state machine: [`LineIngestor`].
//!
//! [`ingest_bytes`](crate::ingest_bytes) and the live tail
//! ([`crate::live`]) must agree *exactly* on how bytes become events —
//! format detection, CSV quote-parity joining, error policy, sequence
//! assignment — or a live run could diverge from an offline replay of the
//! same bytes. Both therefore drive this one state machine: the offline
//! reader feeds it every split line of a whole buffer; the live pipeline
//! feeds it lines as the tail assembles them, carrying byte offsets so a
//! quarantined record can name exactly where in the stream it sat.

use crate::csv::{quote_count, CsvParser};
use crate::error::{ErrorPolicy, IngestError};
use crate::mapping::FieldMapping;
use crate::reader::Format;
use crate::resolve::Resolver;
use crate::{json, logfmt};
use privacy_runtime::Event;

/// How many raw bytes of a quarantined line are preserved verbatim in its
/// dead-letter record (a hostile megabyte line must not balloon the file).
pub const QUARANTINE_RAW_LIMIT: usize = 512;

/// One line the ingestor refused, with full provenance: the typed error,
/// the byte span the record occupied in the (decompressed) stream, and a
/// bounded copy of the raw bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedLine {
    /// Why the line was refused.
    pub error: IngestError,
    /// Byte offset of the record's first byte in the stream.
    pub offset: u64,
    /// Byte offset one past the record's last byte (its terminator
    /// included, when one was seen).
    pub end_offset: u64,
    /// The raw line, lossily decoded and truncated to
    /// [`QUARANTINE_RAW_LIMIT`] bytes.
    pub raw: String,
}

/// What one pushed line produced.
#[derive(Debug, Clone, PartialEq)]
pub enum LinePush {
    /// The line (or the CSV record it completed) resolved to an event.
    Event(Event),
    /// Nothing yet: a blank line, the CSV header, or a multi-line CSV
    /// record still accumulating.
    Pending,
    /// The line was refused and, under [`ErrorPolicy::Skip`], quarantined.
    Quarantined(QuarantinedLine),
}

/// The streaming bytes → events state machine. See the module docs.
#[derive(Debug)]
pub struct LineIngestor {
    resolver: Resolver,
    policy: ErrorPolicy,
    max_line_bytes: usize,
    /// The declared format, if any (pins detection).
    declared: Option<Format>,
    /// The format in effect once declared or detected.
    format: Option<Format>,
    csv: CsvParser,
    /// A CSV record whose quoted cell spans physical lines, still
    /// accumulating: (starting line number, starting byte offset, text).
    csv_pending: Option<(u64, u64, String)>,
    /// Physical lines seen (including blanks and the CSV header).
    lines: u64,
    /// Events resolved.
    events: u64,
    /// Lines quarantined/skipped.
    skipped: u64,
    /// Byte offset up to which every record is fully consumed (resolved or
    /// quarantined) — the safe resume point. Lags behind the feed position
    /// while a multi-line CSV record is pending.
    consumed_through: u64,
}

impl LineIngestor {
    /// A fresh ingestor over `mapping`. `format: None` auto-detects from
    /// the first non-blank line.
    #[must_use]
    pub fn new(
        mapping: FieldMapping,
        format: Option<Format>,
        policy: ErrorPolicy,
        max_line_bytes: usize,
    ) -> Self {
        LineIngestor {
            resolver: Resolver::new(mapping),
            policy,
            max_line_bytes,
            declared: format,
            format,
            csv: CsvParser::new(),
            csv_pending: None,
            lines: 0,
            events: 0,
            skipped: 0,
            consumed_through: 0,
        }
    }

    /// Restores the resume-relevant state written by a pipeline checkpoint:
    /// the pinned format (so detection cannot flip mid-stream on resume),
    /// the cumulative line/event/skip counters, and the sequence counters.
    pub fn restore(
        &mut self,
        format: Option<Format>,
        lines: u64,
        events: u64,
        skipped: u64,
        next_sequence: u64,
    ) {
        if let Some(format) = format {
            self.format = Some(format);
            self.declared = Some(format);
        }
        self.lines = lines;
        self.events = events;
        self.skipped = skipped;
        self.resolver.restore_sequences(next_sequence);
    }

    /// The format in effect (declared, or detected once a record line has
    /// been seen).
    #[must_use]
    pub fn format(&self) -> Option<Format> {
        self.format
    }

    /// Physical lines seen so far (blanks and the CSV header included).
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Events resolved so far.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Lines quarantined so far.
    #[must_use]
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// The next sequence number the resolver would auto-assign.
    #[must_use]
    pub fn next_sequence(&self) -> u64 {
        self.resolver.next_sequence()
    }

    /// Byte offset through which every record is fully consumed — the
    /// offset a resumable checkpoint may safely record. While a multi-line
    /// CSV record is pending this lags at the pending record's start, so a
    /// resume re-reads (and re-joins) the whole record.
    #[must_use]
    pub fn consumed_through(&self) -> u64 {
        self.consumed_through
    }

    fn refuse(
        &mut self,
        error: IngestError,
        offset: u64,
        end_offset: u64,
        raw: &[u8],
    ) -> Result<LinePush, IngestError> {
        if error.is_line_scoped() && self.policy == ErrorPolicy::Skip {
            self.skipped += 1;
            self.consumed_through = end_offset;
            Ok(LinePush::Quarantined(QuarantinedLine {
                error,
                offset,
                end_offset,
                raw: bounded_lossy(raw),
            }))
        } else {
            Err(error)
        }
    }

    /// Feeds one physical line occupying stream bytes
    /// `start_offset..end_offset` (terminator included when present).
    ///
    /// # Errors
    ///
    /// Stream-level failures (an undetectable format) always fail;
    /// line-level failures fail under [`ErrorPolicy::FailFast`] and
    /// quarantine under [`ErrorPolicy::Skip`].
    pub fn push_line(
        &mut self,
        raw_line: &[u8],
        start_offset: u64,
        end_offset: u64,
    ) -> Result<LinePush, IngestError> {
        self.lines += 1;
        let line_no = self.lines;

        if raw_line.len() > self.max_line_bytes {
            let error = IngestError::LineTooLong {
                line: line_no,
                length: raw_line.len(),
                limit: self.max_line_bytes,
            };
            // A too-long line inside a pending CSV record poisons the whole
            // pending record.
            let (offset, _) = self.take_pending_span(start_offset);
            return self.refuse(error, offset, end_offset, raw_line);
        }
        let line = match std::str::from_utf8(raw_line) {
            Ok(line) => line.strip_suffix('\r').unwrap_or(line),
            Err(error) => {
                let error = IngestError::InvalidUtf8 {
                    line: line_no,
                    column: error.valid_up_to() as u32 + 1,
                };
                let (offset, _) = self.take_pending_span(start_offset);
                return self.refuse(error, offset, end_offset, raw_line);
            }
        };

        // Blank lines separate nothing; skip them silently (but not inside
        // a pending multi-line CSV cell, where they are content).
        if line.trim().is_empty() && self.csv_pending.is_none() {
            self.consumed_through = end_offset;
            return Ok(LinePush::Pending);
        }

        let format = match self.format {
            Some(format) => format,
            None => {
                let detected = detect_format(line, line_no)?;
                self.format = Some(detected);
                detected
            }
        };

        let (record_offset, record) = match format {
            Format::Json => (start_offset, json::parse_line(line_no, line)),
            Format::Logfmt => (start_offset, logfmt::parse_line(line_no, line)),
            Format::Csv => {
                // Join physical lines while a quoted cell is open.
                let (start_line, record_offset, text) = match self.csv_pending.take() {
                    Some((start_line, record_offset, mut text)) => {
                        text.push('\n');
                        text.push_str(line);
                        (start_line, record_offset, text)
                    }
                    None => (line_no, start_offset, line.to_owned()),
                };
                if quote_count(&text) % 2 == 1 {
                    if text.len() > self.max_line_bytes {
                        // An unbalanced quote must not buffer unboundedly.
                        let error = IngestError::LineTooLong {
                            line: start_line,
                            length: text.len(),
                            limit: self.max_line_bytes,
                        };
                        return self.refuse(error, record_offset, end_offset, text.as_bytes());
                    }
                    self.csv_pending = Some((start_line, record_offset, text));
                    return Ok(LinePush::Pending);
                }
                match self.csv.parse_record(start_line, &text) {
                    Ok(None) => {
                        // Header row.
                        self.consumed_through = end_offset;
                        return Ok(LinePush::Pending);
                    }
                    Ok(Some(record)) => (record_offset, Ok(record)),
                    Err(error) => (record_offset, Err(error)),
                }
            }
        };

        match record.and_then(|record| self.resolver.resolve(&record)) {
            Ok(event) => {
                self.events += 1;
                self.consumed_through = end_offset;
                Ok(LinePush::Event(event))
            }
            Err(error) => self.refuse(error, record_offset, end_offset, line.as_bytes()),
        }
    }

    /// Takes the pending CSV span if any, returning the record's start
    /// offset (the pending start, else `fallback`).
    fn take_pending_span(&mut self, fallback: u64) -> (u64, bool) {
        match self.csv_pending.take() {
            Some((_, offset, _)) => (offset, true),
            None => (fallback, false),
        }
    }

    /// Ends the stream: an unterminated multi-line CSV record still pending
    /// is refused (quarantined under [`ErrorPolicy::Skip`]).
    ///
    /// # Errors
    ///
    /// As the pending record's parse failure under
    /// [`ErrorPolicy::FailFast`].
    pub fn finish(&mut self, end_offset: u64) -> Result<Option<LinePush>, IngestError> {
        let Some((start_line, record_offset, text)) = self.csv_pending.take() else {
            self.consumed_through = end_offset;
            return Ok(None);
        };
        let error = match self.csv.parse_record(start_line, &text) {
            Err(error) => error,
            // Unreachable (odd quote parity cannot parse), but stay total.
            Ok(_) => IngestError::Syntax {
                line: start_line,
                column: 1,
                format: Format::Csv,
                message: "unterminated quoted cell at end of input".to_owned(),
            },
        };
        self.refuse(error, record_offset, end_offset, text.as_bytes()).map(Some)
    }

    /// The format to report when the stream held no record line at all: the
    /// declared format, defaulting to JSON.
    #[must_use]
    pub fn fallback_format(&self) -> Format {
        self.format.or(self.declared).unwrap_or(Format::Json)
    }
}

/// Detects the format from the first non-blank line.
fn detect_format(line: &str, line_no: u64) -> Result<Format, IngestError> {
    let trimmed = line.trim_start();
    if trimmed.starts_with('{') {
        return Ok(Format::Json);
    }
    // Logfmt before CSV: a logfmt line's first token carries `=`; a CSV
    // header's first cell never does under the canonical schema, and a
    // comma inside the first whitespace-delimited token is CSV's signature.
    let first_token = trimmed.split([' ', '\t']).next().unwrap_or("");
    if first_token.contains('=') {
        return Ok(Format::Logfmt);
    }
    if trimmed.contains(',') {
        return Ok(Format::Csv);
    }
    Err(IngestError::UnknownFormat { line: line_no })
}

/// Lossily decodes and truncates raw bytes for a dead-letter record.
fn bounded_lossy(raw: &[u8]) -> String {
    let text = String::from_utf8_lossy(raw);
    if text.len() <= QUARANTINE_RAW_LIMIT {
        return text.into_owned();
    }
    let mut cut = QUARANTINE_RAW_LIMIT;
    while !text.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}… ({} bytes)", &text[..cut], raw.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ingestor(policy: ErrorPolicy) -> LineIngestor {
        LineIngestor::new(FieldMapping::canonical(), None, policy, 1 << 20)
    }

    /// Feeds whole-buffer text line by line, as the live path would.
    fn feed(ingestor: &mut LineIngestor, text: &str) -> (Vec<Event>, Vec<QuarantinedLine>) {
        let mut events = Vec::new();
        let mut quarantined = Vec::new();
        let mut offset = 0u64;
        for line in text.split_inclusive('\n') {
            let raw = line.strip_suffix('\n').unwrap_or(line);
            let end = offset + line.len() as u64;
            match ingestor.push_line(raw.as_bytes(), offset, end).expect("push") {
                LinePush::Event(event) => events.push(event),
                LinePush::Quarantined(line) => quarantined.push(line),
                LinePush::Pending => {}
            }
            offset = end;
        }
        match ingestor.finish(offset).expect("finish") {
            Some(LinePush::Event(event)) => events.push(event),
            Some(LinePush::Quarantined(line)) => quarantined.push(line),
            _ => {}
        }
        (events, quarantined)
    }

    #[test]
    fn quarantined_lines_carry_byte_spans_and_raw_text() {
        let mut ingestor = ingestor(ErrorPolicy::Skip);
        let good = "user=u service=s actor=a action=read\n";
        let bad = "user=u service=s actor=a action=frobnicate\n";
        let text = format!("{good}{bad}{good}");
        let (events, quarantined) = feed(&mut ingestor, &text);
        assert_eq!(events.len(), 2);
        assert_eq!(quarantined.len(), 1);
        let q = &quarantined[0];
        assert_eq!(q.offset, good.len() as u64);
        assert_eq!(q.end_offset, (good.len() + bad.len()) as u64);
        assert_eq!(q.raw, bad.trim_end());
        assert!(matches!(q.error, IngestError::BadValue { line: 2, .. }));
        // Auto-sequencing does not leave a hole for the quarantined line.
        assert_eq!(events[1].sequence(), 2);
        assert_eq!(ingestor.consumed_through(), text.len() as u64);
    }

    #[test]
    fn consumed_offset_lags_while_a_csv_record_is_pending() {
        let mut ingestor = ingestor(ErrorPolicy::Skip);
        let header = "user,service,actor,action\n";
        let open = "\"u\n";
        ingestor.push_line(header.trim_end().as_bytes(), 0, header.len() as u64).unwrap();
        let end = (header.len() + open.len()) as u64;
        let push =
            ingestor.push_line(open.trim_end().as_bytes(), header.len() as u64, end).unwrap();
        assert_eq!(push, LinePush::Pending);
        // The pending record is not consumed: a resume must re-read it.
        assert_eq!(ingestor.consumed_through(), header.len() as u64);
        let close = "ser\",s,a,read\n";
        let final_end = end + close.len() as u64;
        let push = ingestor.push_line(close.trim_end().as_bytes(), end, final_end).unwrap();
        let LinePush::Event(event) = push else { panic!("expected event, got {push:?}") };
        assert_eq!(event.user().as_str(), "u\nser");
        assert_eq!(ingestor.consumed_through(), final_end);
    }

    #[test]
    fn fail_fast_surfaces_the_error_instead_of_quarantining() {
        let mut ingestor = ingestor(ErrorPolicy::FailFast);
        let error = ingestor.push_line(b"user=u action=badverb service=s actor=a", 0, 39);
        assert!(matches!(error, Err(IngestError::BadValue { .. })));
    }

    #[test]
    fn restore_pins_format_and_sequences() {
        let mut ingestor = ingestor(ErrorPolicy::Skip);
        ingestor.restore(Some(Format::Logfmt), 7, 5, 2, 41);
        let push = ingestor.push_line(b"user=u service=s actor=a action=read", 0, 36).unwrap();
        let LinePush::Event(event) = push else { panic!("expected event") };
        assert_eq!(event.sequence(), 41);
        assert_eq!(ingestor.lines(), 8);
        assert_eq!(ingestor.format(), Some(Format::Logfmt));
    }

    #[test]
    fn bounded_lossy_truncates_and_marks_invalid_utf8() {
        assert_eq!(bounded_lossy(b"plain"), "plain");
        let long = vec![b'x'; QUARANTINE_RAW_LIMIT + 100];
        let shown = bounded_lossy(&long);
        assert!(shown.ends_with("bytes)"));
        assert!(bounded_lossy(b"a\xffb").contains('\u{FFFD}'));
    }
}
