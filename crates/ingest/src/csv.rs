//! An RFC 4180 CSV parser with a header row.
//!
//! Unlike the line-at-a-time JSON and logfmt parsers this one is stateful:
//! the first (physical) record is the header naming the columns, and every
//! later record must match its arity. Quoted cells use doubled `""` quotes;
//! embedded newlines inside quoted cells are handled upstream by the reader,
//! which joins physical lines until quotes balance before calling in here.

use crate::error::{snippet, IngestError};
use crate::reader::Format;
use crate::record::{RawRecord, RawValue};

/// Stateful CSV record parser (header-first).
#[derive(Debug, Default)]
pub(crate) struct CsvParser {
    header: Option<Vec<String>>,
}

impl CsvParser {
    pub(crate) fn new() -> Self {
        CsvParser::default()
    }

    /// Feeds one logical record (physical lines already joined). Returns
    /// `None` for the header record, `Some(record)` for data records.
    pub(crate) fn parse_record(
        &mut self,
        line_no: u64,
        line: &str,
    ) -> Result<Option<RawRecord>, IngestError> {
        let cells = split_cells(line_no, line)?;
        match &self.header {
            None => {
                let mut names = Vec::with_capacity(cells.len());
                for (name, column) in cells {
                    if names.contains(&name) {
                        return Err(IngestError::DuplicateKey { line: line_no, column, key: name });
                    }
                    names.push(name);
                }
                if names.iter().all(|name| name.is_empty()) {
                    return Err(IngestError::Syntax {
                        line: line_no,
                        column: 1,
                        format: Format::Csv,
                        message: "empty header row".to_owned(),
                    });
                }
                self.header = Some(names);
                Ok(None)
            }
            Some(header) => {
                if cells.len() != header.len() {
                    return Err(IngestError::Syntax {
                        line: line_no,
                        column: 1,
                        format: Format::Csv,
                        message: format!(
                            "record has {} cells but the header declares {} columns",
                            cells.len(),
                            header.len()
                        ),
                    });
                }
                let mut record = RawRecord::new(line_no);
                for (name, (value, _)) in header.iter().zip(cells) {
                    record.push(name.clone(), RawValue::Str(value));
                }
                Ok(Some(record))
            }
        }
    }
}

/// Splits one logical CSV record into `(cell, 1-based start column)` pairs.
fn split_cells(line_no: u64, line: &str) -> Result<Vec<(String, u32)>, IngestError> {
    let error = |pos: usize, message: &str| IngestError::Syntax {
        line: line_no,
        column: pos as u32 + 1,
        format: Format::Csv,
        message: message.to_owned(),
    };
    let bytes = line.as_bytes();
    let mut cells = Vec::new();
    let mut pos = 0usize;
    loop {
        let start = pos;
        let cell = if bytes.get(pos) == Some(&b'"') {
            pos += 1;
            let mut out = String::new();
            loop {
                match bytes.get(pos) {
                    None => return Err(error(start, "unterminated quoted cell")),
                    Some(b'"') => {
                        if bytes.get(pos + 1) == Some(&b'"') {
                            out.push('"');
                            pos += 2;
                        } else {
                            pos += 1;
                            break;
                        }
                    }
                    Some(_) => {
                        let ch = line[pos..]
                            .chars()
                            .next()
                            .ok_or_else(|| error(pos, "invalid UTF-8 in quoted cell"))?;
                        out.push(ch);
                        pos += ch.len_utf8();
                    }
                }
            }
            match bytes.get(pos) {
                None | Some(b',') => {}
                Some(_) => {
                    return Err(error(pos, "content after the closing quote of a cell"));
                }
            }
            out
        } else {
            let cell_start = pos;
            while let Some(&byte) = bytes.get(pos) {
                if byte == b',' {
                    break;
                }
                if byte == b'"' {
                    return Err(error(pos, "`\"` inside an unquoted cell (quote the whole cell)"));
                }
                pos += 1;
            }
            line[cell_start..pos].to_owned()
        };
        if cell.len() > u32::MAX as usize {
            // Unreachable in practice (line limits bound cells first), but
            // keeps the column arithmetic honest.
            return Err(error(start, &format!("cell too large: {}", snippet(&cell))));
        }
        cells.push((cell, start as u32 + 1));
        match bytes.get(pos) {
            None => return Ok(cells),
            Some(b',') => pos += 1,
            Some(_) => unreachable!("cell scanning stops only at `,` or end"),
        }
    }
}

/// Counts unescaped `"` in a physical line — the reader uses quote parity to
/// decide whether a quoted cell continues onto the next physical line.
pub(crate) fn quote_count(line: &str) -> usize {
    line.bytes().filter(|&b| b == b'"').count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header_then(line: &str) -> Result<Option<RawRecord>, IngestError> {
        let mut parser = CsvParser::new();
        parser.parse_record(1, "a,b,c")?;
        parser.parse_record(2, line)
    }

    #[test]
    fn header_then_records_map_by_column_name() {
        let record = header_then("1,two,\"th,ree\"").unwrap().unwrap();
        assert_eq!(record.get("a"), Some(&RawValue::Str("1".into())));
        assert_eq!(record.get("b"), Some(&RawValue::Str("two".into())));
        assert_eq!(record.get("c"), Some(&RawValue::Str("th,ree".into())));
        assert_eq!(record.line(), 2);
    }

    #[test]
    fn doubled_quotes_and_embedded_newlines_decode() {
        let record = header_then("\"he said \"\"hi\"\"\",\"line1\nline2\",z").unwrap().unwrap();
        assert_eq!(record.get("a"), Some(&RawValue::Str("he said \"hi\"".into())));
        assert_eq!(record.get("b"), Some(&RawValue::Str("line1\nline2".into())));
    }

    #[test]
    fn arity_mismatches_are_typed() {
        assert!(matches!(header_then("1,2"), Err(IngestError::Syntax { line: 2, .. })));
        assert!(matches!(header_then("1,2,3,4"), Err(IngestError::Syntax { line: 2, .. })));
    }

    #[test]
    fn header_duplicates_and_quote_malformations_are_typed() {
        let mut parser = CsvParser::new();
        assert!(matches!(
            parser.parse_record(1, "a,b,a"),
            Err(IngestError::DuplicateKey { column: 5, .. })
        ));
        assert!(matches!(header_then("\"open,2,3"), Err(IngestError::Syntax { .. })));
        assert!(matches!(header_then("\"x\"y,2,3"), Err(IngestError::Syntax { .. })));
        assert!(matches!(header_then("ab\"cd,2,3"), Err(IngestError::Syntax { .. })));
    }

    #[test]
    fn empty_cells_and_trailing_commas_are_positional() {
        let record = header_then(",,").unwrap().unwrap();
        assert_eq!(record.get("a"), Some(&RawValue::Str(String::new())));
        assert_eq!(record.get("c"), Some(&RawValue::Str(String::new())));
    }

    #[test]
    fn quote_parity_counts_all_quotes() {
        assert_eq!(quote_count("a,\"b\",c"), 2);
        assert_eq!(quote_count("\"he said \"\"hi"), 3);
        assert_eq!(quote_count("plain"), 0);
    }
}
