//! Real-world log ingestion for the privacy runtime monitors.
//!
//! The paper's runtime verification story assumes events arrive in the
//! monitor's native shape; production systems instead emit JSON lines,
//! logfmt, or CSV — often gzip-compressed, often slightly broken. This
//! crate is the hardened front door between those logs and
//! [`privacy_runtime`]:
//!
//! * **format parsers** ([`json`], [`logfmt`], [`csv`] modules) turn lines
//!   into uniform [`RawRecord`]s with byte-accurate error provenance;
//! * **a declarative [`FieldMapping`]** names which log field supplies each
//!   event column (user, actor, service, action, fields, datastore,
//!   permitted), with per-field defaults and a verb-alias table;
//! * **a [`Resolver`]** turns mapped records into monitor-ready
//!   [`privacy_runtime::Event`]s with monotone sequence numbers;
//! * **[`ingest_bytes`] / [`ingest_reader`]** run the whole pipeline —
//!   gzip auto-detection ([`gzip`] is a dependency-free RFC 1952/1951
//!   codec), line splitting, format auto-detection — under a
//!   skip-with-diagnostics or fail-fast [`ErrorPolicy`].
//!
//! The contract throughout: malformed input yields a typed
//! [`IngestError`], never a panic. The crate's corpus and property tests
//! (see `tests/`) fuzz that contract directly.

pub mod csv;
pub mod deadletter;
pub mod error;
pub mod gzip;
pub mod json;
pub mod live;
pub mod logfmt;
pub mod mapping;
pub mod reader;
pub mod record;
pub mod resolve;
pub mod stream;

pub use deadletter::{DeadLetterRecord, DeadLetterWriter};
pub use error::{ErrorPolicy, IngestError, Role};
pub use gzip::{gunzip, gzip_compress_stored, is_gzip, GzipError};
pub use live::{FollowConfig, LiveSource, SourceEvent};
pub use mapping::FieldMapping;
pub use reader::{
    ingest_bytes, ingest_reader, Diagnostic, Format, IngestOptions, IngestReport, IngestStats,
};
pub use record::{RawRecord, RawValue};
pub use resolve::Resolver;
pub use stream::{LineIngestor, LinePush, QuarantinedLine};

/// Everything a log-ingesting binary typically needs.
pub mod prelude {
    pub use crate::deadletter::{DeadLetterRecord, DeadLetterWriter};
    pub use crate::error::{ErrorPolicy, IngestError, Role};
    pub use crate::gzip::{gunzip, gzip_compress_stored, is_gzip, GzipError};
    pub use crate::live::{FollowConfig, LiveSource, SourceEvent};
    pub use crate::mapping::FieldMapping;
    pub use crate::reader::{
        ingest_bytes, ingest_reader, Diagnostic, Format, IngestOptions, IngestReport, IngestStats,
    };
    pub use crate::record::{RawRecord, RawValue};
    pub use crate::resolve::Resolver;
    pub use crate::stream::{LineIngestor, LinePush, QuarantinedLine};
}
