//! Live log sources: a polling file tail and a long-lived pipe.
//!
//! Real log streams grow, rotate, truncate mid-record, and stall. This
//! module follows them without any platform-specific notification API —
//! a [`FileTail`] polls the path's metadata each round, distinguishing
//! three regimes by inode identity and size:
//!
//! * **growth** — new bytes past the read position are returned as
//!   [`SourceEvent::Data`];
//! * **rotation** — the path now names a different inode. The old file is
//!   drained to EOF *first* (no tail of the old segment is lost), then the
//!   new file is opened from its start and [`SourceEvent::Rotated`] marks
//!   the seam;
//! * **truncation** — same inode, but the file shrank below the read
//!   position. Reading restarts from byte zero of the rewritten file and
//!   [`SourceEvent::Truncated`] reports how many bytes of position were
//!   abandoned.
//!
//! The *logical stream* a live source produces is the concatenation of
//! every byte it observed, across rotations and truncations. Offsets in
//! that stream (tracked by [`LineAssembler`]) are what dead-letter records
//! and resumable checkpoints refer to — an offline replay of the same
//! observed bytes through [`crate::ingest_bytes`] lands on identical
//! offsets, which is exactly what the chaos harness asserts.
//!
//! Transient IO errors (interrupted reads, a momentarily missing path
//! during rotation) do not kill the source: polling retries with capped
//! exponential backoff, surfaced to the caller as [`SourceEvent::Idle`]
//! plus a suggested [`LiveSource::delay`]. Only a persistent failure
//! (more than [`FollowConfig::max_retries`] consecutive errors) becomes a
//! hard [`IngestError::Io`].

use crate::error::IngestError;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::os::unix::fs::MetadataExt;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Tuning for a polled live source.
#[derive(Debug, Clone)]
pub struct FollowConfig {
    /// Sleep between polls when the source is idle (no new bytes).
    pub poll_interval: Duration,
    /// Ceiling for the exponential error backoff.
    pub max_backoff: Duration,
    /// Consecutive transient-error polls tolerated before the source
    /// fails hard with [`IngestError::Io`].
    pub max_retries: u32,
    /// Largest read returned per poll.
    pub chunk_bytes: usize,
    /// File offset to resume reading from (file tails only). If the file
    /// is already shorter than this at open, the regression is reported as
    /// [`SourceEvent::Truncated`] and reading restarts from byte zero.
    pub start_offset: u64,
}

impl Default for FollowConfig {
    fn default() -> Self {
        FollowConfig {
            poll_interval: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            max_retries: 10,
            chunk_bytes: 64 << 10,
            start_offset: 0,
        }
    }
}

/// One observation from a poll of a live source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceEvent {
    /// New bytes, contiguous in the logical stream.
    Data(Vec<u8>),
    /// The followed path now names a new file; the old one was fully
    /// drained before switching.
    Rotated,
    /// The followed file shrank in place; reading restarted from its
    /// start. `lost` is how far past the new end the old position was.
    Truncated {
        /// Bytes of abandoned read position.
        lost: u64,
    },
    /// Nothing new this poll; sleep [`LiveSource::delay`] and poll again.
    Idle,
    /// The source is exhausted for good (pipe closed). File tails never
    /// report this — a file that stops growing is merely [`Idle`].
    ///
    /// [`Idle`]: SourceEvent::Idle
    Eof,
}

/// A polling tail of a growing, rotating, possibly truncated file.
#[derive(Debug)]
pub struct FileTail {
    path: PathBuf,
    config: FollowConfig,
    file: Option<File>,
    /// Inode of the open file, for rotation detection.
    inode: u64,
    /// Bytes read from the current segment.
    pos: u64,
    /// Whether the configured `start_offset` is still to be applied.
    pending_seek: bool,
    rotations: u64,
    truncations: u64,
    errors: u32,
    backoff: Duration,
}

impl FileTail {
    /// Follows `path`. The file need not exist yet; polls report
    /// [`SourceEvent::Idle`] until it appears.
    #[must_use]
    pub fn new(path: impl Into<PathBuf>, config: FollowConfig) -> Self {
        let backoff = config.poll_interval;
        FileTail {
            path: path.into(),
            config,
            file: None,
            inode: 0,
            pos: 0,
            pending_seek: true,
            rotations: 0,
            truncations: 0,
            errors: 0,
            backoff,
        }
    }

    /// Rotations observed so far.
    #[must_use]
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Truncations observed so far.
    #[must_use]
    pub fn truncations(&self) -> u64 {
        self.truncations
    }

    /// Bytes read from the currently open segment.
    #[must_use]
    pub fn segment_pos(&self) -> u64 {
        self.pos
    }

    fn transient(&mut self, error: &std::io::Error) -> Result<SourceEvent, IngestError> {
        self.errors += 1;
        if self.errors > self.config.max_retries {
            return Err(IngestError::Io {
                message: format!(
                    "{}: {error} ({} consecutive failures)",
                    self.path.display(),
                    self.errors
                ),
            });
        }
        self.backoff = (self.backoff * 2).min(self.config.max_backoff);
        Ok(SourceEvent::Idle)
    }

    fn settle(&mut self) {
        self.errors = 0;
        self.backoff = self.config.poll_interval;
    }

    fn open(&mut self) -> Result<SourceEvent, IngestError> {
        let file = match File::open(&self.path) {
            Ok(file) => file,
            Err(error) if error.kind() == std::io::ErrorKind::NotFound => {
                // Not an error: the file may simply not exist yet, or a
                // rotation is mid-swap. Do not escalate the backoff.
                return Ok(SourceEvent::Idle);
            }
            Err(error) => return self.transient(&error),
        };
        let meta = match file.metadata() {
            Ok(meta) => meta,
            Err(error) => return self.transient(&error),
        };
        self.settle();
        self.inode = meta.ino();
        self.pos = 0;
        let mut file = file;
        if self.pending_seek {
            self.pending_seek = false;
            let resume = self.config.start_offset;
            if resume > 0 {
                if meta.len() >= resume {
                    if let Err(error) = file.seek(SeekFrom::Start(resume)) {
                        return self.transient(&error);
                    }
                    self.pos = resume;
                } else {
                    // The file regressed below the resume point while we
                    // were away: surface it as a truncation and re-read.
                    self.truncations += 1;
                    self.file = Some(file);
                    return Ok(SourceEvent::Truncated { lost: resume - meta.len() });
                }
            }
        }
        self.file = Some(file);
        Ok(SourceEvent::Idle)
    }

    fn poll(&mut self) -> Result<SourceEvent, IngestError> {
        if self.file.is_none() {
            let opened = self.open()?;
            if self.file.is_none() || opened != SourceEvent::Idle {
                return Ok(opened);
            }
        }
        let file = self.file.as_mut().expect("open() stored the file");

        let mut buf = vec![0u8; self.config.chunk_bytes];
        match file.read(&mut buf) {
            Ok(0) => {}
            Ok(read) => {
                self.settle();
                self.pos += read as u64;
                buf.truncate(read);
                return Ok(SourceEvent::Data(buf));
            }
            Err(error) if error.kind() == std::io::ErrorKind::Interrupted => {
                return Ok(SourceEvent::Idle);
            }
            Err(error) => return self.transient(&error),
        }

        // At EOF of the open segment: decide between quiet, rotated, and
        // truncated by re-statting the *path*.
        let meta = match std::fs::metadata(&self.path) {
            Ok(meta) => meta,
            Err(error) if error.kind() == std::io::ErrorKind::NotFound => {
                // Deleted (or mid-rotation): the old segment is drained, so
                // drop the handle and wait for a successor.
                self.file = None;
                self.rotations += 1;
                return Ok(SourceEvent::Rotated);
            }
            Err(error) => return self.transient(&error),
        };
        self.settle();
        if meta.ino() != self.inode {
            // Rotation: the drained handle is stale; reopen at the path.
            self.file = None;
            self.rotations += 1;
            return Ok(SourceEvent::Rotated);
        }
        if meta.len() < self.pos {
            // In-place truncation: restart from the file's new beginning.
            let lost = self.pos - meta.len();
            if let Err(error) = self.file.as_mut().expect("checked above").seek(SeekFrom::Start(0))
            {
                return self.transient(&error);
            }
            self.truncations += 1;
            self.pos = 0;
            return Ok(SourceEvent::Truncated { lost });
        }
        Ok(SourceEvent::Idle)
    }
}

/// A long-lived pipe (typically stdin): reads until EOF, no rotation.
pub struct PipeSource {
    reader: Box<dyn Read + Send>,
    config: FollowConfig,
    errors: u32,
    backoff: Duration,
    done: bool,
}

impl std::fmt::Debug for PipeSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipeSource").field("done", &self.done).finish_non_exhaustive()
    }
}

impl PipeSource {
    /// Follows `reader` until it reports EOF.
    #[must_use]
    pub fn new(reader: Box<dyn Read + Send>, config: FollowConfig) -> Self {
        let backoff = config.poll_interval;
        PipeSource { reader, config, errors: 0, backoff, done: false }
    }

    fn poll(&mut self) -> Result<SourceEvent, IngestError> {
        if self.done {
            return Ok(SourceEvent::Eof);
        }
        let mut buf = vec![0u8; self.config.chunk_bytes];
        match self.reader.read(&mut buf) {
            Ok(0) => {
                self.done = true;
                Ok(SourceEvent::Eof)
            }
            Ok(read) => {
                self.errors = 0;
                self.backoff = self.config.poll_interval;
                buf.truncate(read);
                Ok(SourceEvent::Data(buf))
            }
            Err(error) if error.kind() == std::io::ErrorKind::Interrupted => Ok(SourceEvent::Idle),
            Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {
                self.backoff = (self.backoff * 2).min(self.config.max_backoff);
                Ok(SourceEvent::Idle)
            }
            Err(error) => {
                self.errors += 1;
                if self.errors > self.config.max_retries {
                    return Err(IngestError::Io {
                        message: format!("pipe: {error} ({} consecutive failures)", self.errors),
                    });
                }
                self.backoff = (self.backoff * 2).min(self.config.max_backoff);
                Ok(SourceEvent::Idle)
            }
        }
    }
}

/// Either live source behind one polling interface.
#[derive(Debug)]
pub enum LiveSource {
    /// A polled file tail.
    File(FileTail),
    /// A long-lived pipe.
    Pipe(PipeSource),
}

impl LiveSource {
    /// Tails the file at `path`.
    #[must_use]
    pub fn tail(path: impl Into<PathBuf>, config: FollowConfig) -> Self {
        LiveSource::File(FileTail::new(path, config))
    }

    /// Follows a pipe until EOF.
    #[must_use]
    pub fn pipe(reader: Box<dyn Read + Send>, config: FollowConfig) -> Self {
        LiveSource::Pipe(PipeSource::new(reader, config))
    }

    /// One non-blocking observation of the source.
    ///
    /// # Errors
    ///
    /// [`IngestError::Io`] once transient-error retries are exhausted.
    pub fn poll(&mut self) -> Result<SourceEvent, IngestError> {
        match self {
            LiveSource::File(tail) => tail.poll(),
            LiveSource::Pipe(pipe) => pipe.poll(),
        }
    }

    /// How long the caller should sleep before the next [`poll`] when the
    /// last one returned [`SourceEvent::Idle`] — the poll interval,
    /// exponentially inflated while transient errors persist.
    ///
    /// [`poll`]: LiveSource::poll
    #[must_use]
    pub fn delay(&self) -> Duration {
        match self {
            LiveSource::File(tail) => tail.backoff,
            LiveSource::Pipe(pipe) => pipe.backoff,
        }
    }

    /// The followed path, for file tails.
    #[must_use]
    pub fn path(&self) -> Option<&Path> {
        match self {
            LiveSource::File(tail) => Some(&tail.path),
            LiveSource::Pipe(_) => None,
        }
    }
}

/// One complete line cut from the logical stream, with its byte span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssembledLine {
    /// The line's bytes, terminator excluded, truncated to the assembler's
    /// storage cap (the span below is always exact).
    pub bytes: Vec<u8>,
    /// Logical stream offset of the line's first byte.
    pub start: u64,
    /// One past the line's last byte (the `\n` included when one was
    /// seen).
    pub end: u64,
}

/// Carries partial lines across reads, assigning logical stream offsets.
///
/// Chunks pushed in are treated as one contiguous byte stream; lines are
/// cut at `\n`. Storage per line is capped (a hostile unterminated line
/// cannot balloon memory): bytes past the cap are dropped from
/// [`AssembledLine::bytes`] but still counted in the span, so downstream
/// accounting — and the line-length refusal in
/// [`LineIngestor`](crate::stream::LineIngestor) — stays exact.
#[derive(Debug)]
pub struct LineAssembler {
    partial: Vec<u8>,
    /// Logical offset of the partial line's first byte.
    partial_start: u64,
    /// Logical offset of the next byte to be fed.
    fed: u64,
    /// Storage cap per line.
    cap: usize,
}

impl LineAssembler {
    /// An assembler storing at most `cap` bytes per line. Pick at least
    /// one byte more than the ingest line limit, so an over-long line is
    /// still recognisably over-long downstream.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        LineAssembler { partial: Vec::new(), partial_start: 0, fed: 0, cap }
    }

    /// Logical offset of the next byte to be fed.
    #[must_use]
    pub fn offset(&self) -> u64 {
        self.fed
    }

    /// Starts the logical stream at `offset` (resume). Must be called
    /// before any bytes are pushed.
    pub fn start_at(&mut self, offset: u64) {
        debug_assert_eq!(self.fed, 0);
        self.fed = offset;
        self.partial_start = offset;
    }

    /// Whether an unterminated line is currently buffered.
    #[must_use]
    pub fn has_partial(&self) -> bool {
        !self.partial.is_empty() || self.partial_start < self.fed
    }

    /// Feeds a chunk, appending every completed line to `out`.
    pub fn push(&mut self, chunk: &[u8], out: &mut Vec<AssembledLine>) {
        let mut rest = chunk;
        while let Some(at) = rest.iter().position(|&byte| byte == b'\n') {
            self.absorb(&rest[..at]);
            self.fed += at as u64 + 1;
            out.push(AssembledLine {
                bytes: std::mem::take(&mut self.partial),
                start: self.partial_start,
                end: self.fed,
            });
            self.partial_start = self.fed;
            rest = &rest[at + 1..];
        }
        self.absorb(rest);
        self.fed += rest.len() as u64;
    }

    /// Flushes the buffered unterminated line, if any (stream end).
    pub fn finish(&mut self) -> Option<AssembledLine> {
        if !self.has_partial() {
            return None;
        }
        let line = AssembledLine {
            bytes: std::mem::take(&mut self.partial),
            start: self.partial_start,
            end: self.fed,
        };
        self.partial_start = self.fed;
        Some(line)
    }

    fn absorb(&mut self, bytes: &[u8]) {
        let room = self.cap.saturating_sub(self.partial.len());
        self.partial.extend_from_slice(&bytes[..bytes.len().min(room)]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn assembler_cuts_lines_across_chunk_boundaries() {
        let mut assembler = LineAssembler::new(1 << 20);
        let mut out = Vec::new();
        assembler.push(b"alpha\nbra", &mut out);
        assembler.push(b"vo\ncha", &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], AssembledLine { bytes: b"alpha".to_vec(), start: 0, end: 6 });
        assert_eq!(out[1], AssembledLine { bytes: b"bravo".to_vec(), start: 6, end: 12 });
        assert!(assembler.has_partial());
        let tail = assembler.finish().expect("partial");
        assert_eq!(tail, AssembledLine { bytes: b"cha".to_vec(), start: 12, end: 15 });
        assert!(assembler.finish().is_none());
    }

    #[test]
    fn assembler_caps_storage_but_keeps_spans_exact() {
        let mut assembler = LineAssembler::new(4);
        let mut out = Vec::new();
        assembler.push(b"0123456789\nok\n", &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].bytes, b"0123");
        assert_eq!((out[0].start, out[0].end), (0, 11));
        assert_eq!(out[1].bytes, b"ok");
        assert_eq!((out[1].start, out[1].end), (11, 14));
    }

    #[test]
    fn assembler_resumes_at_a_nonzero_offset() {
        let mut assembler = LineAssembler::new(64);
        assembler.start_at(100);
        let mut out = Vec::new();
        assembler.push(b"x\n", &mut out);
        assert_eq!((out[0].start, out[0].end), (100, 102));
        assert_eq!(assembler.offset(), 102);
    }

    fn drain(tail: &mut FileTail) -> (Vec<u8>, Vec<SourceEvent>) {
        let mut bytes = Vec::new();
        let mut marks = Vec::new();
        loop {
            match tail.poll().expect("poll") {
                SourceEvent::Data(chunk) => bytes.extend_from_slice(&chunk),
                SourceEvent::Idle => break,
                other => marks.push(other),
            }
        }
        (bytes, marks)
    }

    #[test]
    fn tail_reads_growth_incrementally() {
        let dir = tempdir("tail-growth");
        let path = dir.join("app.log");
        std::fs::write(&path, b"one\n").unwrap();
        let mut tail = FileTail::new(&path, FollowConfig::default());
        let (bytes, _) = drain(&mut tail);
        assert_eq!(bytes, b"one\n");
        let mut file = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"two\n").unwrap();
        let (bytes, _) = drain(&mut tail);
        assert_eq!(bytes, b"two\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tail_drains_the_old_file_before_switching_on_rotation() {
        let dir = tempdir("tail-rotate");
        let path = dir.join("app.log");
        std::fs::write(&path, b"old-tail\n").unwrap();
        let mut tail = FileTail::new(&path, FollowConfig::default());
        let (bytes, _) = drain(&mut tail);
        assert_eq!(bytes, b"old-tail\n");
        // Rotate: move aside, then write a successor at the same path.
        std::fs::rename(&path, dir.join("app.log.1")).unwrap();
        std::fs::write(&path, b"new-head\n").unwrap();
        let (bytes, marks) = drain(&mut tail);
        assert_eq!(bytes, b"new-head\n");
        assert!(marks.contains(&SourceEvent::Rotated), "marks: {marks:?}");
        assert_eq!(tail.rotations(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tail_restarts_from_zero_on_truncation() {
        let dir = tempdir("tail-trunc");
        let path = dir.join("app.log");
        std::fs::write(&path, b"aaaa\nbbbb\n").unwrap();
        let mut tail = FileTail::new(&path, FollowConfig::default());
        let (bytes, _) = drain(&mut tail);
        assert_eq!(bytes.len(), 10);
        std::fs::write(&path, b"cc\n").unwrap();
        let (bytes, marks) = drain(&mut tail);
        assert_eq!(bytes, b"cc\n");
        assert!(matches!(marks[..], [SourceEvent::Truncated { lost: 7 }]), "marks: {marks:?}");
        assert_eq!(tail.truncations(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tail_resumes_from_a_start_offset() {
        let dir = tempdir("tail-resume");
        let path = dir.join("app.log");
        std::fs::write(&path, b"skip-me\nkeep\n").unwrap();
        let config = FollowConfig { start_offset: 8, ..FollowConfig::default() };
        let mut tail = FileTail::new(&path, config);
        let (bytes, _) = drain(&mut tail);
        assert_eq!(bytes, b"keep\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tail_waits_for_a_file_that_does_not_exist_yet() {
        let dir = tempdir("tail-wait");
        let path = dir.join("late.log");
        let mut tail = FileTail::new(&path, FollowConfig::default());
        assert_eq!(tail.poll().unwrap(), SourceEvent::Idle);
        std::fs::write(&path, b"here\n").unwrap();
        let (bytes, _) = drain(&mut tail);
        assert_eq!(bytes, b"here\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pipe_reads_until_eof() {
        let mut source = PipeSource::new(Box::new(&b"a\nb\n"[..]), FollowConfig::default());
        let mut bytes = Vec::new();
        loop {
            match source.poll().expect("poll") {
                SourceEvent::Data(chunk) => bytes.extend_from_slice(&chunk),
                SourceEvent::Eof => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(bytes, b"a\nb\n");
        assert_eq!(source.poll().unwrap(), SourceEvent::Eof);
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "privacy-ingest-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
