//! The streaming front door: bytes → lines → records → events.
//!
//! [`ingest_bytes`] (and [`ingest_reader`] over any [`std::io::Read`]) runs
//! the whole pipeline: gzip auto-detection and decompression, line
//! splitting with CRLF tolerance and a line-length limit, format
//! auto-detection from the first non-blank line, per-format parsing, and
//! mapping-driven resolution — under either error policy.

use crate::error::{ErrorPolicy, IngestError};
use crate::gzip::{gunzip, is_gzip};
use crate::mapping::FieldMapping;
use crate::stream::{LineIngestor, LinePush};
use privacy_runtime::Event;
use std::fmt;
use std::io::Read;

/// A supported log line format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// One JSON object per line (NDJSON).
    Json,
    /// `key=value` pairs (logfmt).
    Logfmt,
    /// RFC 4180 CSV with a header row.
    Csv,
}

impl Format {
    /// All formats.
    pub const ALL: [Format; 3] = [Format::Json, Format::Logfmt, Format::Csv];

    /// The format's lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Format::Json => "json",
            Format::Logfmt => "logfmt",
            Format::Csv => "csv",
        }
    }

    /// Parses a format name (as the CLI's `--format` flag spells them).
    pub fn parse(name: &str) -> Option<Format> {
        match name.to_ascii_lowercase().as_str() {
            "json" | "ndjson" | "jsonl" => Some(Format::Json),
            "logfmt" => Some(Format::Logfmt),
            "csv" => Some(Format::Csv),
            _ => None,
        }
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Tuning knobs for one ingest run.
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// The format to parse; `None` auto-detects from the first record line.
    pub format: Option<Format>,
    /// What to do with malformed lines.
    pub policy: ErrorPolicy,
    /// The per-line size limit in bytes (a guard against unbounded memory
    /// on garbage input, not a parsing feature).
    pub max_line_bytes: usize,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions { format: None, policy: ErrorPolicy::default(), max_line_bytes: 1 << 20 }
    }
}

/// One skipped line under [`ErrorPolicy::Skip`].
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    error: IngestError,
    offset: u64,
}

impl Diagnostic {
    /// The error that caused the skip.
    pub fn error(&self) -> &IngestError {
        &self.error
    }

    /// Byte offset of the skipped record's first byte in the
    /// (decompressed) stream.
    pub fn offset(&self) -> u64 {
        self.offset
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "skipped: {}", self.error)
    }
}

/// Counters for one ingest run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestStats {
    /// Physical lines seen (including blanks and the CSV header).
    pub lines: u64,
    /// Events successfully resolved.
    pub events: u64,
    /// Lines skipped under [`ErrorPolicy::Skip`].
    pub skipped: u64,
    /// Decompressed input size in bytes.
    pub bytes: u64,
}

/// The result of one ingest run.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestReport {
    /// The resolved events, in input order.
    pub events: Vec<Event>,
    /// One diagnostic per skipped line (empty under
    /// [`ErrorPolicy::FailFast`]).
    pub diagnostics: Vec<Diagnostic>,
    /// Run counters.
    pub stats: IngestStats,
    /// The format that was parsed (declared or detected).
    pub format: Format,
}

/// Ingests a byte buffer (a log file already read into memory).
///
/// # Errors
///
/// Stream-level failures (corrupt gzip, undetectable format) always fail;
/// line-level failures fail or skip per [`IngestOptions::policy`].
pub fn ingest_bytes(
    bytes: &[u8],
    mapping: &FieldMapping,
    options: &IngestOptions,
) -> Result<IngestReport, IngestError> {
    let decompressed;
    let payload = if is_gzip(bytes) {
        decompressed = gunzip(bytes)?;
        &decompressed[..]
    } else {
        bytes
    };
    ingest_payload(payload, mapping, options)
}

/// Ingests from any reader (a file, stdin, a socket). The stream is read to
/// the end first — gzip members cannot be validated incrementally anyway.
///
/// # Errors
///
/// As [`ingest_bytes`], plus [`IngestError::Io`] when the reader fails.
pub fn ingest_reader(
    mut reader: impl Read,
    mapping: &FieldMapping,
    options: &IngestOptions,
) -> Result<IngestReport, IngestError> {
    let mut bytes = Vec::new();
    reader
        .read_to_end(&mut bytes)
        .map_err(|error| IngestError::Io { message: error.to_string() })?;
    ingest_bytes(&bytes, mapping, options)
}

fn ingest_payload(
    payload: &[u8],
    mapping: &FieldMapping,
    options: &IngestOptions,
) -> Result<IngestReport, IngestError> {
    // The whole-buffer path drives the same [`LineIngestor`] state machine
    // as the live tail, so an offline replay of live-observed bytes is
    // guaranteed to agree with the live run line for line.
    let mut ingestor =
        LineIngestor::new(mapping.clone(), options.format, options.policy, options.max_line_bytes);
    let mut events = Vec::new();
    let mut diagnostics = Vec::new();

    let mut start = 0usize;
    while start < payload.len() {
        let (line_end, next) = match payload[start..].iter().position(|&byte| byte == b'\n') {
            Some(at) => (start + at, start + at + 1),
            None => (payload.len(), payload.len()),
        };
        match ingestor.push_line(&payload[start..line_end], start as u64, next as u64)? {
            LinePush::Event(event) => events.push(event),
            LinePush::Quarantined(line) => {
                diagnostics.push(Diagnostic { error: line.error, offset: line.offset });
            }
            LinePush::Pending => {}
        }
        start = next;
    }
    // An unterminated quoted cell at end of input.
    match ingestor.finish(payload.len() as u64)? {
        Some(LinePush::Event(event)) => events.push(event),
        Some(LinePush::Quarantined(line)) => {
            diagnostics.push(Diagnostic { error: line.error, offset: line.offset });
        }
        Some(LinePush::Pending) | None => {}
    }

    let stats = IngestStats {
        lines: ingestor.lines(),
        events: ingestor.events(),
        skipped: ingestor.skipped(),
        bytes: payload.len() as u64,
    };
    // Nothing but blank lines reports the declared format or defaults to
    // JSON; there are no events either way.
    let format = ingestor.fallback_format();
    Ok(IngestReport { events, diagnostics, stats, format })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gzip::gzip_compress_stored;
    use privacy_lts::ActionKind;

    fn canonical(bytes: &[u8], options: &IngestOptions) -> Result<IngestReport, IngestError> {
        ingest_bytes(bytes, &FieldMapping::canonical(), options)
    }

    #[test]
    fn each_format_is_auto_detected_and_parsed() {
        let json = b"{\"seq\": 1, \"user\": \"u\", \"service\": \"s\", \"actor\": \"a\", \
                     \"action\": \"read\", \"fields\": [\"f\"], \"permitted\": true}\n";
        let logfmt = b"seq=1 user=u service=s actor=a action=read fields=f permitted=true\n";
        let csv = b"seq,user,service,actor,action,fields,store,permitted\n1,u,s,a,read,f,,true\n";
        for (bytes, expected) in
            [(&json[..], Format::Json), (&logfmt[..], Format::Logfmt), (&csv[..], Format::Csv)]
        {
            let report = canonical(bytes, &IngestOptions::default()).unwrap();
            assert_eq!(report.format, expected);
            assert_eq!(report.events.len(), 1, "{expected}");
            let event = &report.events[0];
            assert_eq!(event.sequence(), 1);
            assert_eq!(event.action(), ActionKind::Read);
            assert_eq!(event.fields().len(), 1);
            assert!(event.permitted());
        }
    }

    #[test]
    fn gzip_wrapped_input_is_transparent() {
        let plain = b"seq=1 user=u service=s actor=a action=collect\n";
        let archive = gzip_compress_stored(plain);
        let report = canonical(&archive, &IngestOptions::default()).unwrap();
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.stats.bytes, plain.len() as u64);
        assert!(matches!(
            canonical(&archive[..archive.len() - 3], &IngestOptions::default()),
            Err(IngestError::Gzip(_))
        ));
    }

    #[test]
    fn skip_policy_collects_diagnostics_and_keeps_going() {
        let bytes = b"user=u service=s actor=a action=read\n\
                      user=u action=badverb service=s actor=a\n\
                      user=u service=s actor=a action=delete\n";
        let options = IngestOptions { policy: ErrorPolicy::Skip, ..IngestOptions::default() };
        let report = canonical(bytes, &options).unwrap();
        assert_eq!(report.events.len(), 2);
        assert_eq!(report.stats.skipped, 1);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].error().line(), Some(2));
        // Auto-sequencing does not leave a hole for the skipped line.
        assert_eq!(report.events[1].sequence(), 2);

        // Fail-fast stops at the bad line instead.
        assert!(matches!(
            canonical(bytes, &IngestOptions::default()),
            Err(IngestError::BadValue { line: 2, .. })
        ));
    }

    #[test]
    fn multi_line_csv_cells_join_on_quote_parity() {
        let bytes = b"user,service,actor,action,fields\n\"u\nser\",s,a,read,f\n";
        let report = canonical(bytes, &IngestOptions::default()).unwrap();
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.events[0].user().as_str(), "u\nser");
    }

    #[test]
    fn line_limits_utf8_and_unknown_formats_are_typed() {
        let options = IngestOptions { max_line_bytes: 16, ..IngestOptions::default() };
        assert!(matches!(
            canonical(b"user=u service=s actor=a action=read\n", &options),
            Err(IngestError::LineTooLong { line: 1, .. })
        ));
        assert!(matches!(
            canonical(b"user=\xff\xfe service=s\n", &IngestOptions::default()),
            Err(IngestError::InvalidUtf8 { line: 1, column: 6 })
        ));
        assert!(matches!(
            canonical(b"no format markers here\n", &IngestOptions::default()),
            Err(IngestError::UnknownFormat { line: 1 })
        ));
        // Stream-level errors fail even under Skip.
        let skip = IngestOptions { policy: ErrorPolicy::Skip, ..IngestOptions::default() };
        assert!(matches!(
            canonical(b"no format markers here\n", &skip),
            Err(IngestError::UnknownFormat { line: 1 })
        ));
    }

    #[test]
    fn blank_lines_crlf_and_empty_inputs_are_tolerated() {
        let bytes = b"\r\n\nuser=u service=s actor=a action=read\r\n\n";
        let report = canonical(bytes, &IngestOptions::default()).unwrap();
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.stats.lines, 4);

        let empty = canonical(b"", &IngestOptions::default()).unwrap();
        assert!(empty.events.is_empty());
        let blank = canonical(b"\n\n", &IngestOptions::default()).unwrap();
        assert!(blank.events.is_empty());
    }

    #[test]
    fn declared_format_overrides_detection() {
        // A logfmt-looking line parsed as CSV: header with one `=` column.
        let bytes = b"a=1\nb=2\n";
        let options = IngestOptions { format: Some(Format::Csv), ..IngestOptions::default() };
        // Header `a=1`, then record `b=2` — one cell each; mapping fails on
        // a missing user column.
        assert!(matches!(canonical(bytes, &options), Err(IngestError::MissingColumn { .. })));
    }

    #[test]
    fn unterminated_csv_quote_at_eof_is_an_error_fail_fast_and_a_skip_otherwise() {
        let bytes = b"user,service,actor,action\n\"open,s,a,read\n";
        assert!(matches!(
            canonical(bytes, &IngestOptions::default()),
            Err(IngestError::Syntax { .. })
        ));
        let skip = IngestOptions { policy: ErrorPolicy::Skip, ..IngestOptions::default() };
        let report = canonical(bytes, &skip).unwrap();
        assert!(report.events.is_empty());
        assert_eq!(report.stats.skipped, 1);
    }

    #[test]
    fn format_names_parse() {
        assert_eq!(Format::parse("json"), Some(Format::Json));
        assert_eq!(Format::parse("NDJSON"), Some(Format::Json));
        assert_eq!(Format::parse("logfmt"), Some(Format::Logfmt));
        assert_eq!(Format::parse("csv"), Some(Format::Csv));
        assert_eq!(Format::parse("xml"), None);
        for format in Format::ALL {
            assert_eq!(Format::parse(format.as_str()), Some(format));
        }
    }
}
