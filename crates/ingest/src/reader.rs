//! The streaming front door: bytes → lines → records → events.
//!
//! [`ingest_bytes`] (and [`ingest_reader`] over any [`std::io::Read`]) runs
//! the whole pipeline: gzip auto-detection and decompression, line
//! splitting with CRLF tolerance and a line-length limit, format
//! auto-detection from the first non-blank line, per-format parsing, and
//! mapping-driven resolution — under either error policy.

use crate::csv::{quote_count, CsvParser};
use crate::error::{ErrorPolicy, IngestError};
use crate::gzip::{gunzip, is_gzip};
use crate::mapping::FieldMapping;
use crate::resolve::Resolver;
use crate::{json, logfmt};
use privacy_runtime::Event;
use std::fmt;
use std::io::Read;

/// A supported log line format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// One JSON object per line (NDJSON).
    Json,
    /// `key=value` pairs (logfmt).
    Logfmt,
    /// RFC 4180 CSV with a header row.
    Csv,
}

impl Format {
    /// All formats.
    pub const ALL: [Format; 3] = [Format::Json, Format::Logfmt, Format::Csv];

    /// The format's lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Format::Json => "json",
            Format::Logfmt => "logfmt",
            Format::Csv => "csv",
        }
    }

    /// Parses a format name (as the CLI's `--format` flag spells them).
    pub fn parse(name: &str) -> Option<Format> {
        match name.to_ascii_lowercase().as_str() {
            "json" | "ndjson" | "jsonl" => Some(Format::Json),
            "logfmt" => Some(Format::Logfmt),
            "csv" => Some(Format::Csv),
            _ => None,
        }
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Tuning knobs for one ingest run.
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// The format to parse; `None` auto-detects from the first record line.
    pub format: Option<Format>,
    /// What to do with malformed lines.
    pub policy: ErrorPolicy,
    /// The per-line size limit in bytes (a guard against unbounded memory
    /// on garbage input, not a parsing feature).
    pub max_line_bytes: usize,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions { format: None, policy: ErrorPolicy::default(), max_line_bytes: 1 << 20 }
    }
}

/// One skipped line under [`ErrorPolicy::Skip`].
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    error: IngestError,
}

impl Diagnostic {
    /// The error that caused the skip.
    pub fn error(&self) -> &IngestError {
        &self.error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "skipped: {}", self.error)
    }
}

/// Counters for one ingest run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestStats {
    /// Physical lines seen (including blanks and the CSV header).
    pub lines: u64,
    /// Events successfully resolved.
    pub events: u64,
    /// Lines skipped under [`ErrorPolicy::Skip`].
    pub skipped: u64,
    /// Decompressed input size in bytes.
    pub bytes: u64,
}

/// The result of one ingest run.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestReport {
    /// The resolved events, in input order.
    pub events: Vec<Event>,
    /// One diagnostic per skipped line (empty under
    /// [`ErrorPolicy::FailFast`]).
    pub diagnostics: Vec<Diagnostic>,
    /// Run counters.
    pub stats: IngestStats,
    /// The format that was parsed (declared or detected).
    pub format: Format,
}

/// Ingests a byte buffer (a log file already read into memory).
///
/// # Errors
///
/// Stream-level failures (corrupt gzip, undetectable format) always fail;
/// line-level failures fail or skip per [`IngestOptions::policy`].
pub fn ingest_bytes(
    bytes: &[u8],
    mapping: &FieldMapping,
    options: &IngestOptions,
) -> Result<IngestReport, IngestError> {
    let decompressed;
    let payload = if is_gzip(bytes) {
        decompressed = gunzip(bytes)?;
        &decompressed[..]
    } else {
        bytes
    };
    ingest_payload(payload, mapping, options)
}

/// Ingests from any reader (a file, stdin, a socket). The stream is read to
/// the end first — gzip members cannot be validated incrementally anyway.
///
/// # Errors
///
/// As [`ingest_bytes`], plus [`IngestError::Io`] when the reader fails.
pub fn ingest_reader(
    mut reader: impl Read,
    mapping: &FieldMapping,
    options: &IngestOptions,
) -> Result<IngestReport, IngestError> {
    let mut bytes = Vec::new();
    reader
        .read_to_end(&mut bytes)
        .map_err(|error| IngestError::Io { message: error.to_string() })?;
    ingest_bytes(&bytes, mapping, options)
}

/// Detects the format from the first non-blank line.
fn detect_format(line: &str, line_no: u64) -> Result<Format, IngestError> {
    let trimmed = line.trim_start();
    if trimmed.starts_with('{') {
        return Ok(Format::Json);
    }
    // Logfmt before CSV: a logfmt line's first token carries `=`; a CSV
    // header's first cell never does under the canonical schema, and a
    // comma inside the first whitespace-delimited token is CSV's signature.
    let first_token = trimmed.split([' ', '\t']).next().unwrap_or("");
    if first_token.contains('=') {
        return Ok(Format::Logfmt);
    }
    if trimmed.contains(',') {
        return Ok(Format::Csv);
    }
    Err(IngestError::UnknownFormat { line: line_no })
}

fn ingest_payload(
    payload: &[u8],
    mapping: &FieldMapping,
    options: &IngestOptions,
) -> Result<IngestReport, IngestError> {
    let mut resolver = Resolver::new(mapping.clone());
    let mut events = Vec::new();
    let mut diagnostics = Vec::new();
    let mut stats = IngestStats { bytes: payload.len() as u64, ..IngestStats::default() };
    let mut format = options.format;
    let mut csv = CsvParser::new();
    // A CSV record whose quoted cell spans physical lines, still
    // accumulating: (starting line number, text so far, open-quote parity).
    let mut csv_pending: Option<(u64, String)> = None;

    let mut line_no = 0u64;
    for raw_line in split_lines(payload) {
        line_no += 1;
        stats.lines += 1;

        let fail_or_skip = |error: IngestError,
                            diagnostics: &mut Vec<Diagnostic>,
                            stats: &mut IngestStats|
         -> Result<(), IngestError> {
            if error.is_line_scoped() && options.policy == ErrorPolicy::Skip {
                stats.skipped += 1;
                diagnostics.push(Diagnostic { error });
                Ok(())
            } else {
                Err(error)
            }
        };

        if raw_line.len() > options.max_line_bytes {
            let error = IngestError::LineTooLong {
                line: line_no,
                length: raw_line.len(),
                limit: options.max_line_bytes,
            };
            // A too-long line inside a pending CSV record poisons the whole
            // pending record.
            csv_pending = None;
            fail_or_skip(error, &mut diagnostics, &mut stats)?;
            continue;
        }
        let line = match std::str::from_utf8(raw_line) {
            Ok(line) => line.strip_suffix('\r').unwrap_or(line),
            Err(error) => {
                csv_pending = None;
                let error = IngestError::InvalidUtf8 {
                    line: line_no,
                    column: error.valid_up_to() as u32 + 1,
                };
                fail_or_skip(error, &mut diagnostics, &mut stats)?;
                continue;
            }
        };

        // Blank lines separate nothing; skip them silently (but not inside
        // a pending multi-line CSV cell, where they are content).
        if line.trim().is_empty() && csv_pending.is_none() {
            continue;
        }

        let format = match format {
            Some(format) => format,
            None => {
                let detected = detect_format(line, line_no)?;
                format = Some(detected);
                detected
            }
        };

        let record = match format {
            Format::Json => json::parse_line(line_no, line),
            Format::Logfmt => logfmt::parse_line(line_no, line),
            Format::Csv => {
                // Join physical lines while a quoted cell is open.
                let (start_line, text) = match csv_pending.take() {
                    Some((start_line, mut text)) => {
                        text.push('\n');
                        text.push_str(line);
                        (start_line, text)
                    }
                    None => (line_no, line.to_owned()),
                };
                if quote_count(&text) % 2 == 1 {
                    if text.len() > options.max_line_bytes {
                        // An unbalanced quote must not buffer unboundedly.
                        let error = IngestError::LineTooLong {
                            line: start_line,
                            length: text.len(),
                            limit: options.max_line_bytes,
                        };
                        fail_or_skip(error, &mut diagnostics, &mut stats)?;
                        continue;
                    }
                    csv_pending = Some((start_line, text));
                    continue;
                }
                match csv.parse_record(start_line, &text) {
                    Ok(None) => continue, // header row
                    Ok(Some(record)) => Ok(record),
                    Err(error) => Err(error),
                }
            }
        };

        let outcome = record.and_then(|record| resolver.resolve(&record));
        match outcome {
            Ok(event) => {
                stats.events += 1;
                events.push(event);
            }
            Err(error) => fail_or_skip(error, &mut diagnostics, &mut stats)?,
        }
    }

    // An unterminated quoted cell at end of input.
    if let Some((start_line, text)) = csv_pending {
        let error = match csv.parse_record(start_line, &text) {
            Err(error) => error,
            // Unreachable (odd quote parity cannot parse), but stay total.
            Ok(_) => IngestError::Syntax {
                line: start_line,
                column: 1,
                format: Format::Csv,
                message: "unterminated quoted cell at end of input".to_owned(),
            },
        };
        if !(error.is_line_scoped() && options.policy == ErrorPolicy::Skip) {
            return Err(error);
        }
        stats.skipped += 1;
        diagnostics.push(Diagnostic { error });
    }

    let format = match format {
        Some(format) => format,
        // Nothing but blank lines: report the declared format or default to
        // JSON; there are no events either way.
        None => options.format.unwrap_or(Format::Json),
    };
    Ok(IngestReport { events, diagnostics, stats, format })
}

/// Splits on `\n`, not yielding a trailing empty slice for a final newline.
fn split_lines(payload: &[u8]) -> impl Iterator<Item = &[u8]> {
    let trimmed = payload.strip_suffix(b"\n").unwrap_or(payload);
    let empty = trimmed.is_empty() && payload.is_empty();
    trimmed.split(|&byte| byte == b'\n').filter(move |_| !empty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gzip::gzip_compress_stored;
    use privacy_lts::ActionKind;

    fn canonical(bytes: &[u8], options: &IngestOptions) -> Result<IngestReport, IngestError> {
        ingest_bytes(bytes, &FieldMapping::canonical(), options)
    }

    #[test]
    fn each_format_is_auto_detected_and_parsed() {
        let json = b"{\"seq\": 1, \"user\": \"u\", \"service\": \"s\", \"actor\": \"a\", \
                     \"action\": \"read\", \"fields\": [\"f\"], \"permitted\": true}\n";
        let logfmt = b"seq=1 user=u service=s actor=a action=read fields=f permitted=true\n";
        let csv = b"seq,user,service,actor,action,fields,store,permitted\n1,u,s,a,read,f,,true\n";
        for (bytes, expected) in
            [(&json[..], Format::Json), (&logfmt[..], Format::Logfmt), (&csv[..], Format::Csv)]
        {
            let report = canonical(bytes, &IngestOptions::default()).unwrap();
            assert_eq!(report.format, expected);
            assert_eq!(report.events.len(), 1, "{expected}");
            let event = &report.events[0];
            assert_eq!(event.sequence(), 1);
            assert_eq!(event.action(), ActionKind::Read);
            assert_eq!(event.fields().len(), 1);
            assert!(event.permitted());
        }
    }

    #[test]
    fn gzip_wrapped_input_is_transparent() {
        let plain = b"seq=1 user=u service=s actor=a action=collect\n";
        let archive = gzip_compress_stored(plain);
        let report = canonical(&archive, &IngestOptions::default()).unwrap();
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.stats.bytes, plain.len() as u64);
        assert!(matches!(
            canonical(&archive[..archive.len() - 3], &IngestOptions::default()),
            Err(IngestError::Gzip(_))
        ));
    }

    #[test]
    fn skip_policy_collects_diagnostics_and_keeps_going() {
        let bytes = b"user=u service=s actor=a action=read\n\
                      user=u action=badverb service=s actor=a\n\
                      user=u service=s actor=a action=delete\n";
        let options = IngestOptions { policy: ErrorPolicy::Skip, ..IngestOptions::default() };
        let report = canonical(bytes, &options).unwrap();
        assert_eq!(report.events.len(), 2);
        assert_eq!(report.stats.skipped, 1);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].error().line(), Some(2));
        // Auto-sequencing does not leave a hole for the skipped line.
        assert_eq!(report.events[1].sequence(), 2);

        // Fail-fast stops at the bad line instead.
        assert!(matches!(
            canonical(bytes, &IngestOptions::default()),
            Err(IngestError::BadValue { line: 2, .. })
        ));
    }

    #[test]
    fn multi_line_csv_cells_join_on_quote_parity() {
        let bytes = b"user,service,actor,action,fields\n\"u\nser\",s,a,read,f\n";
        let report = canonical(bytes, &IngestOptions::default()).unwrap();
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.events[0].user().as_str(), "u\nser");
    }

    #[test]
    fn line_limits_utf8_and_unknown_formats_are_typed() {
        let options = IngestOptions { max_line_bytes: 16, ..IngestOptions::default() };
        assert!(matches!(
            canonical(b"user=u service=s actor=a action=read\n", &options),
            Err(IngestError::LineTooLong { line: 1, .. })
        ));
        assert!(matches!(
            canonical(b"user=\xff\xfe service=s\n", &IngestOptions::default()),
            Err(IngestError::InvalidUtf8 { line: 1, column: 6 })
        ));
        assert!(matches!(
            canonical(b"no format markers here\n", &IngestOptions::default()),
            Err(IngestError::UnknownFormat { line: 1 })
        ));
        // Stream-level errors fail even under Skip.
        let skip = IngestOptions { policy: ErrorPolicy::Skip, ..IngestOptions::default() };
        assert!(matches!(
            canonical(b"no format markers here\n", &skip),
            Err(IngestError::UnknownFormat { line: 1 })
        ));
    }

    #[test]
    fn blank_lines_crlf_and_empty_inputs_are_tolerated() {
        let bytes = b"\r\n\nuser=u service=s actor=a action=read\r\n\n";
        let report = canonical(bytes, &IngestOptions::default()).unwrap();
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.stats.lines, 4);

        let empty = canonical(b"", &IngestOptions::default()).unwrap();
        assert!(empty.events.is_empty());
        let blank = canonical(b"\n\n", &IngestOptions::default()).unwrap();
        assert!(blank.events.is_empty());
    }

    #[test]
    fn declared_format_overrides_detection() {
        // A logfmt-looking line parsed as CSV: header with one `=` column.
        let bytes = b"a=1\nb=2\n";
        let options = IngestOptions { format: Some(Format::Csv), ..IngestOptions::default() };
        // Header `a=1`, then record `b=2` — one cell each; mapping fails on
        // a missing user column.
        assert!(matches!(canonical(bytes, &options), Err(IngestError::MissingColumn { .. })));
    }

    #[test]
    fn unterminated_csv_quote_at_eof_is_an_error_fail_fast_and_a_skip_otherwise() {
        let bytes = b"user,service,actor,action\n\"open,s,a,read\n";
        assert!(matches!(
            canonical(bytes, &IngestOptions::default()),
            Err(IngestError::Syntax { .. })
        ));
        let skip = IngestOptions { policy: ErrorPolicy::Skip, ..IngestOptions::default() };
        let report = canonical(bytes, &skip).unwrap();
        assert!(report.events.is_empty());
        assert_eq!(report.stats.skipped, 1);
    }

    #[test]
    fn format_names_parse() {
        assert_eq!(Format::parse("json"), Some(Format::Json));
        assert_eq!(Format::parse("NDJSON"), Some(Format::Json));
        assert_eq!(Format::parse("logfmt"), Some(Format::Logfmt));
        assert_eq!(Format::parse("csv"), Some(Format::Csv));
        assert_eq!(Format::parse("xml"), None);
        for format in Format::ALL {
            assert_eq!(Format::parse(format.as_str()), Some(format));
        }
    }
}
