//! The declarative schema mapping log fields onto event columns.
//!
//! Real logs do not arrive in the monitor's native shape: the user id might
//! be under `subject`, the verb under `op` with values like `write`, the
//! permitted flag absent entirely. A [`FieldMapping`] names, for each
//! logical [`crate::Role`], which record key supplies it, what default (if
//! any) stands in when the key is absent, and how verb spellings map onto
//! [`ActionKind`]s.

use privacy_lts::ActionKind;
use std::collections::BTreeMap;

/// Which log field supplies each event column, with per-field defaults and
/// an action-verb translation table.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldMapping {
    pub(crate) sequence_key: Option<String>,
    pub(crate) user_key: String,
    pub(crate) service_key: String,
    pub(crate) service_default: Option<String>,
    pub(crate) actor_key: String,
    pub(crate) actor_default: Option<String>,
    pub(crate) action_key: String,
    pub(crate) fields_key: Option<String>,
    pub(crate) datastore_key: Option<String>,
    pub(crate) permitted_key: Option<String>,
    pub(crate) permitted_default: bool,
    /// Lowercased verb → action table.
    pub(crate) actions: BTreeMap<String, ActionKind>,
    pub(crate) list_separator: char,
}

impl FieldMapping {
    /// The mapping for the canonical wire schema the synthetic-log emitter
    /// renders (`seq,user,service,actor,action,fields,store,permitted` with
    /// the six canonical verb spellings).
    pub fn canonical() -> Self {
        let mut actions = BTreeMap::new();
        for kind in ActionKind::ALL {
            actions.insert(kind.to_string(), kind);
        }
        FieldMapping {
            sequence_key: Some("seq".to_owned()),
            user_key: "user".to_owned(),
            service_key: "service".to_owned(),
            service_default: None,
            actor_key: "actor".to_owned(),
            actor_default: None,
            action_key: "action".to_owned(),
            fields_key: Some("fields".to_owned()),
            datastore_key: Some("store".to_owned()),
            permitted_key: Some("permitted".to_owned()),
            permitted_default: true,
            actions,
            list_separator: ';',
        }
    }

    /// A permissive mapping for third-party logs: canonical keys plus the
    /// common verb aliases (`write`/`insert` → create, `get`/`select` →
    /// read, `share` → disclose, `remove`/`erase` → delete,
    /// `anonymise`/`anonymize`/`pseudonymise` → anon).
    pub fn with_common_aliases() -> Self {
        let mut mapping = FieldMapping::canonical();
        for (verb, kind) in [
            ("write", ActionKind::Create),
            ("insert", ActionKind::Create),
            ("get", ActionKind::Read),
            ("select", ActionKind::Read),
            ("share", ActionKind::Disclose),
            ("remove", ActionKind::Delete),
            ("erase", ActionKind::Delete),
            ("anonymise", ActionKind::Anon),
            ("anonymize", ActionKind::Anon),
            ("pseudonymise", ActionKind::Anon),
        ] {
            mapping.actions.insert(verb.to_owned(), kind);
        }
        mapping
    }

    /// Uses `key` for the sequence number; `None` auto-assigns sequences.
    pub fn with_sequence_key(mut self, key: Option<impl Into<String>>) -> Self {
        self.sequence_key = key.map(Into::into);
        self
    }

    /// Uses `key` for the data-subject id.
    pub fn with_user_key(mut self, key: impl Into<String>) -> Self {
        self.user_key = key.into();
        self
    }

    /// Uses `key` for the service id.
    pub fn with_service_key(mut self, key: impl Into<String>) -> Self {
        self.service_key = key.into();
        self
    }

    /// Falls back to `default` when the service key is absent.
    pub fn with_service_default(mut self, default: impl Into<String>) -> Self {
        self.service_default = Some(default.into());
        self
    }

    /// Uses `key` for the actor id.
    pub fn with_actor_key(mut self, key: impl Into<String>) -> Self {
        self.actor_key = key.into();
        self
    }

    /// Falls back to `default` when the actor key is absent.
    pub fn with_actor_default(mut self, default: impl Into<String>) -> Self {
        self.actor_default = Some(default.into());
        self
    }

    /// Uses `key` for the action verb.
    pub fn with_action_key(mut self, key: impl Into<String>) -> Self {
        self.action_key = key.into();
        self
    }

    /// Uses `key` for the field list; `None` means events carry no fields.
    pub fn with_fields_key(mut self, key: Option<impl Into<String>>) -> Self {
        self.fields_key = key.map(Into::into);
        self
    }

    /// Uses `key` for the datastore; `None` means events carry none.
    pub fn with_datastore_key(mut self, key: Option<impl Into<String>>) -> Self {
        self.datastore_key = key.map(Into::into);
        self
    }

    /// Uses `key` for the permitted flag; `None` always applies the default.
    pub fn with_permitted_key(mut self, key: Option<impl Into<String>>) -> Self {
        self.permitted_key = key.map(Into::into);
        self
    }

    /// The permitted value assumed when the flag is absent (default `true`:
    /// most service logs record only what actually ran).
    pub fn with_permitted_default(mut self, default: bool) -> Self {
        self.permitted_default = default;
        self
    }

    /// Maps one more verb spelling onto an action (matched
    /// case-insensitively).
    pub fn with_action_alias(mut self, verb: impl Into<String>, kind: ActionKind) -> Self {
        self.actions.insert(verb.into().to_lowercase(), kind);
        self
    }

    /// The separator splitting multi-valued string fields (default `;`).
    pub fn with_list_separator(mut self, separator: char) -> Self {
        self.list_separator = separator;
        self
    }

    /// Looks a verb up, case-insensitively.
    pub fn action_for(&self, verb: &str) -> Option<ActionKind> {
        self.actions.get(verb).or_else(|| self.actions.get(&verb.to_lowercase())).copied()
    }

    /// The verbs the mapping understands, in sorted order (for error
    /// messages and docs).
    pub fn known_verbs(&self) -> impl Iterator<Item = &str> {
        self.actions.keys().map(String::as_str)
    }
}

impl Default for FieldMapping {
    fn default() -> Self {
        FieldMapping::canonical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_mapping_matches_the_emitter_schema() {
        let mapping = FieldMapping::canonical();
        assert_eq!(mapping.sequence_key.as_deref(), Some("seq"));
        assert_eq!(mapping.user_key, "user");
        assert_eq!(mapping.fields_key.as_deref(), Some("fields"));
        assert_eq!(mapping.datastore_key.as_deref(), Some("store"));
        assert!(mapping.permitted_default);
        for kind in ActionKind::ALL {
            assert_eq!(mapping.action_for(&kind.to_string()), Some(kind));
        }
    }

    #[test]
    fn aliases_and_case_folding_resolve() {
        let mapping =
            FieldMapping::with_common_aliases().with_action_alias("PUT", ActionKind::Create);
        assert_eq!(mapping.action_for("write"), Some(ActionKind::Create));
        assert_eq!(mapping.action_for("SELECT"), Some(ActionKind::Read));
        assert_eq!(mapping.action_for("put"), Some(ActionKind::Create));
        assert_eq!(mapping.action_for("transmogrify"), None);
    }

    #[test]
    fn builders_rewire_every_role() {
        let mapping = FieldMapping::canonical()
            .with_sequence_key(None::<String>)
            .with_user_key("subject")
            .with_service_key("svc")
            .with_service_default("portal")
            .with_actor_key("who")
            .with_actor_default("system")
            .with_action_key("op")
            .with_fields_key(Some("cols"))
            .with_datastore_key(None::<String>)
            .with_permitted_key(Some("ok"))
            .with_permitted_default(false)
            .with_list_separator('|');
        assert_eq!(mapping.sequence_key, None);
        assert_eq!(mapping.user_key, "subject");
        assert_eq!(mapping.service_default.as_deref(), Some("portal"));
        assert_eq!(mapping.actor_default.as_deref(), Some("system"));
        assert_eq!(mapping.datastore_key, None);
        assert_eq!(mapping.list_separator, '|');
        assert!(!mapping.permitted_default);
    }
}
