//! Typed ingestion errors with line/column provenance.
//!
//! A production log parser is judged by how it fails: malformed bytes are
//! routine, so every failure mode here is a typed [`IngestError`] carrying
//! where in the stream it happened (1-based line, and a 1-based byte column
//! where one is meaningful) — never a panic, and never a stringly-typed
//! blob the caller has to regex.

use crate::gzip::GzipError;
use crate::reader::Format;
use std::fmt;

/// How the resolver reacts to a malformed line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorPolicy {
    /// Stop at the first malformed line and return its error.
    #[default]
    FailFast,
    /// Skip malformed lines, collecting one diagnostic per skipped line;
    /// the ingest still fails on stream-level errors (unreadable input,
    /// a corrupt gzip archive, an undetectable format).
    Skip,
}

/// The logical column of an event record a value was mapped to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The monotone sequence number.
    Sequence,
    /// The data subject.
    User,
    /// The executing service.
    Service,
    /// The acting actor.
    Actor,
    /// The privacy action verb.
    Action,
    /// The involved field ids.
    Fields,
    /// The datastore.
    Datastore,
    /// The permitted flag.
    Permitted,
}

impl Role {
    /// The role's lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Role::Sequence => "sequence",
            Role::User => "user",
            Role::Service => "service",
            Role::Actor => "actor",
            Role::Action => "action",
            Role::Fields => "fields",
            Role::Datastore => "datastore",
            Role::Permitted => "permitted",
        }
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why a log stream (or one of its lines) could not be ingested.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestError {
    /// The underlying reader failed.
    Io {
        /// The I/O error rendered as text.
        message: String,
    },
    /// The wrapped gzip archive is malformed.
    Gzip(GzipError),
    /// No supported format could be recognised from the first record line.
    UnknownFormat {
        /// The line inspected.
        line: u64,
    },
    /// A line is not valid UTF-8.
    InvalidUtf8 {
        /// The offending line.
        line: u64,
        /// 1-based byte offset of the first invalid byte.
        column: u32,
    },
    /// A line exceeds the configured size limit.
    LineTooLong {
        /// The offending line.
        line: u64,
        /// The line's length in bytes.
        length: usize,
        /// The configured limit in bytes.
        limit: usize,
    },
    /// The line does not parse under the (declared or detected) format.
    Syntax {
        /// The offending line.
        line: u64,
        /// 1-based byte offset into the line.
        column: u32,
        /// The format the parser was applying.
        format: Format,
        /// What went wrong.
        message: String,
    },
    /// A record (or CSV header) names the same key twice.
    DuplicateKey {
        /// The offending line.
        line: u64,
        /// 1-based byte offset of the second occurrence.
        column: u32,
        /// The duplicated key.
        key: String,
    },
    /// A record lacks a mapped column with no configured default.
    MissingColumn {
        /// The offending line.
        line: u64,
        /// The role the mapping wanted to fill.
        role: Role,
        /// The record key the mapping looked for.
        key: String,
    },
    /// A record value cannot be converted to its mapped role.
    BadValue {
        /// The offending line.
        line: u64,
        /// The role the mapping wanted to fill.
        role: Role,
        /// The record key the value came from.
        key: String,
        /// The value, truncated for display.
        value: String,
        /// What went wrong.
        message: String,
    },
    /// A mapped sequence number does not increase.
    NonMonotoneSequence {
        /// The offending line.
        line: u64,
        /// The sequence number the line carried.
        sequence: u64,
        /// The previously accepted sequence number.
        previous: u64,
    },
}

/// Truncates a value for inclusion in an error message, so a hostile
/// megabyte-long field renders as a bounded snippet.
pub(crate) fn snippet(value: &str) -> String {
    const LIMIT: usize = 64;
    if value.len() <= LIMIT {
        return value.to_owned();
    }
    let mut cut = LIMIT;
    while !value.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}… ({} bytes)", &value[..cut], value.len())
}

impl IngestError {
    /// The 1-based line the error is anchored to, when it concerns one line
    /// (stream-level errors — I/O, gzip — have none).
    pub fn line(&self) -> Option<u64> {
        match self {
            IngestError::Io { .. } | IngestError::Gzip(_) => None,
            IngestError::UnknownFormat { line }
            | IngestError::InvalidUtf8 { line, .. }
            | IngestError::LineTooLong { line, .. }
            | IngestError::Syntax { line, .. }
            | IngestError::DuplicateKey { line, .. }
            | IngestError::MissingColumn { line, .. }
            | IngestError::BadValue { line, .. }
            | IngestError::NonMonotoneSequence { line, .. } => Some(*line),
        }
    }

    /// The 1-based byte column within the line, where one is meaningful.
    pub fn column(&self) -> Option<u32> {
        match self {
            IngestError::InvalidUtf8 { column, .. }
            | IngestError::Syntax { column, .. }
            | IngestError::DuplicateKey { column, .. } => Some(*column),
            _ => None,
        }
    }

    /// Whether the error concerns one line (skippable under
    /// [`ErrorPolicy::Skip`]) rather than the whole stream.
    pub fn is_line_scoped(&self) -> bool {
        !matches!(
            self,
            IngestError::Io { .. } | IngestError::Gzip(_) | IngestError::UnknownFormat { .. }
        )
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io { message } => write!(f, "reading log stream: {message}"),
            IngestError::Gzip(error) => write!(f, "gzip: {error}"),
            IngestError::UnknownFormat { line } => {
                write!(f, "line {line}: unrecognised log format (expected JSON, logfmt or CSV)")
            }
            IngestError::InvalidUtf8 { line, column } => {
                write!(f, "line {line}, column {column}: invalid UTF-8")
            }
            IngestError::LineTooLong { line, length, limit } => {
                write!(f, "line {line}: {length} bytes exceeds the {limit}-byte line limit")
            }
            IngestError::Syntax { line, column, format, message } => {
                write!(f, "line {line}, column {column}: {format} syntax: {message}")
            }
            IngestError::DuplicateKey { line, column, key } => {
                write!(f, "line {line}, column {column}: duplicate key `{key}`")
            }
            IngestError::MissingColumn { line, role, key } => {
                write!(f, "line {line}: no `{key}` column for the {role} role")
            }
            IngestError::BadValue { line, role, key, value, message } => {
                write!(f, "line {line}: bad {role} value `{value}` in `{key}`: {message}")
            }
            IngestError::NonMonotoneSequence { line, sequence, previous } => {
                write!(
                    f,
                    "line {line}: sequence {sequence} does not increase past the previous \
                     accepted sequence {previous}"
                )
            }
        }
    }
}

impl std::error::Error for IngestError {}

impl From<GzipError> for IngestError {
    fn from(error: GzipError) -> Self {
        IngestError::Gzip(error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_provenance() {
        let error = IngestError::Syntax {
            line: 12,
            column: 3,
            format: Format::Json,
            message: "unterminated string".to_owned(),
        };
        assert_eq!(error.line(), Some(12));
        assert_eq!(error.column(), Some(3));
        assert!(error.is_line_scoped());
        assert_eq!(error.to_string(), "line 12, column 3: json syntax: unterminated string");
    }

    #[test]
    fn stream_level_errors_have_no_line() {
        let error = IngestError::Io { message: "pipe closed".to_owned() };
        assert_eq!(error.line(), None);
        assert!(!error.is_line_scoped());
        assert!(error.to_string().contains("pipe closed"));
    }

    #[test]
    fn snippets_truncate_on_char_boundaries() {
        assert_eq!(snippet("short"), "short");
        let long = format!("{}é", "x".repeat(63));
        let shown = snippet(&long);
        assert!(shown.starts_with(&"x".repeat(63)));
        assert!(shown.contains("bytes"));
    }
}
