//! Records → [`Event`] resolution.
//!
//! A [`Resolver`] applies a [`FieldMapping`] to the [`RawRecord`]s the
//! format parsers produce, yielding monitor-ready [`Event`]s with monotone
//! sequence numbers. Sequence handling is strict: when the mapping names a
//! sequence key, mapped values must strictly increase (a regression is a
//! typed [`IngestError::NonMonotoneSequence`]); without one, the resolver
//! assigns its own counter.

use crate::error::{snippet, IngestError, Role};
use crate::mapping::FieldMapping;
use crate::record::{RawRecord, RawValue};
use privacy_model::FieldId;
use privacy_runtime::Event;

/// Applies a [`FieldMapping`] to a stream of records.
#[derive(Debug, Clone)]
pub struct Resolver {
    mapping: FieldMapping,
    /// Next auto-assigned sequence.
    next_sequence: u64,
    /// The last accepted mapped sequence, for monotonicity enforcement.
    last_sequence: Option<u64>,
}

impl Resolver {
    /// Creates a resolver over `mapping`; auto-assigned sequences start at 1.
    pub fn new(mapping: FieldMapping) -> Self {
        Resolver { mapping, next_sequence: 1, last_sequence: None }
    }

    /// The mapping the resolver applies.
    pub fn mapping(&self) -> &FieldMapping {
        &self.mapping
    }

    /// The next sequence number the resolver would auto-assign.
    pub fn next_sequence(&self) -> u64 {
        self.next_sequence
    }

    /// Restores the sequence counters from a checkpoint: auto-assignment
    /// continues at `next_sequence`, and mapped sequences must exceed
    /// `next_sequence - 1` (the last accepted one).
    pub fn restore_sequences(&mut self, next_sequence: u64) {
        self.next_sequence = next_sequence.max(1);
        self.last_sequence = next_sequence.checked_sub(2).map(|previous| previous + 1);
    }

    /// Resolves one record into an event.
    ///
    /// # Errors
    ///
    /// Returns a typed, line-anchored [`IngestError`] when a mapped column
    /// is missing without a default, a value cannot be converted, or a
    /// mapped sequence fails to increase. A failed record does not advance
    /// the sequence state, so skipping it is sound.
    pub fn resolve(&mut self, record: &RawRecord) -> Result<Event, IngestError> {
        let line = record.line();
        let mapping = &self.mapping;

        let sequence = match &mapping.sequence_key {
            Some(key) => match record.get(key) {
                None | Some(RawValue::Null) => None,
                Some(value) => {
                    let text = text_of(value, line, Role::Sequence, key)?;
                    let parsed: u64 = text.trim().parse().map_err(|_| IngestError::BadValue {
                        line,
                        role: Role::Sequence,
                        key: key.clone(),
                        value: snippet(text),
                        message: "not a non-negative integer".to_owned(),
                    })?;
                    Some(parsed)
                }
            },
            None => None,
        };

        let user = required_id(record, line, Role::User, &mapping.user_key, None)?;
        let service = required_id(
            record,
            line,
            Role::Service,
            &mapping.service_key,
            mapping.service_default.as_deref(),
        )?;
        let actor = required_id(
            record,
            line,
            Role::Actor,
            &mapping.actor_key,
            mapping.actor_default.as_deref(),
        )?;

        let action_key = &mapping.action_key;
        let verb_value = record.get(action_key).ok_or_else(|| IngestError::MissingColumn {
            line,
            role: Role::Action,
            key: action_key.clone(),
        })?;
        let verb = text_of(verb_value, line, Role::Action, action_key)?;
        let action = mapping.action_for(verb).ok_or_else(|| IngestError::BadValue {
            line,
            role: Role::Action,
            key: action_key.clone(),
            value: snippet(verb),
            message: format!(
                "unknown action verb (known: {})",
                mapping.known_verbs().collect::<Vec<_>>().join(", ")
            ),
        })?;

        let fields: Vec<FieldId> = match &mapping.fields_key {
            None => Vec::new(),
            Some(key) => match record.get(key) {
                None | Some(RawValue::Null) => Vec::new(),
                Some(RawValue::List(items)) => {
                    items.iter().map(|item| FieldId::from(item.as_str())).collect()
                }
                Some(value) => {
                    let text = text_of(value, line, Role::Fields, key)?;
                    split_list(text, mapping.list_separator)
                        .map_err(|message| IngestError::BadValue {
                            line,
                            role: Role::Fields,
                            key: key.clone(),
                            value: snippet(text),
                            message,
                        })?
                        .into_iter()
                        .map(FieldId::from)
                        .collect()
                }
            },
        };

        let datastore = match &mapping.datastore_key {
            None => None,
            Some(key) => match record.get(key) {
                None | Some(RawValue::Null) => None,
                Some(value) => {
                    let text = text_of(value, line, Role::Datastore, key)?;
                    if text.is_empty() {
                        None
                    } else {
                        Some(text.into())
                    }
                }
            },
        };

        let permitted = match &mapping.permitted_key {
            None => mapping.permitted_default,
            Some(key) => match record.get(key) {
                None | Some(RawValue::Null) => mapping.permitted_default,
                Some(RawValue::Bool(flag)) => *flag,
                Some(value) => {
                    let text = text_of(value, line, Role::Permitted, key)?;
                    parse_bool(text).ok_or_else(|| IngestError::BadValue {
                        line,
                        role: Role::Permitted,
                        key: key.clone(),
                        value: snippet(text),
                        message: "expected true/false, yes/no or 1/0".to_owned(),
                    })?
                }
            },
        };

        // All fallible work is done: commit the sequence state.
        let sequence = match sequence {
            Some(mapped) => {
                if let Some(previous) = self.last_sequence {
                    if mapped <= previous {
                        return Err(IngestError::NonMonotoneSequence {
                            line,
                            sequence: mapped,
                            previous,
                        });
                    }
                }
                self.last_sequence = Some(mapped);
                self.next_sequence = mapped + 1;
                mapped
            }
            None => {
                let assigned = self.next_sequence;
                self.next_sequence += 1;
                self.last_sequence = Some(assigned);
                assigned
            }
        };

        Ok(Event::new(sequence, user, service, actor, action, fields, datastore, permitted))
    }
}

/// A required textual id: mapped key, else default, else `MissingColumn`.
fn required_id(
    record: &RawRecord,
    line: u64,
    role: Role,
    key: &str,
    default: Option<&str>,
) -> Result<String, IngestError> {
    match record.get(key) {
        None | Some(RawValue::Null) => match default {
            Some(default) => Ok(default.to_owned()),
            None => Err(IngestError::MissingColumn { line, role, key: key.to_owned() }),
        },
        Some(value) => {
            let text = text_of(value, line, role, key)?;
            if text.is_empty() {
                match default {
                    Some(default) => Ok(default.to_owned()),
                    None => Err(IngestError::BadValue {
                        line,
                        role,
                        key: key.to_owned(),
                        value: String::new(),
                        message: "empty id".to_owned(),
                    }),
                }
            } else {
                Ok(text.to_owned())
            }
        }
    }
}

fn text_of<'v>(
    value: &'v RawValue,
    line: u64,
    role: Role,
    key: &str,
) -> Result<&'v str, IngestError> {
    value.as_text().ok_or_else(|| IngestError::BadValue {
        line,
        role,
        key: key.to_owned(),
        value: snippet(&value.to_string()),
        message: format!("expected text, found a {}", value.type_name()),
    })
}

/// Splits a separator-joined list, honouring `\<sep>` and `\\` escapes (the
/// emitter's inverse). An empty string is the empty list.
fn split_list(text: &str, separator: char) -> Result<Vec<String>, String> {
    if text.is_empty() {
        return Ok(Vec::new());
    }
    let mut items = Vec::new();
    let mut current = String::new();
    let mut chars = text.chars();
    while let Some(ch) = chars.next() {
        if ch == '\\' {
            match chars.next() {
                Some(escaped) if escaped == separator || escaped == '\\' => current.push(escaped),
                Some(other) => return Err(format!("invalid escape `\\{other}` in list")),
                None => return Err("dangling `\\` at end of list".to_owned()),
            }
        } else if ch == separator {
            items.push(std::mem::take(&mut current));
        } else {
            current.push(ch);
        }
    }
    items.push(current);
    Ok(items)
}

fn parse_bool(text: &str) -> Option<bool> {
    match text.trim().to_ascii_lowercase().as_str() {
        "true" | "1" | "yes" => Some(true),
        "false" | "0" | "no" => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privacy_lts::ActionKind;

    fn record(pairs: &[(&str, RawValue)]) -> RawRecord {
        let mut record = RawRecord::new(7);
        for (key, value) in pairs {
            record.push((*key).to_owned(), value.clone());
        }
        record
    }

    fn canonical(pairs: &[(&str, RawValue)]) -> Result<Event, IngestError> {
        Resolver::new(FieldMapping::canonical()).resolve(&record(pairs))
    }

    #[test]
    fn a_full_record_resolves_to_an_event() {
        let event = canonical(&[
            ("seq", RawValue::Number("42".into())),
            ("user", RawValue::Str("u-1".into())),
            ("service", RawValue::Str("portal".into())),
            ("actor", RawValue::Str("nurse".into())),
            ("action", RawValue::Str("read".into())),
            ("fields", RawValue::List(vec!["name".into(), "dob".into()])),
            ("store", RawValue::Str("records".into())),
            ("permitted", RawValue::Bool(false)),
        ])
        .unwrap();
        assert_eq!(event.sequence(), 42);
        assert_eq!(event.user().as_str(), "u-1");
        assert_eq!(event.action(), ActionKind::Read);
        assert_eq!(event.fields().len(), 2);
        assert_eq!(event.datastore().map(|d| d.as_str()), Some("records"));
        assert!(!event.permitted());
    }

    #[test]
    fn separator_joined_fields_unescape() {
        let event = canonical(&[
            ("user", RawValue::Str("u".into())),
            ("service", RawValue::Str("s".into())),
            ("actor", RawValue::Str("a".into())),
            ("action", RawValue::Str("collect".into())),
            ("fields", RawValue::Str(r"plain;with\;semi;back\\slash".into())),
        ])
        .unwrap();
        let fields: Vec<&str> = event.fields().iter().map(|f| f.as_str()).collect();
        assert_eq!(fields, ["back\\slash", "plain", "with;semi"]);
    }

    #[test]
    fn auto_sequences_count_up_and_mapped_sequences_must_increase() {
        let mut resolver = Resolver::new(FieldMapping::canonical());
        let base = |seq: Option<&str>| {
            let mut pairs = vec![
                ("user", RawValue::Str("u".into())),
                ("service", RawValue::Str("s".into())),
                ("actor", RawValue::Str("a".into())),
                ("action", RawValue::Str("read".into())),
            ];
            if let Some(seq) = seq {
                pairs.push(("seq", RawValue::Number(seq.into())));
            }
            record(&pairs)
        };
        assert_eq!(resolver.resolve(&base(None)).unwrap().sequence(), 1);
        assert_eq!(resolver.resolve(&base(None)).unwrap().sequence(), 2);
        assert_eq!(resolver.resolve(&base(Some("10"))).unwrap().sequence(), 10);
        // Auto-assignment continues past the mapped value.
        assert_eq!(resolver.resolve(&base(None)).unwrap().sequence(), 11);
        let error = resolver.resolve(&base(Some("5"))).unwrap_err();
        assert_eq!(error, IngestError::NonMonotoneSequence { line: 7, sequence: 5, previous: 11 });
        // The failed record did not corrupt state.
        assert_eq!(resolver.resolve(&base(Some("12"))).unwrap().sequence(), 12);
    }

    #[test]
    fn defaults_fill_missing_service_actor_and_permitted() {
        let mapping = FieldMapping::canonical()
            .with_service_default("portal")
            .with_actor_default("system")
            .with_permitted_default(false);
        let event = Resolver::new(mapping)
            .resolve(&record(&[
                ("user", RawValue::Str("u".into())),
                ("action", RawValue::Str("delete".into())),
            ]))
            .unwrap();
        assert_eq!(event.service().as_str(), "portal");
        assert_eq!(event.actor().as_str(), "system");
        assert!(!event.permitted());
    }

    #[test]
    fn each_bad_shape_is_a_distinct_typed_error() {
        // Missing user.
        assert!(matches!(
            canonical(&[("action", RawValue::Str("read".into()))]),
            Err(IngestError::MissingColumn { role: Role::User, .. })
        ));
        // Unknown verb.
        assert!(matches!(
            canonical(&[
                ("user", RawValue::Str("u".into())),
                ("service", RawValue::Str("s".into())),
                ("actor", RawValue::Str("a".into())),
                ("action", RawValue::Str("frobnicate".into())),
            ]),
            Err(IngestError::BadValue { role: Role::Action, .. })
        ));
        // Non-numeric sequence.
        assert!(matches!(
            canonical(&[
                ("seq", RawValue::Str("soon".into())),
                ("user", RawValue::Str("u".into())),
                ("service", RawValue::Str("s".into())),
                ("actor", RawValue::Str("a".into())),
                ("action", RawValue::Str("read".into())),
            ]),
            Err(IngestError::BadValue { role: Role::Sequence, .. })
        ));
        // Structured value where text is needed.
        assert!(matches!(
            canonical(&[
                ("user", RawValue::Complex),
                ("service", RawValue::Str("s".into())),
                ("actor", RawValue::Str("a".into())),
                ("action", RawValue::Str("read".into())),
            ]),
            Err(IngestError::BadValue { role: Role::User, .. })
        ));
        // Unparseable permitted flag.
        assert!(matches!(
            canonical(&[
                ("user", RawValue::Str("u".into())),
                ("service", RawValue::Str("s".into())),
                ("actor", RawValue::Str("a".into())),
                ("action", RawValue::Str("read".into())),
                ("permitted", RawValue::Str("maybe".into())),
            ]),
            Err(IngestError::BadValue { role: Role::Permitted, .. })
        ));
        // Bad list escape.
        assert!(matches!(
            canonical(&[
                ("user", RawValue::Str("u".into())),
                ("service", RawValue::Str("s".into())),
                ("actor", RawValue::Str("a".into())),
                ("action", RawValue::Str("read".into())),
                ("fields", RawValue::Str(r"a\q".into())),
            ]),
            Err(IngestError::BadValue { role: Role::Fields, .. })
        ));
    }

    #[test]
    fn empty_datastore_and_absent_fields_resolve_to_none() {
        let event = canonical(&[
            ("user", RawValue::Str("u".into())),
            ("service", RawValue::Str("s".into())),
            ("actor", RawValue::Str("a".into())),
            ("action", RawValue::Str("anon".into())),
            ("store", RawValue::Str(String::new())),
        ])
        .unwrap();
        assert_eq!(event.datastore(), None);
        assert!(event.fields().is_empty());
    }
}
