//! The malformed-input corpus: checked-in broken logs with pinned typed
//! errors, plus a byte-mutation fuzz pass.
//!
//! Each file under `tests/corpus/` is one class of real-world breakage —
//! truncation, invalid UTF-8, mixed formats, duplicate keys, oversized
//! fields, corrupt gzip trailers. The contract under test: every file
//! produces the *pinned* typed [`IngestError`] under fail-fast, behaves as
//! documented under skip, and **nothing in the corpus (or any random
//! mutation of valid input) can panic the ingester**.

use privacy_ingest::{
    ingest_bytes, ErrorPolicy, FieldMapping, GzipError, IngestError, IngestOptions, Role,
};
use privacy_synth::{render_events, LogFormat};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A mapping matching the corpus files' vocabulary (canonical keys, no
/// special defaults).
fn mapping() -> FieldMapping {
    FieldMapping::canonical()
}

fn options(policy: ErrorPolicy) -> IngestOptions {
    IngestOptions { policy, ..IngestOptions::default() }
}

/// Runs one corpus file under both policies and returns the fail-fast
/// error (every corpus file must produce one).
fn fail_fast_error(bytes: &[u8]) -> IngestError {
    ingest_bytes(bytes, &mapping(), &options(ErrorPolicy::FailFast))
        .expect_err("corpus file must fail under fail-fast")
}

/// Skip-mode result: (events, skipped) — or the stream-level error.
fn skip_outcome(bytes: &[u8]) -> Result<(u64, u64), IngestError> {
    ingest_bytes(bytes, &mapping(), &options(ErrorPolicy::Skip))
        .map(|report| (report.stats.events, report.stats.skipped))
}

#[test]
fn truncated_json_line_is_a_syntax_error_and_skippable() {
    let bytes = include_bytes!("corpus/truncated.json");
    assert!(matches!(fail_fast_error(bytes), IngestError::Syntax { line: 2, .. }));
    // Skip mode keeps the good line and drops the truncated one.
    assert_eq!(skip_outcome(bytes).unwrap(), (1, 1));
}

#[test]
fn invalid_utf8_is_pinned_to_its_byte_and_skippable() {
    let bytes = include_bytes!("corpus/invalid_utf8.logfmt");
    let error = fail_fast_error(bytes);
    assert_eq!(error, IngestError::InvalidUtf8 { line: 2, column: 12 });
    assert_eq!(skip_outcome(bytes).unwrap(), (2, 1));
}

#[test]
fn mixed_formats_fail_line_by_line_after_detection() {
    let bytes = include_bytes!("corpus/mixed_formats.log");
    // Line 1 fixes the stream as JSON; the logfmt line is then a JSON
    // syntax error at its first byte.
    assert!(matches!(fail_fast_error(bytes), IngestError::Syntax { line: 2, column: 1, .. }));
    // Skip mode: the JSON line survives, the logfmt and CSV lines do not.
    assert_eq!(skip_outcome(bytes).unwrap(), (1, 2));
}

#[test]
fn duplicate_json_keys_are_rejected_with_the_key_named() {
    let bytes = include_bytes!("corpus/duplicate_keys.json");
    match fail_fast_error(bytes) {
        IngestError::DuplicateKey { line: 1, key, .. } => assert_eq!(key, "user"),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(skip_outcome(bytes).unwrap(), (0, 1));
}

#[test]
fn duplicate_csv_header_columns_poison_the_stream() {
    let bytes = include_bytes!("corpus/duplicate_header.csv");
    match fail_fast_error(bytes) {
        IngestError::DuplicateKey { line: 1, key, .. } => assert_eq!(key, "user"),
        other => panic!("unexpected {other:?}"),
    }
    // The header is line-scoped, so skip mode drops it — but then every
    // data row resolves against no header... which re-primes on the first
    // data row as a header. The rows that follow cannot resolve (no `user`
    // column), so nothing gets through; what matters is: no panic, no
    // events fabricated.
    let (events, _) = skip_outcome(bytes).unwrap();
    assert_eq!(events, 0);
}

#[test]
fn oversized_fields_hit_the_line_limit_not_the_allocator() {
    let bytes = include_bytes!("corpus/huge_field.logfmt");
    let tight = IngestOptions {
        policy: ErrorPolicy::FailFast,
        max_line_bytes: 64 * 1024,
        ..IngestOptions::default()
    };
    match ingest_bytes(bytes, &mapping(), &tight).unwrap_err() {
        IngestError::LineTooLong { line: 2, length, limit } => {
            assert!(length > limit);
            assert_eq!(limit, 64 * 1024);
        }
        other => panic!("unexpected {other:?}"),
    }
    // Skip mode with the tight limit: lines 1 and 3 survive.
    let skip = IngestOptions {
        policy: ErrorPolicy::Skip,
        max_line_bytes: 64 * 1024,
        ..IngestOptions::default()
    };
    let report = ingest_bytes(bytes, &mapping(), &skip).unwrap();
    assert_eq!((report.stats.events, report.stats.skipped), (2, 1));
    // Under the default (1 MiB) limit the huge field is simply a value.
    let report = ingest_bytes(bytes, &mapping(), &options(ErrorPolicy::Skip)).unwrap();
    assert_eq!(report.stats.events, 3);
}

#[test]
fn real_zlib_gzip_decodes_and_its_corruptions_are_stream_fatal() {
    // Control: an archive produced by real zlib deflate must decode.
    let good = include_bytes!("corpus/good.logfmt.gz");
    let report = ingest_bytes(good, &mapping(), &options(ErrorPolicy::FailFast)).unwrap();
    assert_eq!(report.stats.events, 20);

    // A flipped CRC bit is a typed checksum mismatch...
    let bad = include_bytes!("corpus/bad_trailer.logfmt.gz");
    assert!(matches!(fail_fast_error(bad), IngestError::Gzip(GzipError::ChecksumMismatch { .. })));
    // ...and gzip errors are stream-level: skip mode cannot rescue them.
    assert!(matches!(
        skip_outcome(bad),
        Err(IngestError::Gzip(GzipError::ChecksumMismatch { .. }))
    ));

    // A half archive is a typed truncation, under both policies.
    let cut = include_bytes!("corpus/truncated.gz");
    assert!(matches!(fail_fast_error(cut), IngestError::Gzip(GzipError::Truncated { .. })));
    assert!(matches!(skip_outcome(cut), Err(IngestError::Gzip(GzipError::Truncated { .. }))));
}

#[test]
fn unterminated_csv_quote_at_eof_is_typed_under_both_policies() {
    let bytes = include_bytes!("corpus/unterminated_quote.csv");
    assert!(matches!(fail_fast_error(bytes), IngestError::Syntax { line: 2, .. }));
    assert_eq!(skip_outcome(bytes).unwrap(), (0, 1));
}

#[test]
fn undetectable_formats_are_stream_fatal_under_both_policies() {
    let bytes = include_bytes!("corpus/unknown_format.log");
    assert_eq!(fail_fast_error(bytes), IngestError::UnknownFormat { line: 1 });
    assert_eq!(skip_outcome(bytes), Err(IngestError::UnknownFormat { line: 1 }));
}

#[test]
fn the_whole_corpus_never_panics_under_any_declared_format() {
    // Sweep every corpus file through every (declared format, policy)
    // combination — 8 files × 4 formats × 2 policies. Outcomes vary; what
    // is pinned is totality: a typed result every time.
    let corpus: [(&str, &[u8]); 11] = [
        ("truncated.json", include_bytes!("corpus/truncated.json")),
        ("invalid_utf8.logfmt", include_bytes!("corpus/invalid_utf8.logfmt")),
        ("mixed_formats.log", include_bytes!("corpus/mixed_formats.log")),
        ("duplicate_keys.json", include_bytes!("corpus/duplicate_keys.json")),
        ("duplicate_header.csv", include_bytes!("corpus/duplicate_header.csv")),
        ("huge_field.logfmt", include_bytes!("corpus/huge_field.logfmt")),
        ("bad_trailer.logfmt.gz", include_bytes!("corpus/bad_trailer.logfmt.gz")),
        ("good.logfmt.gz", include_bytes!("corpus/good.logfmt.gz")),
        ("truncated.gz", include_bytes!("corpus/truncated.gz")),
        ("unterminated_quote.csv", include_bytes!("corpus/unterminated_quote.csv")),
        ("unknown_format.log", include_bytes!("corpus/unknown_format.log")),
    ];
    use privacy_ingest::Format;
    let formats = [None, Some(Format::Json), Some(Format::Logfmt), Some(Format::Csv)];
    for (_name, bytes) in corpus {
        for format in formats {
            for policy in [ErrorPolicy::FailFast, ErrorPolicy::Skip] {
                let opts = IngestOptions { format, policy, ..IngestOptions::default() };
                // Must return, never panic.
                let _ = ingest_bytes(bytes, &mapping(), &opts);
            }
        }
    }
}

#[test]
fn resolver_errors_carry_their_roles() {
    // One corpus-adjacent check: mapping-level failures (as opposed to
    // parse-level) name the role they could not fill.
    let bytes = b"seq=1 service=portal actor=clerk action=read\n";
    match fail_fast_error(bytes) {
        IngestError::MissingColumn { role, key, .. } => {
            assert_eq!(role, Role::User);
            assert_eq!(key, "user");
        }
        other => panic!("unexpected {other:?}"),
    }
}

/// Renders a small seeded event stream for mutation (valid input to start
/// from, varied by `seed`).
fn valid_log(seed: u64, format: LogFormat) -> Vec<u8> {
    use privacy_lts::ActionKind;
    use privacy_model::FieldId;
    use privacy_runtime::Event;
    let mut rng = StdRng::seed_from_u64(seed);
    let events: Vec<Event> = (0..rng.gen_range(2..10usize))
        .map(|i| {
            let fields: Vec<FieldId> = (0..rng.gen_range(0..3usize))
                .map(|j| FieldId::from(format!("field-{j}").as_str()))
                .collect();
            Event::new(
                (i as u64 + 1) * 2,
                format!("user-{}", rng.gen_range(0..5u32)),
                "portal",
                "clerk",
                ActionKind::ALL[rng.gen_range(0..ActionKind::ALL.len())],
                fields,
                None,
                rng.gen_bool(0.9),
            )
        })
        .collect();
    render_events(&events, format).into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Byte-mutation fuzz: take a valid rendered log, flip/insert/delete a
    /// handful of bytes, and ingest under both policies (and the gzip
    /// wrapper). The only acceptable outcomes are `Ok` or a typed error —
    /// a panic fails the test by construction.
    #[test]
    fn mutated_logs_never_panic(seed in 0u64..1 << 48, mutations in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let format = LogFormat::ALL[(seed % 3) as usize];
        let mut bytes = valid_log(seed, format);
        for _ in 0..mutations {
            if bytes.is_empty() {
                break;
            }
            let at = rng.gen_range(0..bytes.len());
            match rng.gen_range(0..3u32) {
                0 => bytes[at] ^= 1 << rng.gen_range(0..8u32),
                1 => bytes[at] = rng.gen_range(0..=255u32) as u8,
                _ => {
                    bytes.remove(at);
                }
            }
        }
        for policy in [ErrorPolicy::FailFast, ErrorPolicy::Skip] {
            let _ = ingest_bytes(&bytes, &mapping(), &options(policy));
        }
        // And the same mutated bytes wrapped as (then corrupted after)
        // gzip: exercises the inflate error paths from arbitrary input.
        let mut archive = privacy_ingest::gzip_compress_stored(&bytes);
        let at = rng.gen_range(0..archive.len());
        archive[at] ^= 1 << rng.gen_range(0..8u32);
        let _ = ingest_bytes(&archive, &mapping(), &options(ErrorPolicy::Skip));
    }
}
