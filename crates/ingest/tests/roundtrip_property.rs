//! Round-trip property tests: what the emitter renders, the ingester
//! parses back — exactly.
//!
//! Two oracles, per wire format (and the gzip wrapping):
//!
//! 1. **Event equality** — `render → ingest` returns a bit-identical
//!    `Vec<Event>`, including on adversarial ids stuffed with separators,
//!    quotes, escapes, unicode and embedded newlines;
//! 2. **Alert equality** — an [`IndexedMonitor`] fed the parsed events
//!    emits exactly the alerts of one fed the originals, over a realistic
//!    seeded healthcare workload.

use privacy_core::casestudy;
use privacy_ingest::{
    gunzip, gzip_compress_stored, ingest_bytes, FieldMapping, Format, IngestOptions,
};
use privacy_lts::{ActionKind, LtsIndex};
use privacy_model::{FieldId, Record, ServiceId, UserProfile};
use privacy_runtime::{Event, IndexedMonitor, ServiceEngine};
use privacy_synth::{
    random_profiles, random_workload, render_events, LogFormat, ProfileGeneratorConfig,
    WorkloadConfig, CSV_HEADER,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Id fragments chosen to stress every quoting/escaping path: separators,
/// quotes, backslashes, `=`, unicode, spaces, and embedded newlines.
const NASTY: &[&str] = &[
    "plain",
    "with space",
    "comma,inside",
    "semi;colon",
    "quo\"te",
    "back\\slash",
    "key=value",
    "tab\there",
    "new\nline",
    "Zürich",
    "東京",
    "emoji😀",
    "trailing ",
    " leading",
    "{brace}",
    "a;b;c",
    "\\;",
];

fn nasty_id(rng: &mut StdRng) -> String {
    let parts = rng.gen_range(1..=2usize);
    let mut id = String::new();
    for i in 0..parts {
        if i > 0 {
            id.push('-');
        }
        id.push_str(NASTY[rng.gen_range(0..NASTY.len())]);
    }
    id
}

fn arbitrary_events(seed: u64, count: usize) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sequence = 0u64;
    (0..count)
        .map(|_| {
            sequence += rng.gen_range(1..=3u64);
            let field_count = rng.gen_range(0..=4usize);
            let fields: Vec<FieldId> =
                (0..field_count).map(|_| FieldId::from(nasty_id(&mut rng).as_str())).collect();
            let datastore =
                if rng.gen_bool(0.5) { Some(nasty_id(&mut rng).as_str().into()) } else { None };
            let action = ActionKind::ALL[rng.gen_range(0..ActionKind::ALL.len())];
            Event::new(
                sequence,
                nasty_id(&mut rng).as_str(),
                nasty_id(&mut rng).as_str(),
                nasty_id(&mut rng).as_str(),
                action,
                fields,
                datastore,
                rng.gen_bool(0.8),
            )
        })
        .collect()
}

fn wire_format(format: LogFormat) -> Format {
    match format {
        LogFormat::Json => Format::Json,
        LogFormat::Logfmt => Format::Logfmt,
        LogFormat::Csv => Format::Csv,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rendering then ingesting arbitrary adversarial events is lossless,
    /// in every format, with auto-detection and with the format declared.
    #[test]
    fn render_parse_is_identity(seed in 0u64..1 << 48, count in 1usize..40) {
        let events = arbitrary_events(seed, count);
        let mapping = FieldMapping::canonical();
        for format in LogFormat::ALL {
            let rendered = render_events(&events, format);
            for declared in [None, Some(wire_format(format))] {
                let options = IngestOptions { format: declared, ..IngestOptions::default() };
                let report = ingest_bytes(rendered.as_bytes(), &mapping, &options)
                    .unwrap_or_else(|e| panic!("{format} ingest failed: {e}\n{rendered}"));
                prop_assert_eq!(&report.events, &events);
                prop_assert_eq!(report.format, wire_format(format));
                prop_assert_eq!(report.stats.skipped, 0);
            }
        }
    }

    /// The gzip wrapping is transparent: compress → ingest equals plain
    /// ingest, and gunzip inverts the compressor exactly.
    #[test]
    fn gzip_wrapping_is_transparent(seed in 0u64..1 << 48, count in 1usize..24) {
        let events = arbitrary_events(seed, count);
        let mapping = FieldMapping::canonical();
        for format in LogFormat::ALL {
            let rendered = render_events(&events, format);
            let archive = gzip_compress_stored(rendered.as_bytes());
            prop_assert_eq!(gunzip(&archive).unwrap(), rendered.as_bytes());
            let report =
                ingest_bytes(&archive, &mapping, &IngestOptions::default()).unwrap();
            prop_assert_eq!(&report.events, &events);
        }
    }
}

/// A seeded healthcare event stream (the runtime benches' construction,
/// shrunk to test size).
fn healthcare_stream() -> (Vec<Event>, Vec<UserProfile>, privacy_core::PrivacySystem) {
    let system = casestudy::healthcare().expect("healthcare model builds");
    let catalog = system.catalog();
    let fields: Vec<FieldId> = catalog.fields().map(|f| f.id().clone()).collect();
    let services: Vec<(ServiceId, f64)> =
        catalog.services().map(|s| (s.id().clone(), 1.0)).collect();
    let users = random_profiles(&ProfileGeneratorConfig {
        count: 48,
        seed: 13,
        services: catalog.services().map(|s| s.id().clone()).collect(),
        consent_probability: 0.5,
        fields: fields.clone(),
        sensitivity_probability: 0.6,
    });
    let workload = random_workload(&WorkloadConfig {
        length: 600,
        seed: 17,
        users: users.iter().map(|u| u.id().clone()).collect(),
        services,
    });
    let mut engine =
        ServiceEngine::new(catalog.clone(), system.dataflows().clone(), system.policy().clone());
    for request in &workload {
        let record = fields
            .iter()
            .fold(Record::new(), |record, field| record.with(field.clone(), format!("v-{field}")));
        let _ = engine.execute(request.user(), request.service(), &record);
    }
    let events = engine.log().events().to_vec();
    (events, users, system)
}

#[test]
fn monitor_alerts_are_identical_through_every_wire_format() {
    let (events, users, system) = healthcare_stream();
    assert!(!events.is_empty());
    let lts = system.generate_lts().expect("LTS generates");
    let index = Arc::new(LtsIndex::build(&lts));
    let mut proto =
        IndexedMonitor::new(system.catalog().clone(), system.policy().clone(), Arc::clone(&index));
    for user in &users {
        proto.register_user(user);
    }
    let direct_alerts = proto.clone().ingest_batch(&events);
    assert!(!direct_alerts.is_empty(), "the reference stream should raise alerts");

    let mapping = FieldMapping::canonical();
    for format in LogFormat::ALL {
        let rendered = render_events(&events, format);
        let report =
            ingest_bytes(rendered.as_bytes(), &mapping, &IngestOptions::default()).unwrap();
        assert_eq!(report.events, events, "{format} round trip");
        let parsed_alerts = proto.clone().ingest_batch(&report.events);
        assert_eq!(parsed_alerts, direct_alerts, "{format} alert stream");
    }
    // And through the gzip wrapping.
    let archive = gzip_compress_stored(render_events(&events, LogFormat::Json).as_bytes());
    let report = ingest_bytes(&archive, &mapping, &IngestOptions::default()).unwrap();
    let parsed_alerts = proto.clone().ingest_batch(&report.events);
    assert_eq!(parsed_alerts, direct_alerts, "json.gz alert stream");
}

#[test]
fn csv_header_matches_the_canonical_mapping() {
    // The emitter's header and the canonical mapping must agree on every
    // column name, or CSV round trips break silently.
    let events = arbitrary_events(5, 3);
    let rendered = render_events(&events, LogFormat::Csv);
    assert!(rendered.starts_with(CSV_HEADER));
    let report =
        ingest_bytes(rendered.as_bytes(), &FieldMapping::canonical(), &IngestOptions::default())
            .unwrap();
    assert_eq!(report.events, events);
}
