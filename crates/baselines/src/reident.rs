//! ARX-style re-identification risk under the standard attacker models.
//!
//! The ARX anonymisation tool reports re-identification risk under three
//! attacker models (Prasser & Kohlmayer, 2015):
//!
//! * **prosecutor** — the adversary knows their target is in the released
//!   dataset; the risk of a record is `1 / |equivalence class|`;
//! * **journalist** — the adversary only knows the target is in the wider
//!   population; the risk of a record is `1 / |population class|` for the
//!   class the record generalises to;
//! * **marketer** — the adversary wants to re-identify as many records as
//!   possible; the risk is the expected fraction of re-identified records,
//!   `|classes| / |records|`.
//!
//! These complement the paper's *value* risk: re-identification risk ignores
//! what an adversary learns about sensitive values, which is exactly the gap
//! the paper's Table I illustrates.

use privacy_anonymity::kanon::equivalence_classes;
use privacy_model::{Dataset, FieldId};
use std::fmt;

/// Summary of re-identification risk for one release and attacker model.
#[derive(Debug, Clone, PartialEq)]
pub struct ReidentificationRisk {
    /// The attacker model name.
    pub model: &'static str,
    /// The highest per-record risk.
    pub max_risk: f64,
    /// The average per-record risk.
    pub average_risk: f64,
    /// The fraction of records whose risk is at least 0.5.
    pub at_high_risk: f64,
}

impl fmt::Display for ReidentificationRisk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} risk: max {:.3}, average {:.3}, {:.0}% of records at high risk",
            self.model,
            self.max_risk,
            self.average_risk,
            self.at_high_risk * 100.0
        )
    }
}

/// Prosecutor-model risk of a release.
pub fn prosecutor_risk(release: &Dataset, quasi_identifiers: &[FieldId]) -> ReidentificationRisk {
    let classes = equivalence_classes(release, quasi_identifiers);
    let total = release.len();
    if total == 0 {
        return empty("prosecutor");
    }
    let mut per_record = Vec::with_capacity(total);
    for class in &classes {
        let risk = 1.0 / class.len() as f64;
        per_record.extend(std::iter::repeat_n(risk, class.len()));
    }
    summarise("prosecutor", &per_record)
}

/// Journalist-model risk: each released record's risk is `1 / |population
/// class|`, where the population class is computed over `population` using
/// the same (generalised) quasi-identifier values.
pub fn journalist_risk(
    release: &Dataset,
    population: &Dataset,
    quasi_identifiers: &[FieldId],
) -> ReidentificationRisk {
    if release.is_empty() {
        return empty("journalist");
    }
    let population_classes = equivalence_classes(population, quasi_identifiers);
    let per_record: Vec<f64> = release
        .iter()
        .map(|record| {
            let key = record.class_key(quasi_identifiers.iter());
            population_classes
                .iter()
                .find(|class| class.key() == key)
                .map(|class| 1.0 / class.len() as f64)
                // A released record absent from the population table is
                // unique as far as the adversary can tell.
                .unwrap_or(1.0)
        })
        .collect();
    summarise("journalist", &per_record)
}

/// Marketer-model risk: the expected fraction of records an adversary can
/// re-identify, `|classes| / |records|`.
pub fn marketer_risk(release: &Dataset, quasi_identifiers: &[FieldId]) -> ReidentificationRisk {
    let total = release.len();
    if total == 0 {
        return empty("marketer");
    }
    let classes = equivalence_classes(release, quasi_identifiers);
    let risk = classes.len() as f64 / total as f64;
    ReidentificationRisk {
        model: "marketer",
        max_risk: risk,
        average_risk: risk,
        at_high_risk: if risk >= 0.5 { 1.0 } else { 0.0 },
    }
}

fn summarise(model: &'static str, per_record: &[f64]) -> ReidentificationRisk {
    let total = per_record.len() as f64;
    ReidentificationRisk {
        model,
        max_risk: per_record.iter().copied().fold(0.0, f64::max),
        average_risk: per_record.iter().sum::<f64>() / total,
        at_high_risk: per_record.iter().filter(|r| **r >= 0.5).count() as f64 / total,
    }
}

fn empty(model: &'static str) -> ReidentificationRisk {
    ReidentificationRisk { model, max_risk: 0.0, average_risk: 0.0, at_high_risk: 0.0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privacy_model::{Record, Value};

    fn age() -> FieldId {
        FieldId::new("Age")
    }

    fn release_2anon() -> Dataset {
        // Three classes of size 2 (the Table I shape projected to one QI
        // combination).
        Dataset::from_records(
            [age()],
            [
                Value::interval(30.0, 40.0),
                Value::interval(30.0, 40.0),
                Value::interval(20.0, 30.0),
                Value::interval(20.0, 30.0),
                Value::interval(10.0, 20.0),
                Value::interval(10.0, 20.0),
            ]
            .into_iter()
            .map(|band| Record::new().with("Age", band)),
        )
    }

    #[test]
    fn prosecutor_risk_is_inverse_class_size() {
        let risk = prosecutor_risk(&release_2anon(), &[age()]);
        assert_eq!(risk.max_risk, 0.5);
        assert_eq!(risk.average_risk, 0.5);
        assert_eq!(risk.at_high_risk, 1.0);
        assert!(risk.to_string().contains("prosecutor"));
    }

    #[test]
    fn unique_records_have_maximal_prosecutor_risk() {
        let unique =
            Dataset::from_records([age()], (0..4).map(|i| Record::new().with("Age", i as i64)));
        let risk = prosecutor_risk(&unique, &[age()]);
        assert_eq!(risk.max_risk, 1.0);
        assert_eq!(risk.average_risk, 1.0);
    }

    #[test]
    fn journalist_risk_uses_the_population_table() {
        let release = release_2anon();
        // Population has 4 members of each class: journalist risk 0.25.
        let population = Dataset::from_records(
            [age()],
            [
                (30.0, 40.0),
                (30.0, 40.0),
                (30.0, 40.0),
                (30.0, 40.0),
                (20.0, 30.0),
                (20.0, 30.0),
                (20.0, 30.0),
                (20.0, 30.0),
                (10.0, 20.0),
                (10.0, 20.0),
                (10.0, 20.0),
                (10.0, 20.0),
            ]
            .into_iter()
            .map(|(lo, hi)| Record::new().with("Age", Value::interval(lo, hi))),
        );
        let risk = journalist_risk(&release, &population, &[age()]);
        assert_eq!(risk.max_risk, 0.25);
        assert_eq!(risk.at_high_risk, 0.0);
        // Journalist risk is never higher than prosecutor risk for the same
        // release when the population contains the sample.
        assert!(risk.max_risk <= prosecutor_risk(&release, &[age()]).max_risk);
    }

    #[test]
    fn journalist_risk_defaults_to_one_for_unknown_classes() {
        let release = release_2anon();
        let empty_population = Dataset::new([age()]);
        let risk = journalist_risk(&release, &empty_population, &[age()]);
        assert_eq!(risk.max_risk, 1.0);
    }

    #[test]
    fn marketer_risk_is_classes_over_records() {
        let risk = marketer_risk(&release_2anon(), &[age()]);
        assert_eq!(risk.average_risk, 0.5);
        assert_eq!(risk.at_high_risk, 1.0);

        let unique =
            Dataset::from_records([age()], (0..4).map(|i| Record::new().with("Age", i as i64)));
        assert_eq!(marketer_risk(&unique, &[age()]).average_risk, 1.0);
    }

    #[test]
    fn empty_releases_have_zero_risk() {
        let empty = Dataset::new([age()]);
        assert_eq!(prosecutor_risk(&empty, &[age()]).max_risk, 0.0);
        assert_eq!(marketer_risk(&empty, &[age()]).max_risk, 0.0);
        assert_eq!(journalist_risk(&empty, &empty, &[age()]).max_risk, 0.0);
    }
}
