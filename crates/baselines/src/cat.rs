//! CAT-style per-record disclosure risk.
//!
//! The Cornell Anonymization Toolkit evaluates *"the disclosure risks of each
//! record in anonymised data based on user specified assumptions about the
//! adversary's background knowledge"* (Xiao, Wang & Gehrke, 2009). Here the
//! background knowledge is the set of quasi-identifier columns (and their
//! precision) the adversary is assumed to know about their target; a record's
//! disclosure risk is the reciprocal of the number of released records
//! consistent with that knowledge.

use privacy_model::{Dataset, FieldId, Value};
use std::collections::BTreeMap;
use std::fmt;

/// The adversary's assumed background knowledge about one target: exact
/// values for some quasi-identifiers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BackgroundKnowledge {
    known: BTreeMap<FieldId, Value>,
}

impl BackgroundKnowledge {
    /// No background knowledge.
    pub fn none() -> Self {
        BackgroundKnowledge::default()
    }

    /// Builder-style: the adversary knows the target's value for a field.
    pub fn knows(mut self, field: impl Into<FieldId>, value: impl Into<Value>) -> Self {
        self.known.insert(field.into(), value.into());
        self
    }

    /// The known fields.
    pub fn fields(&self) -> impl Iterator<Item = (&FieldId, &Value)> {
        self.known.iter()
    }

    /// Number of known fields.
    pub fn len(&self) -> usize {
        self.known.len()
    }

    /// Returns `true` if nothing is known.
    pub fn is_empty(&self) -> bool {
        self.known.is_empty()
    }

    /// Returns `true` if a released record is consistent with this knowledge
    /// (every known value is covered by the record's — possibly generalised —
    /// value).
    pub fn matches(&self, record: &privacy_model::Record) -> bool {
        self.known.iter().all(|(field, known_value)| {
            record
                .get(field)
                .map(|released| released.covers(known_value) || released == known_value)
                .unwrap_or(false)
        })
    }
}

impl fmt::Display for BackgroundKnowledge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "background knowledge of {} fields", self.known.len())
    }
}

/// The per-record disclosure risks of a release for one adversary: for each
/// record index, `1 / |records consistent with the knowledge|` if the record
/// itself is consistent, `0.0` otherwise.
pub fn record_disclosure_risks(release: &Dataset, knowledge: &BackgroundKnowledge) -> Vec<f64> {
    let matching: Vec<usize> = release
        .iter()
        .enumerate()
        .filter(|(_, record)| knowledge.matches(record))
        .map(|(index, _)| index)
        .collect();
    let risk = if matching.is_empty() { 0.0 } else { 1.0 / matching.len() as f64 };
    (0..release.len()).map(|index| if matching.contains(&index) { risk } else { 0.0 }).collect()
}

/// The indices of the records whose disclosure risk reaches `threshold`.
pub fn records_at_risk(
    release: &Dataset,
    knowledge: &BackgroundKnowledge,
    threshold: f64,
) -> Vec<usize> {
    record_disclosure_risks(release, knowledge)
        .into_iter()
        .enumerate()
        .filter(|(_, risk)| *risk >= threshold)
        .map(|(index, _)| index)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use privacy_model::Record;

    fn release() -> Dataset {
        Dataset::from_records(
            [FieldId::new("Age"), FieldId::new("Height"), FieldId::new("Weight")],
            [
                (30.0, 40.0, 180.0, 200.0, 100.0),
                (30.0, 40.0, 180.0, 200.0, 102.0),
                (20.0, 30.0, 180.0, 200.0, 110.0),
                (20.0, 30.0, 160.0, 180.0, 80.0),
            ]
            .into_iter()
            .map(|(alo, ahi, hlo, hhi, w)| {
                Record::new()
                    .with("Age", Value::interval(alo, ahi))
                    .with("Height", Value::interval(hlo, hhi))
                    .with("Weight", w)
            }),
        )
    }

    #[test]
    fn no_knowledge_spreads_risk_over_the_whole_release() {
        let risks = record_disclosure_risks(&release(), &BackgroundKnowledge::none());
        assert_eq!(risks, vec![0.25; 4]);
        assert!(records_at_risk(&release(), &BackgroundKnowledge::none(), 0.5).is_empty());
    }

    #[test]
    fn knowing_the_age_band_narrows_the_candidates() {
        let knowledge = BackgroundKnowledge::none().knows("Age", 35i64);
        let risks = record_disclosure_risks(&release(), &knowledge);
        // Two records cover age 35.
        assert_eq!(risks[0], 0.5);
        assert_eq!(risks[1], 0.5);
        assert_eq!(risks[2], 0.0);
        assert_eq!(risks[3], 0.0);
        assert_eq!(records_at_risk(&release(), &knowledge, 0.5), vec![0, 1]);
    }

    #[test]
    fn knowing_more_fields_can_single_out_a_record() {
        let knowledge = BackgroundKnowledge::none().knows("Age", 25i64).knows("Height", 165i64);
        let risks = record_disclosure_risks(&release(), &knowledge);
        assert_eq!(risks[3], 1.0);
        assert_eq!(risks.iter().filter(|r| **r > 0.0).count(), 1);
        assert_eq!(records_at_risk(&release(), &knowledge, 0.9), vec![3]);
        assert_eq!(knowledge.len(), 2);
        assert!(!knowledge.is_empty());
    }

    #[test]
    fn inconsistent_knowledge_matches_nothing() {
        let knowledge = BackgroundKnowledge::none().knows("Age", 70i64);
        let risks = record_disclosure_risks(&release(), &knowledge);
        assert!(risks.iter().all(|r| *r == 0.0));
    }

    #[test]
    fn knowledge_about_unreleased_fields_matches_nothing() {
        let knowledge = BackgroundKnowledge::none().knows("ShoeSize", 42i64);
        let risks = record_disclosure_risks(&release(), &knowledge);
        assert!(risks.iter().all(|r| *r == 0.0));
        assert!(knowledge.to_string().contains("1 fields"));
        assert_eq!(knowledge.fields().count(), 1);
    }

    #[test]
    fn exact_value_knowledge_matches_exact_columns() {
        let knowledge = BackgroundKnowledge::none().knows("Weight", 100.0);
        let risks = record_disclosure_risks(&release(), &knowledge);
        assert_eq!(risks[0], 1.0);
        assert_eq!(risks.iter().filter(|r| **r > 0.0).count(), 1);
    }
}
