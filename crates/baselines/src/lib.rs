//! # privacy-baselines
//!
//! Baseline / comparator analysers drawn from the paper's related-work
//! section (Section V). The paper positions its model-driven method against
//! existing tools; to let the benchmarks make those comparisons concrete,
//! this crate implements simplified but faithful versions of the analyses
//! those tools provide:
//!
//! * [`reident`] — ARX-style re-identification risk under the prosecutor,
//!   journalist and marketer attacker models;
//! * [`cat`] — Cornell Anonymization Toolkit (CAT)-style per-record
//!   disclosure risk under explicit adversary background knowledge;
//! * [`linddun`] — a LINDDUN-style privacy-threat-catalogue pass over the
//!   data-flow diagrams (design-time threat elicitation without a formal
//!   model);
//! * [`fsm`] — a hand-crafted finite-state-machine specification of the
//!   Medical Service in the style of Fischer-Hübner and Kosa, used to
//!   compare manual specification effort against the automatically
//!   generated LTS.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cat;
pub mod fsm;
pub mod linddun;
pub mod reident;

pub use cat::{record_disclosure_risks, records_at_risk, BackgroundKnowledge};
pub use fsm::{handcrafted_medical_service_fsm, HandcraftedFsm};
pub use linddun::{threat_catalogue_pass, Threat, ThreatCategory};
pub use reident::{journalist_risk, marketer_risk, prosecutor_risk, ReidentificationRisk};

/// Convenience re-export of the most commonly used items.
pub mod prelude {
    pub use crate::cat::{record_disclosure_risks, records_at_risk, BackgroundKnowledge};
    pub use crate::fsm::{handcrafted_medical_service_fsm, HandcraftedFsm};
    pub use crate::linddun::{threat_catalogue_pass, Threat, ThreatCategory};
    pub use crate::reident::{
        journalist_risk, marketer_risk, prosecutor_risk, ReidentificationRisk,
    };
}
