//! A hand-crafted finite-state-machine specification of the Medical Service.
//!
//! Fischer-Hübner & Ott (1998) and Kosa (2015) specify privacy state machines
//! by hand. To quantify what the paper's automatic generation buys, this
//! module contains such a hand-written machine for the Medical Service of
//! Fig. 1, plus helpers to compare it with an automatically generated LTS
//! (state/transition counts and missing behaviours).

use std::collections::BTreeSet;
use std::fmt;

/// A hand-written finite state machine: states are plain strings, transitions
/// are (from, action, to) triples.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HandcraftedFsm {
    states: BTreeSet<String>,
    initial: String,
    transitions: Vec<(String, String, String)>,
}

impl HandcraftedFsm {
    /// Creates an FSM with the given initial state.
    pub fn new(initial: impl Into<String>) -> Self {
        let initial = initial.into();
        let mut states = BTreeSet::new();
        states.insert(initial.clone());
        HandcraftedFsm { states, initial, transitions: Vec::new() }
    }

    /// Adds a transition (registering both endpoint states).
    pub fn transition(
        mut self,
        from: impl Into<String>,
        action: impl Into<String>,
        to: impl Into<String>,
    ) -> Self {
        let from = from.into();
        let to = to.into();
        self.states.insert(from.clone());
        self.states.insert(to.clone());
        self.transitions.push((from, action.into(), to));
        self
    }

    /// The initial state.
    pub fn initial(&self) -> &str {
        &self.initial
    }

    /// The states.
    pub fn states(&self) -> &BTreeSet<String> {
        &self.states
    }

    /// The transitions.
    pub fn transitions(&self) -> &[(String, String, String)] {
        &self.transitions
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// The actions used by the machine.
    pub fn actions(&self) -> BTreeSet<&str> {
        self.transitions.iter().map(|(_, action, _)| action.as_str()).collect()
    }
}

impl fmt::Display for HandcraftedFsm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hand-crafted FSM: {} states, {} transitions",
            self.state_count(),
            self.transition_count()
        )
    }
}

/// The hand-written Medical Service machine in the style of the prior work:
/// it tracks only the coarse progress of the service (booked → consulted →
/// recorded → reviewed), not per-actor/per-field privacy variables — which is
/// exactly the information the generated LTS adds.
pub fn handcrafted_medical_service_fsm() -> HandcraftedFsm {
    HandcraftedFsm::new("initial")
        .transition("initial", "collect(Receptionist, booking details)", "booked")
        .transition("booked", "create(Receptionist, appointment)", "appointment stored")
        .transition("appointment stored", "read(Doctor, appointment)", "consultation")
        .transition("consultation", "collect(Doctor, medical issues)", "examined")
        .transition("examined", "create(Doctor, diagnosis)", "record stored")
        .transition("record stored", "read(Nurse, treatment)", "treatment administered")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handcrafted_machine_covers_the_medical_service_steps() {
        let fsm = handcrafted_medical_service_fsm();
        assert_eq!(fsm.state_count(), 7);
        assert_eq!(fsm.transition_count(), 6);
        assert_eq!(fsm.initial(), "initial");
        assert!(fsm.states().contains("record stored"));
        let actions = fsm.actions();
        assert!(actions.iter().any(|a| a.starts_with("collect")));
        assert!(actions.iter().any(|a| a.starts_with("create")));
        assert!(actions.iter().any(|a| a.starts_with("read")));
        assert!(fsm.to_string().contains("7 states"));
    }

    #[test]
    fn transitions_register_their_states() {
        let fsm = HandcraftedFsm::new("a").transition("a", "go", "b").transition("b", "go", "c");
        assert_eq!(fsm.state_count(), 3);
        assert_eq!(fsm.transitions().len(), 2);
        assert_eq!(fsm.transitions()[0].1, "go");
    }

    #[test]
    fn handcrafted_machine_lacks_per_actor_privacy_variables() {
        // The point of the comparison: the hand-written states carry no
        // has/could information, so questions like "can the administrator
        // identify the diagnosis?" cannot even be phrased against it.
        let fsm = handcrafted_medical_service_fsm();
        assert!(fsm.states().iter().all(|s| !s.contains("Administrator")));
        assert!(fsm.states().iter().all(|s| !s.contains("has(")));
    }
}
