//! A LINDDUN-style privacy-threat-catalogue pass over the data-flow model.
//!
//! LINDDUN (Deng et al., 2011) elicits privacy threats by walking a data-flow
//! diagram and, for every element, consulting a catalogue of threat types:
//! Linkability, Identifiability, Non-repudiation, Detectability, Disclosure
//! of information, Unawareness and Non-compliance. Unlike the paper's
//! approach it does not generate a formal model or quantify risk — it lists
//! candidate threats for a human analyst. This module implements that
//! catalogue pass so benchmarks can compare the two methods' outputs on the
//! same system model.

use privacy_dataflow::{FlowKind, SystemDataFlows};
use privacy_model::{Catalog, FieldKind, ServiceId};
use std::collections::BTreeSet;
use std::fmt;

/// The LINDDUN threat categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum ThreatCategory {
    /// Linking two items of interest to the same data subject.
    Linkability,
    /// Identifying the data subject behind an item of interest.
    Identifiability,
    /// Being unable to deny having performed an action.
    NonRepudiation,
    /// Detecting that an item of interest about a subject exists.
    Detectability,
    /// Disclosure of personal information to unauthorised parties.
    InformationDisclosure,
    /// The data subject is unaware of collection or processing.
    Unawareness,
    /// Processing that does not comply with declared policy or regulation.
    NonCompliance,
}

impl fmt::Display for ThreatCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ThreatCategory::Linkability => "linkability",
            ThreatCategory::Identifiability => "identifiability",
            ThreatCategory::NonRepudiation => "non-repudiation",
            ThreatCategory::Detectability => "detectability",
            ThreatCategory::InformationDisclosure => "information disclosure",
            ThreatCategory::Unawareness => "unawareness",
            ThreatCategory::NonCompliance => "non-compliance",
        };
        f.write_str(name)
    }
}

/// One elicited threat.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Threat {
    category: ThreatCategory,
    service: ServiceId,
    element: String,
    description: String,
}

impl Threat {
    /// The threat category.
    pub fn category(&self) -> ThreatCategory {
        self.category
    }

    /// The service whose diagram the threat was elicited from.
    pub fn service(&self) -> &ServiceId {
        &self.service
    }

    /// The DFD element the threat concerns (rendered as text).
    pub fn element(&self) -> &str {
        &self.element
    }

    /// A description of the threat.
    pub fn description(&self) -> &str {
        &self.description
    }
}

impl fmt::Display for Threat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} / {}: {}", self.category, self.service, self.element, self.description)
    }
}

/// Walks every data-flow diagram and elicits catalogue threats:
///
/// * every flow carrying an identifier field → identifiability +
///   linkability threats;
/// * every flow carrying a sensitive field → information-disclosure threat;
/// * every datastore that is written to → detectability threat (its mere
///   existence reveals the subject has a record) and linkability threat when
///   it stores identifier fields;
/// * every `collect` flow without a declared purpose → unawareness and
///   non-compliance threats;
/// * every `read` flow from a non-anonymised store → information-disclosure
///   threat.
pub fn threat_catalogue_pass(catalog: &Catalog, system: &SystemDataFlows) -> Vec<Threat> {
    let mut threats = Vec::new();
    let anonymised: BTreeSet<_> =
        catalog.datastores().filter(|d| d.is_anonymised()).map(|d| d.id().clone()).collect();

    for diagram in system.diagrams() {
        let service = diagram.service().clone();
        for flow in diagram.iter() {
            let element = format!("{} -> {}", flow.from(), flow.to());
            let kinds: Vec<FieldKind> =
                flow.fields().iter().filter_map(|f| catalog.field(f).map(|d| d.kind())).collect();

            if kinds.contains(&FieldKind::Identifier) {
                threats.push(Threat {
                    category: ThreatCategory::Identifiability,
                    service: service.clone(),
                    element: element.clone(),
                    description: "flow carries a direct identifier".to_owned(),
                });
                threats.push(Threat {
                    category: ThreatCategory::Linkability,
                    service: service.clone(),
                    element: element.clone(),
                    description: "identifier enables linking items of interest".to_owned(),
                });
            }
            if kinds.contains(&FieldKind::Sensitive) {
                threats.push(Threat {
                    category: ThreatCategory::InformationDisclosure,
                    service: service.clone(),
                    element: element.clone(),
                    description: "flow carries sensitive personal data".to_owned(),
                });
            }
            match flow.kind(&anonymised) {
                FlowKind::Collect if flow.purpose().is_unspecified() => {
                    threats.push(Threat {
                        category: ThreatCategory::Unawareness,
                        service: service.clone(),
                        element: element.clone(),
                        description: "collection without a declared purpose".to_owned(),
                    });
                    threats.push(Threat {
                        category: ThreatCategory::NonCompliance,
                        service: service.clone(),
                        element: element.clone(),
                        description: "purpose limitation cannot be demonstrated".to_owned(),
                    });
                }
                FlowKind::Read => {
                    if let Some(store) = flow.from().as_datastore() {
                        if !anonymised.contains(store) {
                            threats.push(Threat {
                                category: ThreatCategory::InformationDisclosure,
                                service: service.clone(),
                                element: element.clone(),
                                description: format!(
                                    "read from non-anonymised datastore `{store}`"
                                ),
                            });
                        }
                    }
                }
                _ => {}
            }
        }

        for store in diagram.datastores() {
            let element = format!("[{store}]");
            threats.push(Threat {
                category: ThreatCategory::Detectability,
                service: service.clone(),
                element: element.clone(),
                description: "existence of a record reveals the subject uses the service"
                    .to_owned(),
            });
            let stores_identifier = catalog
                .datastore_schema(&store)
                .map(|schema| {
                    schema.fields().iter().any(|f| {
                        catalog.field(f).map(|d| d.kind() == FieldKind::Identifier).unwrap_or(false)
                    })
                })
                .unwrap_or(false);
            if stores_identifier {
                threats.push(Threat {
                    category: ThreatCategory::Linkability,
                    service: service.clone(),
                    element,
                    description: "datastore links identifiers with other personal data".to_owned(),
                });
            }
        }
    }
    threats
}

#[cfg(test)]
mod tests {
    use super::*;
    use privacy_dataflow::DiagramBuilder;
    use privacy_model::{Actor, ActorId, DataField, DataSchema, DatastoreDecl, FieldId, Purpose};

    fn fixture() -> (Catalog, SystemDataFlows) {
        let mut catalog = Catalog::new();
        catalog.add_actor(Actor::role("Doctor")).unwrap();
        catalog.add_actor(Actor::role("Researcher")).unwrap();
        catalog.add_field(DataField::identifier("Name")).unwrap();
        catalog.add_field(DataField::sensitive("Diagnosis")).unwrap();
        catalog.add_field(DataField::sensitive("Diagnosis_anon")).unwrap();
        catalog
            .add_schema(DataSchema::new(
                "EHRSchema",
                [FieldId::new("Name"), FieldId::new("Diagnosis")],
            ))
            .unwrap();
        catalog
            .add_schema(DataSchema::new("AnonSchema", [FieldId::new("Diagnosis_anon")]))
            .unwrap();
        catalog.add_datastore(DatastoreDecl::new("EHR", "EHRSchema")).unwrap();
        catalog.add_datastore(DatastoreDecl::anonymised("AnonEHR", "AnonSchema")).unwrap();
        catalog
            .add_service(privacy_model::ServiceDecl::new(
                "MedicalService",
                [ActorId::new("Doctor")],
            ))
            .unwrap();

        let medical = DiagramBuilder::new("MedicalService")
            .collect("Doctor", ["Name", "Diagnosis"], "consultation", 1)
            .unwrap()
            .create("Doctor", "EHR", ["Name", "Diagnosis"], "record", 2)
            .unwrap()
            .read("Doctor", "EHR", ["Diagnosis"], "review", 3)
            .unwrap()
            .read("Researcher", "AnonEHR", ["Diagnosis_anon"], "research", 4)
            .unwrap()
            .build();
        let system = SystemDataFlows::new().with_diagram(medical).unwrap();
        (catalog, system)
    }

    #[test]
    fn catalogue_pass_elicits_expected_threat_categories() {
        let (catalog, system) = fixture();
        let threats = threat_catalogue_pass(&catalog, &system);
        assert!(!threats.is_empty());

        let categories: BTreeSet<ThreatCategory> = threats.iter().map(Threat::category).collect();
        assert!(categories.contains(&ThreatCategory::Identifiability));
        assert!(categories.contains(&ThreatCategory::Linkability));
        assert!(categories.contains(&ThreatCategory::InformationDisclosure));
        assert!(categories.contains(&ThreatCategory::Detectability));
        // All purposes are declared, so no unawareness threats.
        assert!(!categories.contains(&ThreatCategory::Unawareness));
    }

    #[test]
    fn reads_from_anonymised_stores_are_not_disclosure_threats() {
        let (catalog, system) = fixture();
        let threats = threat_catalogue_pass(&catalog, &system);
        assert!(!threats.iter().any(|t| {
            t.category() == ThreatCategory::InformationDisclosure
                && t.description().contains("AnonEHR")
        }));
        assert!(threats.iter().any(|t| {
            t.category() == ThreatCategory::InformationDisclosure
                && t.description().contains("`EHR`")
        }));
    }

    #[test]
    fn undeclared_purposes_raise_unawareness_threats() {
        let (catalog, _) = fixture();
        let diagram = privacy_dataflow::DataFlowDiagram::new(
            "MedicalService",
            [privacy_dataflow::Flow::new(
                privacy_dataflow::Node::User,
                privacy_dataflow::Node::actor("Doctor"),
                [FieldId::new("Diagnosis")],
                Purpose::UNSPECIFIED,
                1,
            )
            .unwrap()],
        );
        let system = SystemDataFlows::new().with_diagram(diagram).unwrap();
        let threats = threat_catalogue_pass(&catalog, &system);
        let categories: Vec<ThreatCategory> = threats.iter().map(Threat::category).collect();
        assert!(categories.contains(&ThreatCategory::Unawareness));
        assert!(categories.contains(&ThreatCategory::NonCompliance));
    }

    #[test]
    fn threat_accessors_and_display() {
        let (catalog, system) = fixture();
        let threats = threat_catalogue_pass(&catalog, &system);
        let first = &threats[0];
        assert_eq!(first.service().as_str(), "MedicalService");
        assert!(!first.element().is_empty());
        assert!(!first.description().is_empty());
        assert!(first.to_string().contains("MedicalService"));
        assert_eq!(ThreatCategory::NonRepudiation.to_string(), "non-repudiation");
    }
}
